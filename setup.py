"""Packaging metadata for the reproduction.

The project is described entirely here (no ``pyproject.toml``), which keeps
editable installs working on environments whose setuptools/pip combination
lacks the ``wheel`` package required by the PEP 660 editable build path
(``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` route in that situation).
"""

from setuptools import find_packages, setup

setup(
    name="repro-torus-mesh-embeddings",
    version="1.0.0",
    description=(
        "Reproduction of 'Embeddings Among Toruses and Meshes' (Ma & Tao, "
        "ICPP 1987): Gray-code embeddings, vectorized cost metrics and a "
        "parallel embedding survey engine"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        # Single source of truth for the toolchain: every CI job installs
        # `pip install -e .[dev]` instead of ad-hoc `pip install` lists.
        "dev": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
            "networkx",
            "ruff",
        ],
        # The JIT kernel tier (backend="compiled").  Optional: without it the
        # runtime degrades to the array backend (or uses the C-via-cffi tier
        # when cffi and a C compiler are present).
        "compiled": [
            "numba",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
