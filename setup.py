"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on environments whose setuptools/pip
combination lacks the ``wheel`` package required by the PEP 660 editable
build path (``pip install -e . --no-build-isolation`` falls back to the
legacy ``setup.py develop`` route in that situation).
"""

from setuptools import setup

setup()
