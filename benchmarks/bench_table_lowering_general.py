"""TAB-LOW-GENERAL: Theorem 43 general-reduction dilation sweep."""

from repro.core.lowering import embed_lowering_general
from repro.core.reduction import find_general_reduction
from repro.experiments.lowering_tables import general_rows
from repro.graphs.base import Mesh


def test_table_lowering_general_matches_theorem43(show):
    from repro.experiments.lowering_tables import general_table

    result = general_table()
    show(result)
    for row in general_rows():
        if not isinstance(row["dilation"], int):
            continue
        assert row["dilation"] <= row["paper"]
        if "Torus" not in row["guest"] or "Torus" in row["host"]:
            assert row["dilation"] == row["paper"]


def test_table_lowering_general_paper_example_decomposition():
    # Definition 41's eight-dimensional example is decomposable; the paper's own
    # factor ((5,2),(3,7)) gives max(s) = 7, and any factor the search returns
    # must be a valid witness.
    source = (2, 3, 2, 10, 6, 21, 5, 4)
    target = (4, 3, 5, 28, 10, 18)
    factor = find_general_reduction(source, target)
    assert factor is not None
    assert factor.reduces(source, target)
    assert factor.dilation() >= 2


def test_benchmark_general_reduction_factor_search(benchmark):
    factor = benchmark(
        find_general_reduction, (2, 3, 2, 10, 6, 21, 5, 4), (4, 3, 5, 28, 10, 18)
    )
    assert factor is not None


def test_benchmark_general_reduction_embedding(benchmark):
    guest = Mesh((5, 5, 9))
    host = Mesh((15, 15))

    def build():
        return embed_lowering_general(guest, host)

    embedding = benchmark(build)
    assert embedding.dilation() == 3
