"""TAB-SQUARE-LOW: Theorems 48 and 51 over a (d, c, l) sweep.

Checks that every measured dilation matches the formula l^((d-c)/c)
(×2 for torus -> mesh, where it is an upper bound) and dominates the
Theorem 47 lower bound; benchmarks the chain construction.
"""

from repro.core.square import embed_square, embed_square_lowering
from repro.experiments.square_tables import SQUARE_LOWERING_SWEEP, square_lowering_rows
from repro.graphs.base import Mesh, Torus

QUICK_SWEEP = [(d, c, l) for (d, c, l) in SQUARE_LOWERING_SWEEP if l**d <= 1500]


def test_table_square_lowering_matches_formula(show):
    from repro.experiments.square_tables import square_lowering_table

    result = square_lowering_table()
    show(result)
    for row in square_lowering_rows(QUICK_SWEEP):
        assert row["dilation"] <= row["formula"]
        assert row["dilation"] >= row["lower bound (Thm 47)"]
        if "Torus" not in row["guest"]:
            # Mesh guests: the simple-reduction / chain value is met exactly for
            # the divisible cases (Theorem 48).
            if row["d"] % row["c"] == 0:
                assert row["dilation"] == row["formula"]


def test_table_square_lowering_crossover_with_dimension():
    # The formula grows as the dimension gap widens: for l = 4 the measured
    # dilation goes 1 (same dim) -> 4 (2->1) -> 16 (3->1).
    values = [
        embed_square(Mesh((4, 4)), Mesh((16,))).dilation(),
        embed_square(Mesh((4, 4, 4)), Mesh((64,))).dilation(),
    ]
    assert values == [4, 16]


def test_benchmark_theorem48_simple_square_reduction(benchmark):
    guest = Mesh((6, 6, 6))
    host = Mesh((216,))

    def build():
        return embed_square_lowering(guest, host)

    embedding = benchmark(build)
    assert embedding.predicted_dilation == 36


def test_benchmark_theorem51_chain(benchmark):
    guest = Mesh((4, 4, 4))
    host = Mesh((8, 8))

    def build():
        return embed_square_lowering(guest, host)

    embedding = benchmark(build)
    assert embedding.dilation() <= 2


def test_benchmark_theorem51_long_chain(benchmark):
    guest = Torus((4, 4, 4, 4, 4))
    host = Torus((32, 32))

    def build():
        return embed_square_lowering(guest, host)

    embedding = benchmark(build)
    assert embedding.predicted_dilation == 8
