"""TAB-BASIC: Section 3's dilation results over a shape sweep.

Regenerates the line/ring dilation rows for meshes and toruses of sizes
8..4096 and checks every row against the theorem prediction; benchmarks the
end-to-end construction on a large host.
"""

from repro.core.basic import line_in_graph_embedding, ring_in_graph_embedding
from repro.experiments.basic_tables import BASIC_SWEEP, line_rows, ring_ablation_rows, ring_rows
from repro.graphs.base import Mesh, Torus


SMALL_SWEEP = [shape for shape in BASIC_SWEEP if Mesh(shape).size <= 600]


def test_table_basic_line_rows_all_unit_dilation(show):
    from repro.experiments.basic_tables import basic_table

    result = basic_table()
    show(result)
    rows = line_rows(SMALL_SWEEP)
    assert all(row["dilation"] == 1 for row in rows)


def test_table_basic_ring_rows_match_section3():
    for row in ring_rows(SMALL_SWEEP):
        assert row["dilation"] == row["paper"]


def test_table_basic_ring_ablation_h_wins():
    for row in ring_ablation_rows(SMALL_SWEEP):
        assert row["h_L dilation"] == 1
        assert row["g_L dilation"] == 2


def test_benchmark_line_embedding_large_host(benchmark):
    host = Torus((16, 16, 16))

    def build_and_measure():
        embedding = line_in_graph_embedding(host)
        return embedding.dilation()

    assert benchmark(build_and_measure) == 1


def test_benchmark_ring_embedding_large_host(benchmark):
    host = Mesh((16, 16, 16))

    def build_and_measure():
        embedding = ring_in_graph_embedding(host)
        return embedding.dilation()

    assert benchmark(build_and_measure) == 1


def test_benchmark_full_basic_sweep(benchmark):
    rows = benchmark(lambda: line_rows(SMALL_SWEEP) + ring_rows(SMALL_SWEEP))
    assert len(rows) == 4 * len(SMALL_SWEEP)
