"""FIG-4: the natural sequence P and the reflected sequence P' for L = (4,2,3)."""

from repro.experiments.figures import figure_4
from repro.numbering.graycode import natural_sequence, reflected_mixed_radix_sequence
from repro.numbering.sequences import sequence_spread


def test_fig04_reflection_fixes_the_spread(show):
    result = figure_4()
    show(result)
    by_name = {row["sequence"]: row for row in result.rows}
    assert by_name["P (natural)"]["δm-spread"] > 1
    assert by_name["P' (= f_L)"]["δm-spread"] == 1


def test_benchmark_reflected_sequence_generation(benchmark):
    sequence = benchmark(reflected_mixed_radix_sequence, (8, 8, 8))
    assert len(sequence) == 512
    assert sequence_spread(sequence) == 1


def test_benchmark_natural_sequence_generation(benchmark):
    sequence = benchmark(natural_sequence, (8, 8, 8))
    assert len(sequence) == 512
