"""FIG-12: the (3,3,6)-mesh embedded in the (6,9)-mesh via supernodes."""

from repro.core.lowering import embed_lowering_general
from repro.experiments.figures import figure_12
from repro.graphs.base import Mesh, Torus


def test_fig12_dilation_is_three(show):
    result = figure_12()
    show(result)
    assert result.rows[0]["dilation"] == 3


def test_fig12_supernode_structure():
    # Every 6-node supernode (fixed first two guest coordinates) must land in a
    # single 2x3 block of the host, exactly as drawn in Figure 12.
    embedding = embed_lowering_general(Mesh((3, 3, 6)), Mesh((6, 9)))
    for i in range(3):
        for j in range(3):
            images = [embedding[(i, j, k)] for k in range(6)]
            rows = {r for r, _ in images}
            cols = {c for _, c in images}
            assert len(images) == 6
            assert max(rows) - min(rows) <= 1
            assert max(cols) - min(cols) <= 2


def test_benchmark_general_reduction_construction(benchmark):
    guest = Mesh((5, 5, 8))
    host = Mesh((10, 20))

    def build():
        return embed_lowering_general(guest, host)

    embedding = benchmark(build)
    assert embedding.is_valid()


def test_benchmark_general_reduction_torus_variant(benchmark):
    guest = Torus((3, 3, 6))
    host = Torus((6, 9))

    def build():
        return embed_lowering_general(guest, host)

    embedding = benchmark(build)
    assert embedding.dilation() == 3
