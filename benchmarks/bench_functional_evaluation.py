"""Pointwise embedding evaluation cost (the paper's concluding remark).

The paper notes that evaluating any of its embedding functions on a single
node costs O(dim H) operations.  This benchmark measures exactly that:
per-node evaluation time on hosts of growing dimension, using graphs far too
large to materialize (up to 2^30 nodes), via
:func:`repro.core.functional.functional_embed`.
"""

import pytest

from repro.core.functional import functional_embed
from repro.types import GraphKind, ShapedGraphSpec


def _spec(kind, shape):
    return ShapedGraphSpec(GraphKind(kind), shape)


CASES = {
    "ring->2d-torus (2^20 nodes)": (_spec("torus", (2**20,)), _spec("torus", (1024, 1024))),
    "line->3d-mesh (2^24 nodes)": (_spec("mesh", (2**24,)), _spec("mesh", (256, 256, 256))),
    "3d->2d torus (2^30 nodes)": (
        _spec("torus", (1024, 1024, 1024)),
        _spec("torus", (1048576, 1024)),
    ),
    "2d->10d hypercube (2^20 nodes)": (_spec("torus", (1024, 1024)), _spec("torus", (2,) * 20)),
}


@pytest.mark.parametrize("name", list(CASES))
def test_benchmark_pointwise_evaluation(benchmark, name):
    guest, host = CASES[name]
    functional = functional_embed(guest, host)
    probe_indices = [i * (guest.size // 97) for i in range(97)]

    def evaluate_probes():
        return [functional.map_index(index) for index in probe_indices]

    images = benchmark(evaluate_probes)
    assert len(images) == 97
    assert all(len(image) == host.dimension for image in images)


def test_benchmark_sampled_dilation_estimate(benchmark):
    guest, host = CASES["3d->2d torus (2^30 nodes)"]
    functional = functional_embed(guest, host)

    def estimate():
        return functional.sample_dilation(samples=200, seed=0)

    estimate_value = benchmark(estimate)
    assert 1 <= estimate_value <= functional.predicted_dilation
