"""FIG-10: embeddings of a line and a ring of size 24 in the (4,2,3)-mesh."""

from repro.core.basic import line_in_graph_embedding, ring_in_graph_embedding
from repro.experiments.figures import figure_10
from repro.graphs.base import Mesh


def test_fig10_dilations_match_paper(show):
    result = figure_10()
    show(result)
    by_guest = {row["guest"]: row for row in result.rows}
    assert by_guest["line of 24"]["dilation"] == 1
    assert by_guest["ring of 24"]["dilation"] == 1


def test_benchmark_line_embedding_construction(benchmark):
    host = Mesh((16, 8, 8))

    def build():
        return line_in_graph_embedding(host)

    embedding = benchmark(build)
    assert embedding.is_valid()


def test_benchmark_ring_embedding_construction(benchmark):
    host = Mesh((16, 8, 8))

    def build():
        return ring_in_graph_embedding(host)

    embedding = benchmark(build)
    assert embedding.is_valid()


def test_benchmark_dilation_measurement(benchmark):
    host = Mesh((16, 8, 8))
    embedding = ring_in_graph_embedding(host)
    dilation = benchmark(embedding.dilation)
    assert dilation == 1
