"""FIG-3: δm/δt spreads of a sequence over Ω_(3,3) (Figure 3 style)."""

from repro.experiments.figures import figure_3
from repro.numbering.sequences import cyclic_spread, sequence_spread


def test_fig03_spread_table(show):
    result = figure_3()
    show(result)
    acyclic = next(row for row in result.rows if row["view"] == "acyclic")
    cyclic = next(row for row in result.rows if row["view"] == "cyclic")
    # The cyclic view can only increase spreads, and δt never exceeds δm.
    assert cyclic["δm-spread"] >= acyclic["δm-spread"]
    assert cyclic["δt-spread"] >= acyclic["δt-spread"]
    assert acyclic["δt-spread"] <= acyclic["δm-spread"]
    assert cyclic["δt-spread"] <= cyclic["δm-spread"]


def test_benchmark_spread_computation(benchmark):
    sequence = [(i % 7, (i * 3) % 5) for i in range(35)]

    def spreads():
        return (
            sequence_spread(sequence),
            cyclic_spread(sequence, metric="torus", shape=(7, 5)),
        )

    mesh_spread, torus_spread = benchmark(spreads)
    assert mesh_spread >= torus_spread
