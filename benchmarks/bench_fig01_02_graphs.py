"""FIG-1/2: the (4,2,3)-torus and (4,2,3)-mesh (Figures 1 and 2).

Regenerates node/edge counts and the example distances quoted in Section 2
and benchmarks graph construction plus full-pairwise distance evaluation.
"""

from repro.experiments.figures import figure_1_2
from repro.graphs.base import Mesh, Torus


def test_fig01_02_rows_match_paper(show):
    result = figure_1_2()
    show(result)
    by_graph = {row["graph"]: row for row in result.rows}
    assert by_graph["Torus(4, 2, 3)"]["distance (0,0,1)->(3,0,0)"] == 2
    assert by_graph["Mesh(4, 2, 3)"]["distance (0,0,1)->(3,0,0)"] == 4
    assert by_graph["Torus(4, 2, 3)"]["nodes"] == by_graph["Mesh(4, 2, 3)"]["nodes"] == 24
    # A torus has at least as many edges as the mesh of the same shape.
    assert by_graph["Torus(4, 2, 3)"]["edges"] >= by_graph["Mesh(4, 2, 3)"]["edges"]


def test_benchmark_distance_evaluation(benchmark):
    torus = Torus((4, 2, 3))
    nodes = list(torus.nodes())

    def all_pairs():
        return sum(torus.distance(a, b) for a in nodes for b in nodes)

    total = benchmark(all_pairs)
    assert total > 0


def test_benchmark_graph_materialization(benchmark):
    def build():
        mesh = Mesh((8, 8, 8))
        return mesh.num_edges()

    edges = benchmark(build)
    assert edges == 3 * 7 * 64
