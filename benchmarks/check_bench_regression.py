"""Bench-regression gate: fresh benchmark JSON vs the committed floors.

Compares a ``pytest-benchmark --benchmark-json`` artifact (the netsim kernel
run CI just produced) against the committed perf snapshot
``BENCH_netsim.json`` and fails when any matching benchmark's median slowed
down by more than ``--max-slowdown`` (default 2x) — the guard that keeps the
array kernels from quietly regressing while the suite stays green.

Benchmarks are matched by ``fullname``; entries present on only one side are
reported but do not gate (new benchmarks are allowed to appear, retired ones
to disappear).  At least one pair must match, otherwise the gate fails —
a wholesale rename must not silently disable the comparison.

Usage::

    python benchmarks/check_bench_regression.py bench-netsim.json \
        --baseline BENCH_netsim.json --max-slowdown 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_medians(path: Path) -> dict:
    """``fullname -> median seconds`` of a pytest-benchmark JSON document."""
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        entry["fullname"]: entry["stats"]["median"]
        for entry in document.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --benchmark-json output")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_netsim.json"),
        help="committed perf snapshot to compare against",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when current median > this factor times the baseline median",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print(
            f"FAIL: no benchmark names shared between {args.current} and "
            f"{args.baseline}; the regression gate has nothing to compare"
        )
        return 1

    regressions = []
    for name in shared:
        ratio = current[name] / baseline[name]
        verdict = "ok"
        if ratio > args.max_slowdown:
            verdict = f"REGRESSION (> {args.max_slowdown:.1f}x)"
            regressions.append(name)
        print(
            f"{name}: baseline {baseline[name] * 1e3:.2f}ms, "
            f"current {current[name] * 1e3:.2f}ms, {ratio:.2f}x — {verdict}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"note: baseline-only benchmark not in current run: {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new benchmark without a committed floor: {name}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} of {len(shared)} benchmarks slowed "
            f"down by more than {args.max_slowdown:.1f}x"
        )
        return 1
    print(
        f"\nOK: {len(shared)} benchmarks within {args.max_slowdown:.1f}x of the floors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
