"""Bench-regression gate: fresh benchmark JSON vs the committed floors.

Compares one or more ``pytest-benchmark --benchmark-json`` artifacts (the
kernel runs CI just produced) against their committed perf snapshots and
fails when any matching benchmark's median slowed down by more than
``--max-slowdown`` (default 2x) — the guard that keeps the array kernels
from quietly regressing while the suite stays green.

Benchmarks are matched by ``fullname``; entries present on only one side are
reported but do not gate (new benchmarks are allowed to appear, retired ones
to disappear).  At least one pair must match per artifact, otherwise the
gate fails — a wholesale rename must not silently disable the comparison.

Usage (one artifact, the historical form)::

    python benchmarks/check_bench_regression.py bench-netsim.json \
        --baseline BENCH_netsim.json --max-slowdown 2.0

or several artifacts, each against its own committed snapshot (currents and
baselines pair up positionally)::

    python benchmarks/check_bench_regression.py bench-netsim.json bench-survey.json \
        --baseline BENCH_netsim.json --baseline BENCH_survey.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_medians(path: Path) -> dict:
    """``fullname -> median seconds`` of a pytest-benchmark JSON document."""
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        entry["fullname"]: entry["stats"]["median"]
        for entry in document.get("benchmarks", [])
    }


def check_pair(current_path: Path, baseline_path: Path, max_slowdown: float) -> bool:
    """Gate one (current, baseline) artifact pair; True when it passes."""
    try:
        baseline = load_medians(baseline_path)
        current = load_medians(current_path)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
        # A missing, truncated or schema-less artifact must fail the gate
        # loudly instead of crashing CI with a traceback.
        print(
            f"FAIL: could not load benchmark medians from {current_path} / "
            f"{baseline_path}: {error}"
        )
        return False
    shared = sorted(set(baseline) & set(current))
    print(f"== {current_path} vs {baseline_path}")
    if not shared:
        print(
            f"FAIL: no benchmark names shared between {current_path} and "
            f"{baseline_path}; the regression gate has nothing to compare"
        )
        return False

    regressions = []
    for name in shared:
        ratio = current[name] / baseline[name]
        verdict = "ok"
        if ratio > max_slowdown:
            verdict = f"REGRESSION (> {max_slowdown:.1f}x)"
            regressions.append(name)
        print(
            f"{name}: baseline {baseline[name] * 1e3:.2f}ms, "
            f"current {current[name] * 1e3:.2f}ms, {ratio:.2f}x — {verdict}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"note: baseline-only benchmark not in current run: {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new benchmark without a committed floor: {name}")

    if regressions:
        print(
            f"FAIL: {len(regressions)} of {len(shared)} benchmarks slowed "
            f"down by more than {max_slowdown:.1f}x"
        )
        return False
    print(f"OK: {len(shared)} benchmarks within {max_slowdown:.1f}x of the floors")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current",
        type=Path,
        nargs="+",
        help="fresh --benchmark-json output(s), paired positionally with --baseline",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        action="append",
        help="committed perf snapshot(s) to compare against "
        "(default: BENCH_netsim.json for a single current file)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when current median > this factor times the baseline median",
    )
    args = parser.parse_args(argv)

    baselines = args.baseline or [Path("BENCH_netsim.json")]
    if len(baselines) != len(args.current):
        print(
            f"FAIL: {len(args.current)} current file(s) but {len(baselines)} "
            f"--baseline value(s); they pair up positionally"
        )
        return 1

    ok = True
    for current, baseline in zip(args.current, baselines):
        if not check_pair(current, baseline, args.max_slowdown):
            ok = False
        print()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
