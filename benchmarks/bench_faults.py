"""BENCH-FAULTS: the degraded-host pipeline at survey scale.

The fault axis adds work the pristine pipeline never pays — surviving-graph
BFS, embedding repair, detour splicing — so it gets its own perf floor.
Three timed probes, each the hot path of one ``--suite faults`` stage:

* the vectorized masked BFS (``bfs_distance_row``) against the pure-Python
  reference, asserted identical on a table-sized degraded torus;
* repair plus degraded-dilation measurement for an expansion pair;
* the fault-aware weighted phase simulation end to end.

Run with ``pytest benchmarks/bench_faults.py`` (add ``--benchmark-only`` to
skip the equivalence assertion).
"""

import pytest

from repro.analysis.fault_tolerance import fault_dilation_summary, repair_embedding
from repro.core.dispatch import embed
from repro.graphs.base import Mesh, Torus
from repro.graphs.faults import FaultSpec
from repro.netsim.network import HostNetwork
from repro.netsim.simulator import simulate_phase
from repro.netsim.traffic import traffic_pattern
from repro.netsim.weights import LinkWeightSpec

pytest.importorskip("numpy")

#: Table-sized degraded host: 256 processors, a handful of dead resources.
HOST_SHAPE = (16, 16)
FAULTS = FaultSpec(num_nodes=3, num_links=4, seed=11)


def _degraded_host():
    host = Torus(HOST_SHAPE)
    return host, FAULTS.apply(host)


def test_masked_bfs_row_matches_loop_reference():
    _, faults = _degraded_host()
    for source in faults.surviving_ranks()[:8]:
        loop = faults.bfs_distances(source)
        row = faults.bfs_distance_row(source)
        assert all(loop.get(rank, -1) == int(row[rank]) for rank in range(row.size))


def test_benchmark_masked_bfs_rows(benchmark):
    _, faults = _degraded_host()
    sources = faults.surviving_ranks()[:16]

    def run():
        # Fresh Faults each round: the masked matrix is cached per instance.
        fresh = FAULTS.apply(Torus(HOST_SHAPE))
        return [fresh.bfs_distance_row(source) for source in sources]

    rows = benchmark(run)
    assert len(rows) == len(sources)


def test_benchmark_repair_and_degraded_dilation(benchmark):
    guest = Torus((4, 6))
    host = Mesh((5, 6))
    embedding = embed(guest, host)
    faults = FaultSpec(num_nodes=1, num_links=2, seed=7).apply(host)

    def run():
        repaired = repair_embedding(embedding, faults)
        return fault_dilation_summary(repaired, faults)

    dilation, average = benchmark(run)
    assert dilation >= 1
    assert average >= 1.0


def test_benchmark_faulted_weighted_phase(benchmark):
    guest = host = Torus((8, 8))
    embedding = embed(guest, host)
    faults = FaultSpec(num_links=4, seed=11).apply(host)
    network = HostNetwork(host, link_weights=LinkWeightSpec("dimension", 0.5))
    pattern = traffic_pattern("neighbor-exchange", guest)

    result = benchmark(
        lambda: simulate_phase(network, embedding, pattern, faults=faults)
    )
    assert result.makespan > 0
