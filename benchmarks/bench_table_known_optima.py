"""TAB-OPTIMA: Section 5's comparison against known optimal embeddings.

The shape of the comparison reproduced here:

* (l,l)-mesh -> line and (l,l)-torus -> ring: ours equals the known optimum;
* (l,l,l)-mesh -> line: ours is within a factor 4/3 of FitzGerald's optimum;
* hypercube -> line: ours is 2^(d-1); the ratio to Harper's optimum is
  1/ε_(d-1) and grows with d.
"""

from repro.core.bounds import harper_hypercube_in_line
from repro.core.dispatch import embed
from repro.experiments.optima_tables import (
    cube_mesh_in_line_rows,
    hypercube_in_line_rows,
    square_mesh_in_line_rows,
    square_torus_in_ring_rows,
)
from repro.graphs.base import Hypercube, Line, Mesh


def test_table_optima_square_cases_truly_optimal(show):
    from repro.experiments.optima_tables import optima_table

    result = optima_table()
    show(result)
    for row in square_mesh_in_line_rows((3, 4, 5, 6)) + square_torus_in_ring_rows((3, 4, 5, 6)):
        assert row["ours"] == row["known optimal"]


def test_table_optima_cube_mesh_within_four_thirds():
    for row in cube_mesh_in_line_rows((3, 4, 5)):
        assert row["known optimal"] <= row["ours"]
        assert row["ours"] / row["known optimal"] <= 4 / 3 + 0.1


def test_table_optima_hypercube_ratio_grows():
    rows = hypercube_in_line_rows((3, 4, 5, 6, 8, 10))
    ratios = [row["ratio (= 1/ε)"] for row in rows]
    assert ratios == sorted(ratios)
    assert all(row["known optimal"] <= row["ours"] for row in rows)


def test_benchmark_square_mesh_in_line(benchmark):
    guest = Mesh((24, 24))
    host = Line(576)

    def build_and_measure():
        return embed(guest, host).dilation()

    assert benchmark(build_and_measure) == 24


def test_benchmark_hypercube_in_line(benchmark):
    guest = Hypercube(10)
    host = Line(1024)

    def build_and_measure():
        return embed(guest, host).dilation()

    dilation = benchmark(build_and_measure)
    assert dilation == 512
    assert dilation >= harper_hypercube_in_line(10)
