"""TAB-SQUARE-INC: Theorems 52 and 53 over a (d, c, l) sweep."""

from repro.core.square import embed_square, embed_square_increasing
from repro.experiments.square_tables import SQUARE_INCREASING_SWEEP, square_increasing_rows
from repro.graphs.base import Mesh, Torus

QUICK_SWEEP = [(d, c, l) for (d, c, l) in SQUARE_INCREASING_SWEEP if l**d <= 1500]


def test_table_square_increasing_matches_formula(show):
    from repro.experiments.square_tables import square_increasing_table

    result = square_increasing_table()
    show(result)
    for row in square_increasing_rows(QUICK_SWEEP):
        assert row["dilation"] <= row["formula"]
        if row["divisible"] == "yes":
            # Theorem 52 is exact (and optimal).
            assert row["dilation"] == row["formula"]


def test_table_square_increasing_divisible_is_unit_or_two():
    assert embed_square(Mesh((16,)), Mesh((4, 4))).dilation() == 1
    assert embed_square(Torus((9, 9)), Mesh((3, 3, 3, 3))).dilation() == 2
    assert embed_square(Torus((4, 4)), Mesh((2, 2, 2, 2))).dilation() == 1


def test_benchmark_theorem52_expansion(benchmark):
    guest = Torus((32, 32))
    host = Torus((2,) * 10)

    def build():
        return embed_square_increasing(guest, host)

    embedding = benchmark(build)
    assert embedding.predicted_dilation == 1


def test_benchmark_theorem53_expand_then_reduce(benchmark):
    guest = Mesh((8, 8))
    host = Mesh((4, 4, 4))

    def build():
        return embed_square_increasing(guest, host)

    embedding = benchmark(build)
    assert embedding.dilation() <= 2
