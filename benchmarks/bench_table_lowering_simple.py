"""TAB-LOW-SIMPLE: Theorem 39 / Corollary 40 simple-reduction dilation sweep."""

import math

from repro.core.dispatch import embed
from repro.core.lowering import embed_lowering_simple
from repro.experiments.lowering_tables import (
    SIMPLE_SWEEP,
    hypercube_rows,
    ordering_ablation_rows,
    simple_rows,
)
from repro.graphs.base import Hypercube, Mesh

QUICK_SWEEP = [pair for pair in SIMPLE_SWEEP if math.prod(pair[0]) <= 256]


def test_table_lowering_simple_matches_theorem39(show):
    from repro.experiments.lowering_tables import simple_table

    result = simple_table()
    show(result)
    for row in simple_rows(QUICK_SWEEP):
        assert row["dilation"] <= row["paper"]
        if "Torus" not in row["guest"] or "Torus" in row["host"]:
            # Exact in every case except torus -> mesh (which is an upper bound).
            assert row["dilation"] == row["paper"]


def test_table_lowering_simple_hypercubes_corollary40():
    for row in hypercube_rows():
        assert row["dilation"] == row["paper"]


def test_table_lowering_simple_ordering_ablation():
    for row in ordering_ablation_rows():
        assert row["non-increasing"] <= row["non-decreasing"]


def test_benchmark_simple_reduction_construction(benchmark):
    guest = Hypercube(10)
    host = Mesh((32, 32))

    def build():
        return embed(guest, host)

    embedding = benchmark(build)
    assert embedding.predicted_dilation == 16


def test_benchmark_simple_reduction_dilation_measurement(benchmark):
    guest = Mesh((8, 4, 4, 2))
    host = Mesh((32, 8))
    embedding = embed_lowering_simple(guest, host)
    dilation = benchmark(embedding.dilation)
    assert dilation == embedding.predicted_dilation
