"""BENCH-CONSTRUCTION: array-native builders vs the per-node loop reference.

PR 1 vectorized the *cost* side; this benchmark guards the *construction*
side added on top of it.  Every strategy family is built at table scale
(4096–32768 nodes, the sizes of the paper's result tables) with both
construction methods:

* ``use_context(backend="loop")`` — the retained per-node reference
  builders (``Embedding.from_callable`` over a Python dict);
* ``use_context(backend="array")`` — the batch kernels of
  :mod:`repro.numbering.batch` producing the flat host-index array directly.

The two must produce node-for-node identical mappings, and the array path
must be at least ``SPEEDUP_FLOOR``x faster over the whole batch.  Run with
``pytest benchmarks/bench_construction.py -s`` to see the measured ratio.
"""

import math
import time

import pytest

from repro.core.dispatch import embed
from repro.graphs.base import Line, Mesh, Ring, Torus
from repro.runtime import use_context

#: Table-scale pairs, one per strategy family the dispatcher can select.
TABLE_SCALE_PAIRS = [
    (Torus((16, 16, 16)), Mesh((16, 16, 16))),   # same-shape:T_L, 4096 nodes
    (Mesh((8, 16, 32)), Mesh((32, 16, 8))),      # permute-dimensions, 4096 nodes
    (Line(32768), Torus((32, 32, 32))),          # line:f_L, 32768 nodes
    (Ring(32768), Mesh((32, 32, 32))),           # ring:π∘h_L*, 32768 nodes
    (Torus((64, 64)), Torus((8, 8, 8, 8))),      # increasing:H_V, 4096 nodes
    (Mesh((64, 64)), Mesh((8, 8, 8, 8))),        # increasing:F_V, 4096 nodes
    (Torus((8, 8, 8)), Mesh((64, 8))),           # lowering:U_V∘T∘τ, 512^.. 4096 nodes
    (Mesh((16, 16, 12)), Mesh((48, 64))),        # lowering:β∘F'_S∘α, 3072 nodes
    (Mesh((8, 8, 8, 8)), Line(4096)),            # 1-D host collapse, 4096 nodes
    (Mesh((4,) * 6), Mesh((64, 64))),            # square-lowering chain, 4096 nodes
    (Mesh((64, 64)), Mesh((16, 16, 16))),        # square-increasing chain, 4096 nodes
]

SPEEDUP_FLOOR = 10.0


def _build_all(backend):
    with use_context(backend=backend):
        return [embed(guest, host) for guest, host in TABLE_SCALE_PAIRS]


def test_construction_array_speedup_over_loop_builders():
    started = time.perf_counter()
    loop_built = _build_all("loop")
    loop_seconds = time.perf_counter() - started

    array_seconds = math.inf
    for _ in range(3):  # best-of-3 guards the assertion against CI jitter
        started = time.perf_counter()
        array_built = _build_all("array")
        array_seconds = min(array_seconds, time.perf_counter() - started)

    # Identical constructions, node for node (the differential contract).
    for array_embedding, loop_embedding in zip(array_built, loop_built):
        assert array_embedding.strategy == loop_embedding.strategy
        assert (
            array_embedding.host_index_array() == loop_embedding.host_index_array()
        ).all()

    speedup = loop_seconds / array_seconds
    total_nodes = sum(guest.size for guest, _ in TABLE_SCALE_PAIRS)
    print(
        f"\n{len(TABLE_SCALE_PAIRS)} table-scale builds ({total_nodes} nodes): "
        f"loop {loop_seconds:.3f}s, array {array_seconds:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"array construction only {speedup:.1f}x faster than the loop builders "
        f"(floor {SPEEDUP_FLOOR}x) over {len(TABLE_SCALE_PAIRS)} table-scale pairs"
    )


def test_benchmark_array_construction_batch(benchmark):
    built = benchmark(lambda: _build_all("array"))
    assert len(built) == len(TABLE_SCALE_PAIRS)


@pytest.mark.parametrize(
    "guest,host",
    [
        (Line(32768), Torus((32, 32, 32))),
        (Torus((64, 64)), Torus((8, 8, 8, 8))),
        (Torus((8, 8, 8)), Mesh((64, 8))),
    ],
    ids=["line-32k", "increasing-4k", "lowering-4k"],
)
def test_benchmark_single_array_construction(benchmark, guest, host):
    def build():
        with use_context(backend="array"):
            return embed(guest, host)

    embedding = benchmark(build)
    assert embedding.is_valid()
