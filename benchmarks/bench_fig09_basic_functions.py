"""FIG-9: the embedding functions f_L, g_L and h_L for n = 24, L = (4,2,3)."""

from repro.core.basic import f_sequence, g_sequence, h_sequence
from repro.experiments.figures import figure_9


def test_fig09_spread_summary(show):
    result = figure_9()
    show(result)
    by_function = {row["function"]: row for row in result.rows}
    # Theorem 13 / Lemma 16 / Lemmas 23+27 for the figure's shape.
    assert by_function["f_L"]["acyclic δm-spread"] == 1
    assert by_function["g_L"]["cyclic δm-spread"] == 2
    assert by_function["h_L"]["cyclic δm-spread"] == 1
    assert by_function["h_L"]["cyclic δt-spread"] == 1


def test_fig09_table_lists_all_24_values(show):
    result = figure_9()
    assert result.text.count("\n") >= 26


def test_benchmark_f_sequence(benchmark):
    sequence = benchmark(f_sequence, (16, 8, 8))
    assert len(sequence) == 1024


def test_benchmark_g_sequence(benchmark):
    sequence = benchmark(g_sequence, (16, 8, 8))
    assert len(sequence) == 1024


def test_benchmark_h_sequence(benchmark):
    sequence = benchmark(h_sequence, (16, 8, 8))
    assert len(sequence) == 1024
