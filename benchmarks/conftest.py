"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment from the index in
``DESIGN.md`` (one per figure / result table of the paper), asserts the
paper-level claims about the regenerated rows (who wins, which formula the
measured dilation matches) and times the central computation with
``pytest-benchmark``.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated tables on stdout.
"""

import pytest


def emit(result) -> None:
    """Print an experiment result (visible with ``pytest -s``)."""
    print()
    print(result.render())


@pytest.fixture
def show():
    """Fixture alias for :func:`emit` used by the benchmark modules."""
    return emit
