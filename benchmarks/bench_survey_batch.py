"""BENCH-SURVEY-BATCH: batched shard evaluation vs the per-scenario path.

PR 5's tentpole: the survey engine used to pay full Python overhead per
scenario — one construction, one traffic build, one ``evaluate_embedding``
(with a fresh ``edge_index_arrays`` derivation) and one event loop per
record.  The batched path (:mod:`repro.survey.batch`) groups a shard by
signature, stacks host-index arrays through fused metric kernels and drives
every simulation phase through one round-based vectorized event loop.

The floor test runs the **simulation-suite sweep** — the paper's task-mapping
pairs (the SIM-MAP table scale) crossed with every registered strategy and
traffic pattern, congestion measured — through both paths:

* the records must be **bit-for-bit identical** (``elapsed_seconds`` timing
  aside), simulator statistics and makespans included;
* the batched path must be at least ``SPEEDUP_FLOOR``x faster.

The ``pytest-benchmark`` entries snapshot the batched medians (committed as
``BENCH_survey.json``); CI replays them and
``benchmarks/check_bench_regression.py`` fails the build when any median
slows down by more than 2x — the same gate that guards the netsim kernels.
Run with ``-s`` to see the measured ratio; refresh the snapshot with
``--benchmark-json=BENCH_survey.json``.
"""

import time

from repro.runtime import use_context
from repro.survey import SurveyOptions, run_survey, scenarios_for_suite

SPEEDUP_FLOOR = 5.0

#: The node budget that pulls in every simulation-suite pair, including the
#: table-scale task-mapping entries added for this benchmark.
SUITE_BUDGET = 64
TABLE_BUDGET = 256


def _sweep(max_nodes):
    scenarios = scenarios_for_suite("simulation", max_nodes=max_nodes)
    assert scenarios, "the simulation suite is empty"
    return scenarios


def _run(scenarios, *, batch):
    options = SurveyOptions(
        workers=1, shard_size=len(scenarios), with_congestion=True
    )
    with use_context(batch=batch):
        return run_survey(scenarios, options)


def _strip(record):
    return {**record.as_dict(), "elapsed_seconds": None}


def test_batched_sweep_speedup_and_identical_records():
    scenarios = _sweep(SUITE_BUDGET)

    reference_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        reference = _run(scenarios, batch=False)
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    batched_seconds = float("inf")
    for _ in range(3):  # best-of-3 guards the assertion against CI jitter
        started = time.perf_counter()
        batched = _run(scenarios, batch=True)
        batched_seconds = min(batched_seconds, time.perf_counter() - started)

    # Bit-for-bit identical records: costs, statistics, makespans and all.
    assert [_strip(r) for r in batched.records] == [
        _strip(r) for r in reference.records
    ]
    assert not batched.failed and not batched.unsupported

    speedup = reference_seconds / batched_seconds
    print(
        f"\nsimulation-suite sweep ({len(scenarios)} scenarios): "
        f"per-scenario {reference_seconds:.3f}s, batched {batched_seconds:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched shard evaluation only {speedup:.1f}x faster than the "
        f"per-scenario path (floor {SPEEDUP_FLOOR}x) over {len(scenarios)} scenarios"
    )


def test_table_scale_sweep_records_identical():
    # The 256-node task-mapping pairs: heavier shared simulation, so no
    # speedup floor here — the identity contract is what must hold at scale.
    scenarios = _sweep(TABLE_BUDGET)
    batched = _run(scenarios, batch=True)
    reference = _run(scenarios, batch=False)
    assert [_strip(r) for r in batched.records] == [
        _strip(r) for r in reference.records
    ]


def test_benchmark_batched_simulation_suite(benchmark):
    scenarios = _sweep(SUITE_BUDGET)

    def sweep():
        report = _run(scenarios, batch=True)
        assert not report.failed
        return len(report.ok)

    assert benchmark(sweep) == len(scenarios)


def test_benchmark_batched_table_scale_suite(benchmark):
    scenarios = _sweep(TABLE_BUDGET)

    def sweep():
        report = _run(scenarios, batch=True)
        assert not report.failed
        return len(report.ok)

    assert benchmark(sweep) == len(scenarios)
