"""BENCH-SERVICE: resident daemon + request coalescing vs cold one-shots.

PR 7's tentpole: ``repro serve`` keeps one warm
:class:`~repro.runtime.cache.ConstructionCache` and the cached graph arrays
resident and answers queries over HTTP, coalescing concurrent requests into
one stacked batched-survey pass.  The cold baseline models the pre-service
workflow — a fresh process per request (fresh service, cold cache, one
request, tear down), exactly what ``repro embed`` costs per invocation.

The floor test drives a concurrent load generator (per-thread persistent
:class:`~repro.service.ServiceClient` connections) against a resident daemon
and asserts:

* every response is byte-identical to the per-request reference path
  (``elapsed_seconds`` aside);
* requests really coalesced (max batch size > 1 under concurrency);
* warm sustained throughput is at least ``WARM_SPEEDUP_FLOOR``x the cold
  single-request baseline, with p50/p99 latency reported.

The ``pytest-benchmark`` entries snapshot the two regimes (committed as
``BENCH_service.json``); CI replays them and
``benchmarks/check_bench_regression.py`` fails the build when any median
slows down by more than 2x.  Run with ``-s`` to see throughput and latency;
refresh the snapshot with ``--benchmark-json=BENCH_service.json``.
"""

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import repro
from repro.service import ReproService, ServiceClient, ServiceRequest, serve
from repro.survey.runner import SurveyOptions, evaluate_scenario

WARM_SPEEDUP_FLOOR = 5.0

#: The load mix: one hot signature (coalesces) plus a second pair and a
#: simulation so the daemon exercises grouping, not just repetition.
MIX = [
    {"op": "embed", "guest": "torus:4,6", "host": "mesh:2,2,2,3"},
    {"op": "embed", "guest": "torus:4,6", "host": "mesh:2,2,2,3"},
    {"op": "embed", "guest": "ring:16", "host": "mesh:4,4"},
    {
        "op": "simulate",
        "guest": "torus:4,4",
        "host": "mesh:2,2,2,2",
        "traffic": "transpose",
    },
]

LOAD_THREADS = 8
LOAD_REQUESTS = 96


def cold_single_request(payload):
    """One request with a fresh in-process service and cold cache."""
    with ReproService(window=0.0) as service:
        record, _ = service.handle(ServiceRequest.from_dict(payload))
    return record


#: One-shot worker for the cold *process* baseline: what every request cost
#: before the daemon existed — a full interpreter start, the numpy import,
#: a cold cache, one answer, exit.
_COLD_PROCESS_CODE = """\
import json, sys
from repro.service import ReproService, ServiceRequest
payload = json.loads(sys.argv[1])
with ReproService(window=0.0) as service:
    record, _ = service.handle(ServiceRequest.from_dict(payload))
print(record.status)
"""


def cold_process_request(payload):
    """Answer one request from a fresh Python process (the pre-daemon cost)."""
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_dir, env.get("PYTHONPATH")) if part
    )
    completed = subprocess.run(
        [sys.executable, "-c", _COLD_PROCESS_CODE, json.dumps(payload)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return completed.stdout.strip()


def reference_record(payload):
    request = ServiceRequest.from_dict(payload)
    options = SurveyOptions(workers=1, with_congestion=request.congestion)
    return evaluate_scenario(request.scenario(), options)


def _strip(record_dict):
    return {
        key: value for key, value in record_dict.items() if key != "elapsed_seconds"
    }


class ResidentDaemon:
    """A served ``ReproService`` on an ephemeral port, plus its base URL."""

    def __init__(self, window=0.002):
        self.service = ReproService(window=window)
        self.server = serve(self.service, "127.0.0.1", 0)
        threading.Thread(target=self.server.serve_forever, daemon=True).start()
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def run_load(url, total=LOAD_REQUESTS, threads=LOAD_THREADS):
    """Fire ``total`` mixed requests from ``threads`` workers; collect latencies."""
    payloads = [MIX[index % len(MIX)] for index in range(total)]
    responses = [None] * total
    latencies = [0.0] * total

    def worker(indices):
        with ServiceClient(url, timeout=60.0) as client:
            for index in indices:
                started = time.perf_counter()
                responses[index] = client.invoke(payloads[index])
                latencies[index] = time.perf_counter() - started

    lanes = [range(lane, total, threads) for lane in range(threads)]
    started = time.perf_counter()
    with ThreadPoolExecutor(threads) as pool:
        for future in [pool.submit(worker, lane) for lane in lanes]:
            future.result()
    elapsed = time.perf_counter() - started
    return payloads, responses, latencies, elapsed


def quantile(values, fraction):
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def test_warm_daemon_beats_cold_single_requests():
    # Cold: a fresh process per request, averaged over the mix (best-of-2
    # per payload guards the ratio against one slow outlier).
    cold_seconds = 0.0
    for payload in MIX:
        per_request = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            status = cold_process_request(payload)
            per_request = min(per_request, time.perf_counter() - started)
        assert status == "ok"
        cold_seconds += per_request
    cold_rps = len(MIX) / cold_seconds

    with ResidentDaemon() as daemon:
        run_load(daemon.url, total=len(MIX) * 4)  # warm-up: fill the cache
        payloads, responses, latencies, elapsed = run_load(daemon.url)
        stats = daemon.service.stats_snapshot()
    warm_rps = len(responses) / elapsed

    # Byte-identity under concurrency and coalescing.
    for payload, response in zip(payloads, responses):
        assert _strip(response["record"]) == _strip(reference_record(payload).as_dict())
    assert stats["coalescer"]["max_batch_size"] > 1, "load never coalesced"

    p50 = quantile(latencies, 0.50) * 1e3
    p99 = quantile(latencies, 0.99) * 1e3
    speedup = warm_rps / cold_rps
    print(
        f"\nservice load ({len(responses)} requests, {LOAD_THREADS} threads): "
        f"cold {cold_rps:.0f} req/s, warm {warm_rps:.0f} req/s "
        f"({speedup:.1f}x), p50 {p50:.2f}ms, p99 {p99:.2f}ms, "
        f"max batch {stats['coalescer']['max_batch_size']}"
    )
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm daemon only {speedup:.1f}x the cold baseline "
        f"(floor {WARM_SPEEDUP_FLOOR}x): cold {cold_rps:.0f} req/s, "
        f"warm {warm_rps:.0f} req/s"
    )


def test_benchmark_cold_single_request(benchmark):
    record = benchmark(cold_single_request, MIX[0])
    assert record.status == "ok"


def test_benchmark_warm_sustained_load(benchmark):
    with ResidentDaemon() as daemon:
        run_load(daemon.url, total=len(MIX) * 4)  # warm-up

        def sustained():
            _, responses, _, _ = run_load(daemon.url, total=32, threads=LOAD_THREADS)
            assert all(response["ok"] for response in responses)
            return len(responses)

        assert benchmark(sustained) == 32
