"""SIM-MAP: task-mapping simulation — the paper's embedding vs baselines.

The claim reproduced here is the paper's motivation: a low-dilation embedding
of the task graph into the machine keeps neighbour-exchange messages short,
which the store-and-forward simulation turns into lower completion times than
the lexicographic / BFS / random mappings.
"""

from repro.baselines import random_embedding
from repro.core.dispatch import embed
from repro.experiments.simulation_tables import SCENARIOS, mapping_rows, negative_control_rows
from repro.graphs.base import Mesh, Torus
from repro.netsim import CostModel, HostNetwork, neighbor_exchange_traffic, simulate_phase


def test_sim_map_paper_embedding_wins_every_scenario(show):
    from repro.experiments.simulation_tables import simulation_table

    result = simulation_table()
    show(result)
    rows = mapping_rows(SCENARIOS[:3])
    by_scenario = {}
    for row in rows:
        by_scenario.setdefault((row["task graph"], row["network"]), {})[row["strategy"]] = row
    for scenario, strategies in by_scenario.items():
        paper = strategies["paper"]
        for name, row in strategies.items():
            assert paper["max hops"] <= row["max hops"]
            assert paper["makespan"] <= row["makespan"]


def test_sim_map_negative_control_transpose():
    rows = negative_control_rows()
    makespans = {row["strategy"]: row["makespan"] for row in rows}
    # On the diameter-dominated transpose workload every strategy pays roughly
    # the network diameter per message, so the spread between strategies stays
    # within a small constant factor (contrast with the dilation-driven gap on
    # the neighbour-exchange workload above).
    assert makespans["paper"] > 0
    assert max(makespans.values()) <= 20 * makespans["paper"]


def test_benchmark_simulation_paper_mapping(benchmark):
    guest, host = Torus((8, 8)), Mesh((4, 4, 4))
    network = HostNetwork(host, CostModel())
    traffic = neighbor_exchange_traffic(guest)
    embedding = embed(guest, host)

    def run():
        return simulate_phase(network, embedding, traffic).makespan

    makespan = benchmark(run)
    assert makespan > 0


def test_benchmark_simulation_random_mapping(benchmark):
    guest, host = Torus((8, 8)), Mesh((4, 4, 4))
    network = HostNetwork(host, CostModel())
    traffic = neighbor_exchange_traffic(guest)
    embedding = random_embedding(guest, host, seed=1)

    def run():
        return simulate_phase(network, embedding, traffic).makespan

    makespan = benchmark(run)
    paper_embedding = embed(guest, host)
    paper_makespan = simulate_phase(network, paper_embedding, traffic).makespan
    assert paper_makespan <= makespan


def test_benchmark_embedding_construction_for_mapping(benchmark):
    guest, host = Torus((16, 16)), Mesh((4, 4, 4, 4))

    def build():
        return embed(guest, host)

    embedding = benchmark(build)
    assert embedding.is_valid()
