"""BENCH-OPTIMIZE: the stacked-kernel population search vs the loop reference.

PR 8's tentpole: ``repro.optimize`` prices an entire candidate population per
generation with one fused :func:`stacked_objective_components` pass, where
the pure-Python reference engine walks every guest edge (and, for
congestion-bearing objectives, every dimension-ordered route) per candidate.
Both engines share one RNG stream and one acceptance driver, so the
differential contract is exact:

* the searches must return **bit-for-bit identical** results — best row,
  encoded objective, provenance and the persisted ``OptimizerState``;
* the array engine must be at least ``SPEEDUP_FLOOR``x faster on the
  paper-scale 8x8 pair.

The ``pytest-benchmark`` entries snapshot the array-path medians (committed
as ``BENCH_optimize.json``); CI replays them through
``benchmarks/check_bench_regression.py`` and fails the build on a >2x median
slowdown — the same gate that guards the netsim kernels and the batched
survey.  Run with ``-s`` to see the measured ratio; refresh the snapshot with
``--benchmark-json=BENCH_optimize.json``.
"""

import time

from repro.graphs.base import Mesh, Torus
from repro.optimize import OptimizeOptions, optimize_embedding
from repro.runtime import use_context

SPEEDUP_FLOOR = 5.0

#: The paper-scale pair: the T_L folding's home ground, 64 nodes.
PAIR = (Torus((8, 8)), Mesh((8, 8)))

#: Small enough for the loop engine to finish in CI seconds, big enough for
#: the scoring work (not the constant setup) to dominate both engines.
FLOOR_OPTIONS = OptimizeOptions(objective="combined", budget=120, population=6, seed=7)

#: The documented default search, benchmarked on the array path only.
FULL_OPTIONS = OptimizeOptions(objective="combined", budget=2000, population=16, seed=7)


def _search(backend, options):
    guest, host = PAIR
    with use_context(backend=backend, cache=None):
        return optimize_embedding(guest, host, options)


def test_array_speedup_and_identical_results():
    loop_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        loop = _search("loop", FLOOR_OPTIONS)
        loop_seconds = min(loop_seconds, time.perf_counter() - started)

    array_seconds = float("inf")
    for _ in range(3):  # best-of-3 guards the assertion against CI jitter
        started = time.perf_counter()
        array = _search("array", FLOOR_OPTIONS)
        array_seconds = min(array_seconds, time.perf_counter() - started)

    # The differential contract at benchmark scale: identical everything.
    assert array.state == loop.state
    assert array.objective == loop.objective
    assert array.provenance == loop.provenance
    assert array.embedding.mapping == loop.embedding.mapping

    speedup = loop_seconds / array_seconds
    evaluations = array.evaluations
    print(
        f"\n8x8 search ({evaluations} candidate evaluations): "
        f"loop {loop_seconds:.3f}s, array {array_seconds:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"stacked-kernel search only {speedup:.1f}x faster than the "
        f"pure-Python engine (floor {SPEEDUP_FLOOR}x)"
    )


def test_benchmark_array_search_floor_budget(benchmark):
    result = benchmark(lambda: _search("array", FLOOR_OPTIONS))
    assert result.state == _search("loop", FLOOR_OPTIONS).state


def test_benchmark_array_search_default_budget(benchmark):
    result = benchmark(lambda: _search("array", FULL_OPTIONS))
    assert result.dilation <= 2  # never worse than the paper's T_L folding
