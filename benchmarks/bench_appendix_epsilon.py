"""APP-EPS: the Appendix ε sequence and its relation to Harper's optimum."""

from fractions import Fraction

from repro.core.bounds import epsilon_sequence, epsilon_value, harper_hypercube_in_line
from repro.experiments.optima_tables import epsilon_rows


def test_appendix_epsilon_initial_values_and_monotonicity(show):
    from repro.experiments.optima_tables import epsilon_table

    result = epsilon_table()
    show(result)
    values = epsilon_sequence(20)
    assert values[0] == values[1] == values[2] == 1
    for m in range(3, 20):
        assert values[m] < values[m - 1]


def test_appendix_identity_with_harper():
    for d in range(1, 20):
        assert harper_hypercube_in_line(d) == epsilon_value(d - 1) * 2 ** (d - 1)


def test_appendix_rows_shape():
    rows = epsilon_rows(12)
    assert len(rows) == 12
    assert rows[3]["ε_m"] == "7/8"


def test_benchmark_epsilon_sequence(benchmark):
    values = benchmark(epsilon_sequence, 64)
    assert len(values) == 64
    # ε_m ~ sqrt(8/(π m)) for large m, so ε_63 is a little above 0.2.
    assert values[-1] < Fraction(1, 4)


def test_benchmark_harper_values(benchmark):
    def all_values():
        return [harper_hypercube_in_line(d) for d in range(1, 64)]

    values = benchmark(all_values)
    assert values[0] == 1 and values[2] == 4
