"""BENCH-NETSIM: vectorized simulation kernels vs the per-message loop.

PR 2 made construction array-native; this benchmark guards the final scalar
hot path — the network-simulation layer.  Survey-scale phases (4096-node
hosts, thousands of messages across all three traffic patterns) are
evaluated with both implementations of the analytic phase estimate:

* ``use_context(backend="loop")`` — the retained per-message reference
  (``route_message`` node-tuple paths, dict-keyed link loads);
* ``use_context(backend="array")`` — batched dimension-ordered routing over
  the flat directed-link id space plus ``np.bincount`` load accumulation
  (:mod:`repro.netsim.kernels`).

The two must produce identical statistics (field-for-field, floats
included), and the array path must be at least ``SPEEDUP_FLOOR``x faster
over the whole batch.  Run with ``-s`` to see the measured ratio; run with
``--benchmark-json=BENCH_netsim.json`` to refresh the committed perf
snapshot (the CI workflow uploads the same JSON as a build artifact).
"""

import math
import time

import pytest

from repro.core.dispatch import embed
from repro.graphs.base import Mesh, Torus
from repro.netsim import (
    HostNetwork,
    all_to_all_in_groups_traffic,
    analytic_phase_estimate,
    neighbor_exchange_traffic,
    simulate_phase,
    transpose_traffic,
)
from repro.runtime import use_context

#: Survey-scale phases: (guest, host, traffic builder) per pattern family.
SURVEY_SCALE_PHASES = [
    (Torus((64, 64)), Mesh((8, 8, 8, 8)), neighbor_exchange_traffic),
    (Mesh((64, 64)), Mesh((8, 8, 8, 8)), transpose_traffic),
    (Torus((8, 8, 8)), Mesh((64, 8)), all_to_all_in_groups_traffic),
]

SPEEDUP_FLOOR = 10.0


def _estimate_one_array(network, embedding, traffic):
    with use_context(backend="array"):
        return analytic_phase_estimate(network, embedding, traffic)


def _phases():
    phases = []
    for guest, host, build_traffic in SURVEY_SCALE_PHASES:
        phases.append(
            (HostNetwork(host), embed(guest, host), build_traffic(guest))
        )
    return phases


def _estimate_all(phases, backend):
    with use_context(backend=backend):
        return [
            analytic_phase_estimate(network, embedding, traffic)
            for network, embedding, traffic in phases
        ]


def test_analytic_estimate_array_speedup_over_loop():
    phases = _phases()

    started = time.perf_counter()
    loop_statistics = _estimate_all(phases, "loop")
    loop_seconds = time.perf_counter() - started

    array_seconds = math.inf
    for _ in range(3):  # best-of-3 guards the assertion against CI jitter
        started = time.perf_counter()
        array_statistics = _estimate_all(phases, "array")
        array_seconds = min(array_seconds, time.perf_counter() - started)

    # Identical statistics, field for field (the differential contract).
    assert array_statistics == loop_statistics

    speedup = loop_seconds / array_seconds
    messages = sum(len(traffic) for _, _, traffic in phases)
    print(
        f"\n{len(phases)} survey-scale phases ({messages} messages): "
        f"loop {loop_seconds:.3f}s, array {array_seconds:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized analytic estimate only {speedup:.1f}x faster than the "
        f"loop reference (floor {SPEEDUP_FLOOR}x) over {len(phases)} phases"
    )


def test_simulate_phase_array_matches_loop_at_scale():
    network, embedding, traffic = _phases()[0]
    started = time.perf_counter()
    with use_context(backend="loop"):
        loop_result = simulate_phase(network, embedding, traffic)
    loop_seconds = time.perf_counter() - started
    started = time.perf_counter()
    with use_context(backend="array"):
        array_result = simulate_phase(network, embedding, traffic)
    array_seconds = time.perf_counter() - started
    assert array_result.makespan == loop_result.makespan
    assert array_result.per_message_completion == loop_result.per_message_completion
    print(
        f"\nsimulate_phase({len(traffic)} messages): "
        f"loop {loop_seconds:.3f}s, array {array_seconds:.3f}s "
        f"({loop_seconds / array_seconds:.1f}x)"
    )


def test_benchmark_analytic_estimate_array_batch(benchmark):
    phases = _phases()
    statistics = benchmark(lambda: _estimate_all(phases, "array"))
    assert len(statistics) == len(SURVEY_SCALE_PHASES)


@pytest.mark.parametrize(
    "index",
    range(len(SURVEY_SCALE_PHASES)),
    ids=["neighbor-exchange-4k", "transpose-4k", "all-to-all-groups-512"],
)
def test_benchmark_single_phase_estimate(benchmark, index):
    network, embedding, traffic = _phases()[index]
    statistics = benchmark(
        lambda: _estimate_one_array(network, embedding, traffic)
    )
    assert statistics.num_messages == len(traffic)


def test_benchmark_simulate_phase_array(benchmark):
    network, embedding, traffic = _phases()[0]
    def run():
        with use_context(backend="array"):
            return simulate_phase(network, embedding, traffic)

    result = benchmark(run)
    assert result.makespan > 0
