"""BENCH-CHAOS: survey throughput under fault injection, and the no-op cost.

PR 10's tentpole: the chaos plane (:mod:`repro.runtime.chaos`) plus the
survey runner's retry/backoff/quarantine recovery.  Two claims gate here:

* **Recovery is cheap.**  A pooled survey sweep under a 2% ``worker_crash``
  schedule — real ``os._exit(1)`` worker deaths, pool respawns, shard
  retries — sustains at least ``CHAOS_THROUGHPUT_FLOOR``x the fault-free
  records/sec, and the healthy records stay byte-identical
  (``elapsed_seconds`` aside).
* **Disabled injection is free.**  With no plan on the context, one
  :func:`~repro.runtime.chaos.inject` call costs at most
  ``DISABLED_OVERHEAD_CEILING`` of one per-record evaluation — the
  instrumented hot paths (one ``inject`` per shard attempt, one per
  artifact write) pay well under 1% overhead.

The ``pytest-benchmark`` entries snapshot the two sweep regimes (committed
as ``BENCH_chaos.json``, the seventh regression-gate pair);
``benchmarks/check_bench_regression.py`` fails CI when either median slows
by more than 2x.  Refresh with::

    pytest benchmarks/bench_chaos.py --benchmark-json=BENCH_chaos.json
"""

import time
import timeit

from repro.runtime import ExecutionContext, inject, use_context
from repro.survey import SurveyOptions, run_survey, scenarios_for_suite
from repro.utils.backoff import BackoffPolicy

#: Records/sec under 2% worker-crash injection must stay >= this fraction
#: of the fault-free sweep (the respawn + backoff tax, bounded).
CHAOS_THROUGHPUT_FLOOR = 0.5

#: One disabled inject() call must cost <= this fraction of evaluating one
#: record — "no plan" means "no overhead".
DISABLED_OVERHEAD_CEILING = 0.01

#: Seed 12 at p=0.02 over the 17 squares-suite shards: exactly one worker
#: crash (shard 15, attempt 0) and clean retry draws — deterministic
#: recovery, nothing quarantined (same construction as tests/test_chaos.py).
CHAOS_SPEC = "worker_crash:0.02,seed=12"

RETRY = BackoffPolicy(max_attempts=3, base_delay=0.02, max_delay=0.1, factor=4.0)


def _sweep(chaos=None):
    scenarios = scenarios_for_suite("squares")
    context = ExecutionContext(workers=2, shard_size=8, chaos=chaos)
    with use_context(context):
        started = time.perf_counter()
        report = run_survey(scenarios, SurveyOptions(retry=RETRY))
        elapsed = time.perf_counter() - started
    return report, len(report.records) / elapsed


def _strip(record):
    document = record.as_dict()
    document.pop("elapsed_seconds", None)
    return document


def test_chaos_throughput_floor_and_identical_healthy_records():
    baseline, fault_free_rps = _sweep()
    report, chaos_rps = _sweep(chaos=CHAOS_SPEC)

    assert all(record.status == "ok" for record in baseline.records)
    assert report.crash_recoveries >= 1, "the seeded crash never fired"
    assert report.quarantined == 0
    expected = {record.scenario_id: _strip(record) for record in baseline.records}
    for record in report.records:
        assert record.status == "ok"
        assert _strip(record) == expected[record.scenario_id]

    ratio = chaos_rps / fault_free_rps
    print(
        f"\nsurvey sweep: fault-free {fault_free_rps:.1f} rec/s, "
        f"2% worker-crash {chaos_rps:.1f} rec/s ({ratio:.2f}x, "
        f"{report.crash_recoveries} crash recoveries, "
        f"{report.retries} retries)"
    )
    assert ratio >= CHAOS_THROUGHPUT_FLOOR, (
        f"chaos sweep only {ratio:.2f}x the fault-free throughput "
        f"(floor {CHAOS_THROUGHPUT_FLOOR}x)"
    )


def test_disabled_injection_is_effectively_free():
    # The no-op path: one contextvar read, one `is None` test.
    calls = 100_000
    noop_seconds = (
        timeit.timeit(
            lambda: inject("survey.shard", key=("shard", 0, 0)), number=calls
        )
        / calls
    )

    # One record through the (sequential, in-process) survey evaluator.
    scenarios = scenarios_for_suite("squares")
    with use_context(ExecutionContext(workers=1)):
        started = time.perf_counter()
        report = run_survey(scenarios, SurveyOptions(retry=RETRY))
        per_record = (time.perf_counter() - started) / len(report.records)

    overhead = noop_seconds / per_record
    print(
        f"\ndisabled inject(): {noop_seconds * 1e9:.0f}ns/call, "
        f"evaluation {per_record * 1e6:.0f}us/record "
        f"({overhead * 100:.4f}% overhead/record)"
    )
    assert overhead <= DISABLED_OVERHEAD_CEILING, (
        f"disabled injection costs {overhead * 100:.2f}% of one record "
        f"evaluation (ceiling {DISABLED_OVERHEAD_CEILING * 100:.0f}%)"
    )


def test_benchmark_survey_fault_free(benchmark):
    report = benchmark(lambda: _sweep()[0])
    assert all(record.status == "ok" for record in report.records)


def test_benchmark_survey_under_chaos(benchmark):
    report = benchmark(lambda: _sweep(chaos=CHAOS_SPEC)[0])
    assert all(record.status == "ok" for record in report.records)
    assert report.crash_recoveries >= 1
