"""BENCH-SURVEY: the array-backed survey engine vs the per-edge loops.

The survey subsystem exists so that the ROADMAP's "thousands of guest/host
pairs" sweeps run at hardware speed.  This module demonstrates the two
ingredients on Table-sized inputs (the paper's result tables go up to 4096
nodes):

* the vectorized cost path (``use_context(backend="array")``) must be at
  least 5x faster than the historical per-edge Python loops (``"loop"``) over a
  survey-scale batch of embeddings, while producing identical measures;
* the end-to-end engine (scenario generation -> embed -> vectorized
  measure -> merge) is timed with ``pytest-benchmark`` for regression
  tracking.

Run with ``pytest benchmarks/bench_survey_engine.py`` (add
``--benchmark-only`` to skip the speedup assertion tests).
"""

import math
import time

from repro.core.dispatch import embed
from repro.runtime import use_context
from repro.graphs.base import Mesh, Torus
from repro.survey import (
    Scenario,
    SurveyOptions,
    run_survey,
    scenarios_for_suite,
    shapes_up_to,
)

#: Node range of the "Table-sized" sweep: the per-pair sizes of the paper's
#: result tables (hundreds to thousands of nodes), far beyond the worked
#: figures but small enough that the *loop* baseline stays benchmarkable.
MIN_NODES, MAX_NODES, PAIR_BUDGET = 128, 512, 60

SPEEDUP_FLOOR = 5.0


def _table_sized_embeddings():
    """A deterministic survey-scale batch of embeddings (100+ node pairs)."""
    by_size = {}
    for shape in shapes_up_to(MAX_NODES, min_nodes=MIN_NODES):
        by_size.setdefault(math.prod(shape), []).append(shape)
    embeddings = []
    for size in sorted(by_size):
        group = by_size[size]
        for offset, guest_shape in enumerate(group):
            host_shape = group[(offset + 1) % len(group)]
            if guest_shape == host_shape:
                continue
            for guest_kind, host_kind in (("torus", "mesh"), ("mesh", "torus")):
                scenario = Scenario(guest_kind, guest_shape, host_kind, host_shape)
                try:
                    embeddings.append(
                        embed(scenario.guest_graph(), scenario.host_graph())
                    )
                except Exception:
                    continue
                if len(embeddings) >= PAIR_BUDGET:
                    return embeddings
    return embeddings


def _measure_all(embeddings, backend):
    with use_context(backend=backend):
        return [
            (e.dilation(), e.average_dilation(), e.edge_congestion())
            for e in embeddings
        ]


def test_survey_vectorized_speedup_over_per_edge_loop():
    embeddings = _table_sized_embeddings()
    assert len(embeddings) >= 40, "sweep failed to produce a survey-scale batch"
    for embedding in embeddings:  # one-off dict -> array conversions up front
        embedding.host_index_array()

    started = time.perf_counter()
    loop_results = _measure_all(embeddings, "loop")
    loop_seconds = time.perf_counter() - started

    array_seconds = math.inf
    for _ in range(3):  # best-of-3 guards the assertion against CI jitter
        started = time.perf_counter()
        array_results = _measure_all(embeddings, "array")
        array_seconds = min(array_seconds, time.perf_counter() - started)

    for loop_row, array_row in zip(loop_results, array_results):
        assert loop_row[0] == array_row[0]
        assert abs(loop_row[1] - array_row[1]) < 1e-9
        assert loop_row[2] == array_row[2]

    speedup = loop_seconds / array_seconds
    print(
        f"\n{len(embeddings)} table-sized pairs: loop {loop_seconds:.3f}s, "
        f"array {array_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized path only {speedup:.1f}x faster than the per-edge loop "
        f"(floor {SPEEDUP_FLOOR}x) over {len(embeddings)} pairs"
    )


def test_benchmark_vectorized_metrics_large_pair(benchmark):
    embedding = embed(Torus((16, 16, 16)), Mesh((8, 8, 8, 8)))
    embedding.host_index_array()

    def measure():
        with use_context(backend="array"):
            return (embedding.dilation(), embedding.edge_congestion())

    dilation, congestion = benchmark(measure)
    assert dilation == embedding.predicted_dilation or dilation >= 1
    assert congestion >= 1


def test_benchmark_survey_engine_end_to_end(benchmark):
    scenarios = scenarios_for_suite("exhaustive", max_nodes=24)

    def sweep():
        report = run_survey(scenarios, SurveyOptions(workers=1, shard_size=128))
        assert not report.failed
        return len(report.ok)

    measured = benchmark(sweep)
    assert measured > 0
