"""BENCH-RUNTIME-CACHE: warm construction cache vs re-construction.

MaT87's constructions are pure functions of ``(strategy family, guest kind
and shape, host kind and shape)``, so the runtime's
:class:`~repro.runtime.cache.ConstructionCache` can memoize them across
survey shards and CLI invocations.  This benchmark runs the construction
pass of a survey-suite sweep — the Section 5 square chains at table scale
(up to 4096 nodes) plus the exhaustive 48-node sweep — twice through the
same execution context:

* **cold** — an empty cache: every supported pair runs the full dispatcher
  (strategy selection, factor searches, batch-kernel construction) and is
  memoized;
* **warm** — the same pass again: every pair resolves to a content-addressed
  cache hit (family memo + stored host-index array), skipping
  re-construction entirely.

The warm pass must be at least ``SPEEDUP_FLOOR``x faster, and the cached
embeddings must be node-for-node identical to freshly built ones (the golden
tables are pinned byte-identical with caching on and off in
``tests/test_runtime_cache.py``).  Run with ``-s`` to see the measured
ratio.  The same memo survives worker-process boundaries (warm-start dict)
and process exits (``ConstructionCache.save``/``load`` — the CLI ``--cache``
flag), which is what makes repeated ``repro survey`` / ``repro simulate``
invocations skip construction.
"""

import time

from repro.core.dispatch import embed
from repro.exceptions import UnsupportedEmbeddingError
from repro.runtime import ConstructionCache, use_context
from repro.survey import scenarios_for_suite

SPEEDUP_FLOOR = 5.0


def _suite_scenarios():
    """The benchmark sweep: table-scale square chains + the exhaustive sweep."""
    return scenarios_for_suite("squares", max_nodes=4096) + scenarios_for_suite(
        "exhaustive", max_nodes=48
    )


def _construction_pass(scenarios):
    """Build every supported pair once; returns the built embeddings."""
    built = []
    for scenario in scenarios:
        try:
            built.append(embed(scenario.guest_graph(), scenario.host_graph()))
        except UnsupportedEmbeddingError:
            continue
    return built


def test_warm_cache_speedup_over_reconstruction():
    scenarios = _suite_scenarios()
    cache = ConstructionCache()
    with use_context(cache=cache):
        started = time.perf_counter()
        cold_built = _construction_pass(scenarios)
        cold_seconds = time.perf_counter() - started

        warm_seconds = float("inf")
        for _ in range(3):  # best-of-3 guards the assertion against CI jitter
            started = time.perf_counter()
            warm_built = _construction_pass(scenarios)
            warm_seconds = min(warm_seconds, time.perf_counter() - started)

    # The warm pass must reproduce the cold pass exactly (metadata included).
    assert len(warm_built) == len(cold_built)
    for warm, cold in zip(warm_built, cold_built):
        assert warm.strategy == cold.strategy
        assert warm.predicted_dilation == cold.predicted_dilation
        assert (warm.host_index_array() == cold.host_index_array()).all()

    speedup = cold_seconds / warm_seconds
    print(
        f"\n{len(cold_built)} constructions over {len(scenarios)} scenarios: "
        f"cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s, "
        f"speedup {speedup:.1f}x ({cache.construction_count} memoized "
        f"constructions, {cache.hits} hits)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm construction cache only {speedup:.1f}x faster than "
        f"re-construction (floor {SPEEDUP_FLOOR}x) over {len(scenarios)} scenarios"
    )


def test_warm_start_dict_carries_the_speedup_to_a_new_cache():
    # The survey engine ships cache.snapshot() to worker processes; a cache
    # warm-started from that dict must hit immediately.
    scenarios = scenarios_for_suite("squares", max_nodes=4096)
    parent = ConstructionCache()
    with use_context(cache=parent):
        _construction_pass(scenarios)
    worker = ConstructionCache(parent.snapshot())
    with use_context(cache=worker):
        started = time.perf_counter()
        built = _construction_pass(scenarios)
        warm_seconds = time.perf_counter() - started
    assert built and worker.misses == 0
    print(
        f"\nwarm-started worker cache: {len(built)} constructions in "
        f"{warm_seconds:.3f}s, {worker.hits} hits, 0 misses"
    )


def test_benchmark_warm_construction_pass(benchmark):
    scenarios = scenarios_for_suite("squares", max_nodes=4096)
    cache = ConstructionCache()
    with use_context(cache=cache):
        _construction_pass(scenarios)  # fill

        def warm_pass():
            return _construction_pass(scenarios)

        built = benchmark(warm_pass)
    assert len(built) == len(scenarios)
