"""TAB-INC: the Theorem 32 dilation matrix under the expansion condition."""

import math

from repro.core.dispatch import embed
from repro.experiments.increasing_tables import (
    INCREASING_SWEEP,
    factor_ablation_rows,
    hypercube_rows,
    increasing_rows,
)
from repro.graphs.base import Mesh, Torus

QUICK_SWEEP = [pair for pair in INCREASING_SWEEP if math.prod(pair[0]) <= 144]


def test_table_increasing_matches_theorem32(show):
    from repro.experiments.increasing_tables import increasing_table

    result = increasing_table()
    show(result)
    for row in increasing_rows(QUICK_SWEEP):
        # Measured dilation never exceeds the theorem's value, and equals it
        # except for even-size torus guests where a better factor was found.
        assert row["dilation"] <= row["paper"]
        if "Torus" not in row["guest"]:
            assert row["dilation"] == 1


def test_table_increasing_factor_ablation():
    rows = factor_ablation_rows()
    good = next(row for row in rows if "starts even" in row["factor"])
    bad = next(row for row in rows if "singleton" in row["factor"])
    assert good["dilation"] == 1
    assert bad["dilation"] == 2


def test_table_increasing_hypercube_targets_corollary34():
    assert all(row["dilation"] == 1 for row in hypercube_rows())


def test_benchmark_increasing_embedding_4096_nodes(benchmark):
    guest = Torus((64, 64))
    host = Torus((8, 8, 8, 8))

    def build():
        return embed(guest, host)

    embedding = benchmark(build)
    assert embedding.predicted_dilation == 1


def test_benchmark_increasing_dilation_measurement(benchmark):
    guest = Mesh((16, 16))
    host = Mesh((4, 4, 4, 4))
    embedding = embed(guest, host)
    assert benchmark(embedding.dilation) == 1
