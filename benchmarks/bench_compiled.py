"""BENCH-COMPILED: the JIT kernel tier vs the array backend on the hot loops.

PR 9's tentpole: ``backend="compiled"`` replaces the four irregular hot
loops — the simulator's event-loop drain, CSR route expansion + link-load
accumulation, stacked scoring and the optimizer's move application — with
JIT kernels (Numba where installed, C-via-cffi otherwise), selected through
the ordinary runtime context.  The array backend stays the reference, and
the contract is the usual differential one:

* results must be **bit-for-bit identical** — makespans, completion lists,
  search states, objectives;
* the compiled tier must be at least ``SPEEDUP_FLOOR``x faster than the
  array backend on the two headline irregular workloads: the 16k-message
  simulator round loop and the 8x8-pair optimizer run.

The ``pytest-benchmark`` entries snapshot the compiled-path medians
(committed as ``BENCH_compiled.json``); CI replays them through
``benchmarks/check_bench_regression.py`` — the sixth gate pair — and fails
on a >2x median slowdown.  Refresh the snapshot with
``--benchmark-json=BENCH_compiled.json``.

The whole module skips cleanly when no kernel toolchain is present, so the
default no-numba lanes stay green.
"""

import time

import pytest

from repro.compiled import compiled_tier_available
from repro.graphs.base import Mesh, Torus
from repro.netsim.kernels import LinkIndexSpace, expand_routes
from repro.netsim.simulator import simulate_phases_rounds
from repro.numbering.arrays import indices_to_digits, require_numpy
from repro.optimize import OptimizeOptions, optimize_embedding
from repro.runtime import use_context

pytestmark = pytest.mark.skipif(
    not compiled_tier_available(),
    reason="no kernel toolchain (numba or cffi + C compiler)",
)

SPEEDUP_FLOOR = 2.0

#: Simulator scale: 16k random messages on a 16x16 torus — large enough that
#: the event loop (not route expansion) dominates.
SIM_MESSAGES = 16_384
SIM_HOST_SHAPE = (16, 16)

#: Optimizer scale: the paper's 8x8 pair at the documented default search.
OPT_PAIR = (Torus((8, 8)), Mesh((8, 8)))
OPT_OPTIONS = OptimizeOptions(objective="combined", budget=2000, population=16, seed=7)


def _sim_phase():
    """One expanded 16k-message phase (deterministic endpoints/occupancies)."""
    np = require_numpy()
    host = Torus(SIM_HOST_SHAPE)
    space = LinkIndexSpace(host)
    rng = np.random.default_rng(42)
    src = rng.integers(0, host.size, SIM_MESSAGES)
    dst = rng.integers(0, host.size, SIM_MESSAGES)
    routes = expand_routes(
        space,
        indices_to_digits(src, host.shape),
        indices_to_digits(dst, host.shape),
    )
    occupancy = rng.uniform(0.5, 2.0, SIM_MESSAGES)
    return (space, routes, occupancy)


def _simulate(backend, phase):
    with use_context(backend=backend, cache=None):
        return simulate_phases_rounds([phase])


def _search(backend):
    guest, host = OPT_PAIR
    with use_context(backend=backend, cache=None):
        return optimize_embedding(guest, host, OPT_OPTIONS)


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_compiled_simulator_speedup_and_identical_results():
    phase = _sim_phase()
    array_seconds, array_result = _best_of(lambda: _simulate("array", phase), 3)
    compiled_seconds, compiled_result = _best_of(
        lambda: _simulate("compiled", phase), 3
    )

    # Bit-for-bit: identical makespans and per-message completion lists.
    assert compiled_result == array_result

    speedup = array_seconds / compiled_seconds
    print(
        f"\n{SIM_MESSAGES} messages on Torus{SIM_HOST_SHAPE}: "
        f"array {array_seconds * 1e3:.1f}ms, "
        f"compiled {compiled_seconds * 1e3:.1f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled drain only {speedup:.1f}x faster than the array round "
        f"loop (floor {SPEEDUP_FLOOR}x)"
    )


def test_compiled_optimizer_speedup_and_identical_results():
    array_seconds, array_result = _best_of(lambda: _search("array"), 2)
    compiled_seconds, compiled_result = _best_of(lambda: _search("compiled"), 2)

    # The differential contract at benchmark scale: identical everything.
    assert compiled_result.state == array_result.state
    assert compiled_result.objective == array_result.objective
    assert compiled_result.provenance == array_result.provenance
    assert compiled_result.evaluations == array_result.evaluations

    speedup = array_seconds / compiled_seconds
    print(
        f"\n8x8 search ({array_result.evaluations} candidate evaluations): "
        f"array {array_seconds * 1e3:.0f}ms, "
        f"compiled {compiled_seconds * 1e3:.0f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled search only {speedup:.1f}x faster than the array engine "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_benchmark_compiled_simulator_16k(benchmark):
    phase = _sim_phase()
    _simulate("compiled", phase)  # warm the kernel tier outside the timing
    result = benchmark(lambda: _simulate("compiled", phase))
    assert result[0][0] > 0.0


def test_benchmark_compiled_optimizer_search(benchmark):
    _search("compiled")  # warm the kernel tier outside the timing
    result = benchmark(lambda: _search("compiled"))
    assert result.dilation <= 2  # never worse than the paper's T_L folding
