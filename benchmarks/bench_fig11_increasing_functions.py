"""FIG-11: the functions F_V, G_V and H_V for L = (4,6), M = (2,2,2,3)."""

from repro.core.expansion import ExpansionFactor
from repro.core.increasing import F_value, G_value, H_value, embed_increasing
from repro.experiments.figures import figure_11
from repro.graphs.base import Mesh, Torus

FACTOR = ExpansionFactor(((2, 2), (2, 3)))


def test_fig11_dilation_matrix(show):
    result = figure_11()
    show(result)
    dilations = {(row["guest"], row["host"]): row["dilation"] for row in result.rows}
    assert dilations[("Mesh(4, 6)", "Mesh(2, 2, 2, 3)")] == 1
    assert dilations[("Mesh(4, 6)", "Torus(2, 2, 2, 3)")] == 1
    assert dilations[("Torus(4, 6)", "Torus(2, 2, 2, 3)")] == 1
    # Even-size torus: the good expansion factor achieves dilation 1.
    assert dilations[("Torus(4, 6)", "Mesh(2, 2, 2, 3)")] == 1


def test_fig11_functions_are_injective():
    guest = Mesh((4, 6))
    for fn in (F_value, G_value, H_value):
        images = {fn(FACTOR, node) for node in guest.nodes()}
        assert len(images) == guest.size


def test_benchmark_increasing_embedding_construction(benchmark):
    guest = Torus((16, 16))
    host = Mesh((4, 4, 4, 4))

    def build():
        return embed_increasing(guest, host)

    embedding = benchmark(build)
    assert embedding.is_valid()


def test_benchmark_H_value_evaluation(benchmark):
    guest = Mesh((4, 6))
    nodes = list(guest.nodes())

    def evaluate_all():
        return [H_value(FACTOR, node) for node in nodes]

    values = benchmark(evaluate_all)
    assert len(values) == 24
