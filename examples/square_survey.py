#!/usr/bin/env python3
"""Survey the square-graph embeddings of Section 5 across dimensions.

For a range of (guest dimension d, host dimension c, side length l) triples
the script builds the embedding, measures its dilation and prints it next to
the paper's formula and the Theorem 47 lower bound, illustrating the
"optimal to within a constant" claim for lowering dimension and the exact
optimality for the divisible increasing cases.

Run with::

    python examples/square_survey.py
"""

from repro import Mesh, Torus
from repro.analysis import format_table
from repro.core import embed_square, lowering_dilation_lower_bound, predicted_square_dilation
from repro.experiments.square_tables import (
    SQUARE_INCREASING_SWEEP,
    SQUARE_LOWERING_SWEEP,
    square_increasing_rows,
    square_lowering_rows,
)


def survey_lowering() -> None:
    rows = square_lowering_rows(
        [(d, c, l) for (d, c, l) in SQUARE_LOWERING_SWEEP if l**d <= 1500],
        kinds=(("mesh", "mesh"), ("torus", "mesh")),
    )
    print(format_table(rows, title="Square lowering-dimension embeddings (Theorems 48 and 51)"))
    print()


def survey_increasing() -> None:
    rows = square_increasing_rows(
        [(d, c, l) for (d, c, l) in SQUARE_INCREASING_SWEEP if l**d <= 1500],
        kinds=(("mesh", "mesh"), ("torus", "mesh"), ("torus", "torus")),
    )
    print(format_table(rows, title="Square increasing-dimension embeddings (Theorems 52 and 53)"))
    print()


def headline_numbers() -> None:
    cases = [
        (Mesh((4, 4)), Mesh((16,))),
        (Mesh((4, 4, 4)), Mesh((8, 8))),
        (Torus((4, 4, 4)), Mesh((8, 8))),
        (Mesh((8, 8)), Mesh((4, 4, 4))),
        (Torus((9, 9)), Mesh((3, 3, 3, 3))),
    ]
    rows = []
    for guest, host in cases:
        embedding = embed_square(guest, host)
        d, c = guest.dimension, host.dimension
        row = {
            "guest": repr(guest),
            "host": repr(host),
            "measured": embedding.dilation(),
            "formula": predicted_square_dilation(guest.spec, host.spec),
        }
        if d > c:
            row["lower bound"] = lowering_dilation_lower_bound(d, c, guest.shape[0])
        rows.append(row)
    print(format_table(rows, title="Headline square cases"))


def main() -> None:
    survey_lowering()
    survey_increasing()
    headline_numbers()


if __name__ == "__main__":
    main()
