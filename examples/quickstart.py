#!/usr/bin/env python3
"""Quickstart: build an embedding, inspect it, and verify the paper's claim.

Run with::

    python examples/quickstart.py
"""

from repro import Mesh, Ring, Torus, embed
from repro.analysis import evaluate_embedding, format_table
from repro.viz import render_embedding_grid


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The paper's running example: a ring of 24 nodes in a (4,2,3)-mesh.
    # ------------------------------------------------------------------ #
    host = Mesh((4, 2, 3))
    ring = Ring(host.size)
    embedding = embed(ring, host)
    print("Ring of 24 nodes embedded in the (4,2,3)-mesh")
    print(f"  strategy : {embedding.strategy}")
    print(f"  dilation : {embedding.dilation()} (paper: 1, Theorem 24)")
    print()
    print(render_embedding_grid(embedding, title="Where each ring node lands:"))
    print()

    # ------------------------------------------------------------------ #
    # 2. Increasing dimension: a (4,6)-torus in a (2,2,2,3)-mesh (Figure 11).
    # ------------------------------------------------------------------ #
    guest = Torus((4, 6))
    host = Mesh((2, 2, 2, 3))
    embedding = embed(guest, host)
    print(embedding.summary())
    print(f"  expansion factor used: {embedding.notes['expansion_factor']}")
    print()

    # ------------------------------------------------------------------ #
    # 3. Lowering dimension: a 6-dimensional hypercube in an (8,8)-mesh.
    # ------------------------------------------------------------------ #
    from repro import Hypercube

    cube = Hypercube(6)
    host = Mesh((8, 8))
    embedding = embed(cube, host)
    print(embedding.summary())
    print("  (Corollary 40: a hypercube embeds with dilation max(m_i)/2 = 4)")
    print()

    # ------------------------------------------------------------------ #
    # 4. Full report table for a handful of pairs.
    # ------------------------------------------------------------------ #
    pairs = [
        (Ring(24), Mesh((4, 2, 3))),
        (Torus((4, 6)), Mesh((2, 2, 2, 3))),
        (Hypercube(6), Mesh((8, 8))),
        (Mesh((8, 8)), Mesh((4, 4, 4))),
        (Torus((4, 4, 4)), Mesh((8, 8))),
    ]
    rows = [
        evaluate_embedding(embed(guest, host), with_congestion=True).as_row()
        for guest, host in pairs
    ]
    print(format_table(rows, title="Measured costs (dilation always matches the paper's bound)"))


if __name__ == "__main__":
    main()
