#!/usr/bin/env python3
"""Map a stencil computation's task graph onto a parallel machine and simulate it.

This is the paper's motivating use case (Section 1): the communication
structure of the task — here a 2-D periodic stencil, i.e. an (8,8)-torus of
tasks exchanging boundary data every iteration — must be matched to the
communication support of the machine — here a (4,4,4)-mesh of processors.

The script maps the task graph four ways (the paper's embedding plus three
baselines), routes one neighbour-exchange phase through the store-and-forward
network simulator and reports maximum hops, link congestion and the simulated
completion time.  The paper's low-dilation embedding wins on every metric.

Run with::

    python examples/stencil_task_mapping.py
"""

from repro import Mesh, Torus, embed
from repro.analysis import format_table
from repro.baselines import bfs_order_embedding, lexicographic_embedding, random_embedding
from repro.netsim import CostModel, HostNetwork, neighbor_exchange_traffic, simulate_phase


def run_scenario(guest, host, *, alpha=1.0, bandwidth=4.0, message_size=64.0) -> None:
    network = HostNetwork(host, CostModel(alpha=alpha, bandwidth=bandwidth))
    traffic = neighbor_exchange_traffic(guest, message_size=message_size)
    strategies = {
        "paper (Ma & Tao)": embed(guest, host),
        "lexicographic": lexicographic_embedding(guest, host),
        "bfs-order": bfs_order_embedding(guest, host),
        "random": random_embedding(guest, host, seed=0),
    }
    rows = []
    for name, embedding in strategies.items():
        result = simulate_phase(network, embedding, traffic)
        rows.append(
            {
                "mapping": name,
                "dilation": embedding.dilation(),
                "max hops": result.statistics.max_hops,
                "mean hops": round(result.statistics.mean_hops, 2),
                "max link msgs": result.statistics.max_link_load_messages,
                "phase time": round(result.makespan, 1),
            }
        )
    title = (
        f"One neighbour-exchange phase of a {guest!r} stencil on a {host!r} machine "
        f"(alpha={alpha}, bandwidth={bandwidth}, message={message_size} bytes)"
    )
    print(format_table(rows, title=title))
    print()


def main() -> None:
    # An 8x8 periodic stencil on a 64-processor 3-D mesh machine.
    run_scenario(Torus((8, 8)), Mesh((4, 4, 4)))
    # The same stencil on a 6-dimensional hypercube machine.
    run_scenario(Torus((8, 8)), Torus((2,) * 6))
    # A non-periodic 16x4 stencil on a 3-D torus machine.
    run_scenario(Mesh((16, 4)), Torus((4, 4, 4)))


if __name__ == "__main__":
    main()
