#!/usr/bin/env python3
"""Regenerate the paper's worked figures (Figures 1-4, 9-12) as text.

Run with::

    python examples/paper_figures.py            # all figures
    python examples/paper_figures.py FIG-9      # a single figure
"""

import sys

from repro.experiments import run_all
from repro.experiments.registry import EXPERIMENTS, _ensure_loaded

FIGURE_IDS = ["FIG-1/2", "FIG-3", "FIG-4", "FIG-9", "FIG-10", "FIG-11", "FIG-12"]


def main(argv) -> int:
    _ensure_loaded()
    wanted = argv[1:] if len(argv) > 1 else FIGURE_IDS
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown figure id(s): {unknown}; available: {FIGURE_IDS}", file=sys.stderr)
        return 2
    for result in run_all(wanted):
        print(result.render())
        print()
        print("=" * 78)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
