#!/usr/bin/env python3
"""Hypercube scenario: meshes/toruses into hypercubes and hypercubes into rings/lines.

Hypercubes were the dominant commercial topology when the paper was written
(Intel iPSC, NCUBE); two practical questions it answers are exercised here:

1. *Can my mesh- or torus-structured computation run on a hypercube without
   stretching any communication edge?*  Yes — Corollary 34 gives dilation 1
   whenever the task graph's size is a power of two, reproduced below for a
   range of shapes and compared against the classic per-coordinate binary
   reflected Gray code construction ([CS86]).

2. *How well can a hypercube algorithm be emulated on a cheaper ring or line
   of processors?*  Corollary 40 / Corollary 49 give dilation max(m_i)/2,
   reproduced below together with Harper's optimal hypercube-in-line value
   for comparison.

Run with::

    python examples/hypercube_mapping.py
"""

from repro import Hypercube, Line, Mesh, Ring, Torus, embed
from repro.analysis import format_table
from repro.baselines import binary_gray_embedding
from repro.core.bounds import harper_hypercube_in_line


def into_hypercubes() -> None:
    rows = []
    for shape in [(4, 8), (8, 8), (4, 4, 4), (2, 32), (16, 8), (4, 4, 2, 2)]:
        for guest in (Mesh(shape), Torus(shape)):
            bits = guest.size.bit_length() - 1
            host = Hypercube(bits)
            ours = embed(guest, host)
            row = {
                "guest": repr(guest),
                "host": f"Q{bits}",
                "ours (Thm 32)": ours.dilation(),
            }
            if guest.is_mesh:
                row["binary Gray [CS86]"] = binary_gray_embedding(guest, host).dilation()
            else:
                row["binary Gray [CS86]"] = "-"
            rows.append(row)
    print(format_table(rows, title="Task graphs into hypercubes (paper: dilation 1, Corollary 34)"))
    print()


def out_of_hypercubes() -> None:
    rows = []
    for d in (4, 6, 8, 10):
        cube = Hypercube(d)
        line = Line(2**d)
        ring = Ring(2**d)
        rows.append(
            {
                "guest": f"Q{d}",
                "host": f"line({2 ** d})",
                "ours": embed(cube, line).dilation(),
                "known optimal [Har66]": harper_hypercube_in_line(d),
            }
        )
        rows.append(
            {
                "guest": f"Q{d}",
                "host": f"ring({2 ** d})",
                "ours": embed(cube, ring).dilation(),
                "known optimal [Har66]": "-",
            }
        )
    print(
        format_table(
            rows,
            title="Hypercubes into lines and rings (paper: 2^(d-1); optimal ratio 1/ε grows with d)",
        )
    )
    print()

    square_rows = []
    for d, host_shape in [(4, (4, 4)), (6, (8, 8)), (8, (16, 16)), (8, (4, 4, 4, 4))]:
        cube = Hypercube(d)
        host = Mesh(host_shape)
        square_rows.append(
            {
                "guest": f"Q{d}",
                "host": repr(host),
                "ours": embed(cube, host).dilation(),
                "paper (Cor. 49): m/2": max(host_shape) // 2,
            }
        )
    print(format_table(square_rows, title="Hypercubes into square meshes (Corollary 49)"))


def main() -> None:
    into_hypercubes()
    out_of_hypercubes()


if __name__ == "__main__":
    main()
