"""Textual renderings of the paper's figures.

The original figures are hand-drawn; the functions here regenerate their
content as deterministic text (sequence tables like Figure 9, embedding
grids like Figure 10) so that the reproduction's output can be compared to
the paper line by line and checked in tests.
"""

from .ascii import render_embedding_grid, render_sequence_table, render_distance_table

__all__ = ["render_sequence_table", "render_embedding_grid", "render_distance_table"]
