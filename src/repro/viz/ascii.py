"""ASCII renderings of embedding functions and embeddings.

Three renderers, matching the structure of the paper's figures:

* :func:`render_sequence_table` — the Figure 9 / Figure 11 style tables that
  list one or more functions ``[n] -> Ω_L`` side by side;
* :func:`render_distance_table` — the Figure 3 style table of δm/δt
  distances between successive sequence elements;
* :func:`render_embedding_grid` — the Figure 10 style picture of where each
  guest node lands inside a 1-, 2- or 3-dimensional host.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.embedding import Embedding
from ..numbering.distance import mesh_distance, torus_distance
from ..types import Node

__all__ = ["render_sequence_table", "render_distance_table", "render_embedding_grid"]


def _format_node(node: Node) -> str:
    return "(" + ",".join(str(c) for c in node) + ")"


def render_sequence_table(
    size: int,
    functions: Mapping[str, Callable[[int], Node]],
    *,
    title: Optional[str] = None,
) -> str:
    """Tabulate one or more functions ``[size] -> Ω_L`` (Figure 9 / Figure 11 style)."""
    names = list(functions)
    widths = {name: len(name) for name in names}
    cells: List[List[str]] = []
    for x in range(size):
        row = [_format_node(functions[name](x)) for name in names]
        cells.append(row)
        for name, cell in zip(names, row):
            widths[name] = max(widths[name], len(cell))
    x_width = max(len("x"), len(str(size - 1)))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(["x".rjust(x_width)] + [name.center(widths[name]) for name in names]))
    lines.append("-+-".join(["-" * x_width] + ["-" * widths[name] for name in names]))
    for x, row in enumerate(cells):
        lines.append(
            " | ".join([str(x).rjust(x_width)] + [cell.rjust(widths[name]) for name, cell in zip(names, row)])
        )
    return "\n".join(lines)


def render_distance_table(
    sequence: Sequence[Node],
    shape: Sequence[int],
    *,
    cyclic: bool = True,
    title: Optional[str] = None,
) -> str:
    """Tabulate δm and δt distances between successive elements (Figure 3 style)."""
    n = len(sequence)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("pair".ljust(24) + "δm".rjust(4) + "δt".rjust(4))
    lines.append("-" * 32)
    count = n if cyclic else n - 1
    for i in range(count):
        a = sequence[i]
        b = sequence[(i + 1) % n]
        pair = f"{_format_node(a)} -> {_format_node(b)}"
        dm = mesh_distance(a, b)
        dt = torus_distance(a, b, shape)
        lines.append(pair.ljust(24) + str(dm).rjust(4) + str(dt).rjust(4))
    return "\n".join(lines)


def render_embedding_grid(embedding: Embedding, *, title: Optional[str] = None) -> str:
    """Draw where each guest node lands in a host of dimension 1, 2 or 3.

    Every host position shows the natural-order rank of the guest node mapped
    there (Figure 10 labels nodes of the line/ring 0..n-1 in exactly this
    way).  Hosts of dimension above 3 are rendered plane by plane over the
    trailing coordinates.
    """
    host = embedding.host
    inverse: Dict[Node, int] = {
        image: embedding.guest.node_index(node) for node, image in embedding.mapping.items()
    }
    width = max(len(str(embedding.guest.size - 1)), 2)
    lines: List[str] = []
    if title:
        lines.append(title)
    shape = host.shape
    if host.dimension == 1:
        lines.append(" ".join(str(inverse.get((i,), "")).rjust(width) for i in range(shape[0])))
        return "\n".join(lines)
    rows, cols = shape[0], shape[1]
    trailing_shapes = shape[2:]

    def trailing_indices():
        if not trailing_shapes:
            yield ()
            return
        def recurse(prefix, remaining):
            if not remaining:
                yield prefix
                return
            for value in range(remaining[0]):
                yield from recurse(prefix + (value,), remaining[1:])
        yield from recurse((), trailing_shapes)

    for trailing in trailing_indices():
        if trailing_shapes:
            lines.append(f"plane {trailing}:")
        for i in range(rows - 1, -1, -1):  # first dimension increases upward, as in Figure 5
            row_cells = []
            for j in range(cols):
                node = (i, j) + trailing
                row_cells.append(str(inverse.get(node, ".")).rjust(width))
            lines.append(" ".join(row_cells))
        lines.append("")
    if lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines)
