"""Exception hierarchy for the torus/mesh embedding library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidShapeError",
    "InvalidRadixError",
    "InvalidEmbeddingError",
    "ShapeMismatchError",
    "NoExpansionError",
    "NoReductionError",
    "UnsupportedEmbeddingError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class InvalidShapeError(ReproError, ValueError):
    """A torus/mesh shape is malformed (empty, non-integer, or a length < 2).

    The paper (Definitions 2 and 3) requires every dimension length to be an
    integer greater than 1; a shape that violates this cannot describe a
    torus or a mesh.
    """


class InvalidRadixError(ReproError, ValueError):
    """A mixed-radix base is malformed (Definition 7 requires every radix > 1)."""


class InvalidEmbeddingError(ReproError, ValueError):
    """An embedding is not an injection into the target node set."""


class ShapeMismatchError(ReproError, ValueError):
    """The guest and host graphs do not have the same number of nodes.

    Every embedding studied in the paper is between graphs of equal size;
    a size mismatch means no injection of the required kind exists.
    """


class NoExpansionError(ReproError, ValueError):
    """The host shape is not an expansion of the guest shape (Definition 30)."""


class NoReductionError(ReproError, ValueError):
    """The host shape is neither a simple nor a general reduction of the guest
    shape (Definitions 37 and 41)."""


class UnsupportedEmbeddingError(ReproError, ValueError):
    """No strategy implemented by the library applies to the requested pair.

    The paper only covers pairs whose shapes satisfy the condition of
    expansion (increasing dimension) or reduction (lowering dimension), plus
    the square and basic special cases.  Pairs outside those conditions are
    reported with this exception rather than silently producing a poor
    embedding.
    """


class SimulationError(ReproError, RuntimeError):
    """The network simulator was given an inconsistent configuration."""
