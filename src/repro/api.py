"""The stable public surface of the package.

Seven PRs of growth left the import surface incidental — callers reached
into ``repro.survey.runner``, ``repro.core.dispatch`` or the deprecated
``method=`` shim.  This module is the deliberate alternative: one facade
with documented, stable signatures, re-exported as ``repro.api`` (and
pinned by ``tests/test_api_surface.py`` so accidental drift fails CI).

Every entry point accepts graphs either as live
:class:`~repro.graphs.base.CartesianGraph` objects or as the CLI/service
spec strings (``"torus:8x8"``, ``"mesh:2,2,2,3"``, ``"ring:24"``,
``"hypercube:4"``), and resolves backend/cache/parallelism from the ambient
execution context — scope overrides with :func:`use_context`:

>>> import repro.api as api
>>> with api.use_context(cache=api.load_cache("warm.pkl")):
...     result = api.optimize("torus:8x8", "mesh:8x8", budget=2000, seed=7)
...     report = api.measure(result.embedding, with_congestion=True)
"""

from __future__ import annotations

from typing import Optional, Union

from .analysis.metrics import EmbeddingReport, evaluate_embedding
from .core.dispatch import embed as _dispatch_embed
from .graphs.base import CartesianGraph, make_graph
from .netsim import HostNetwork, simulate_phase, traffic_pattern
from .optimize import OptimizeOptions, OptimizeResult, optimize_embedding
from .runtime import ConstructionCache, build_strategy, use_context
from .survey import run_survey
from .types import GraphKind

__all__ = [
    "embed",
    "measure",
    "simulate",
    "run_survey",
    "optimize",
    "use_context",
    "load_cache",
]

#: A graph argument: a live graph object or a ``kind:shape`` spec string.
GraphLike = Union[CartesianGraph, str]


def _as_graph(graph: GraphLike) -> CartesianGraph:
    """Resolve a facade graph argument (pass-through for live graphs)."""
    if isinstance(graph, CartesianGraph):
        return graph
    from .service.protocol import parse_graph_spec

    kind, shape = parse_graph_spec(graph)
    return make_graph(GraphKind(kind), shape)


def embed(guest: GraphLike, host: GraphLike, *, strategy: str = "paper"):
    """Embed ``guest`` into ``host`` and return the live ``Embedding``.

    ``strategy`` names a registry entry — ``"paper"`` (the dispatcher over
    the paper's constructions, the default) or a baseline such as
    ``"lexicographic"`` / ``"bfs"`` / ``"random"``.  Construction is
    memoized through the ambient context's cache when one is installed.
    """
    guest = _as_graph(guest)
    host = _as_graph(host)
    if strategy == "paper":
        return _dispatch_embed(guest, host)
    return build_strategy(strategy, guest, host)


def measure(embedding, *, with_congestion: bool = False) -> EmbeddingReport:
    """Measure an embedding's costs (dilation, average dilation, validity).

    ``with_congestion`` additionally routes every guest edge and reports the
    maximum per-link load.  The result is a plain
    :class:`~repro.analysis.metrics.EmbeddingReport` ready for tabulation.
    """
    return evaluate_embedding(embedding, with_congestion=with_congestion)


def simulate(
    guest: GraphLike,
    host: GraphLike,
    *,
    strategy: str = "paper",
    traffic: str = "neighbor-exchange",
    message_size: float = 1.0,
):
    """Embed, place a traffic pattern, and simulate one communication phase.

    Builds the named ``strategy`` embedding, places the named ``traffic``
    pattern of the guest on the host network and runs the store-and-forward
    phase simulation; returns the
    :class:`~repro.netsim.simulate.PhaseResult` (makespan, statistics).
    """
    guest = _as_graph(guest)
    host = _as_graph(host)
    embedding = embed(guest, host, strategy=strategy)
    pattern = traffic_pattern(traffic, guest, message_size=message_size)
    return simulate_phase(HostNetwork(host), embedding, pattern)


def optimize(
    guest: GraphLike,
    host: GraphLike,
    *,
    objective: str = "combined",
    budget: int = 2000,
    population: int = 16,
    seed: int = 0,
    schedule: str = "anneal",
    options: Optional[OptimizeOptions] = None,
) -> OptimizeResult:
    """Search for a low-cost embedding with the population optimizer.

    The keyword knobs mirror :class:`~repro.optimize.OptimizeOptions` (an
    explicit ``options`` instance overrides them all).  The ambient
    context's cache — when installed — warm-starts the search from the
    stored optimum and persists the best embedding found.
    """
    if options is None:
        options = OptimizeOptions(
            objective=objective,
            budget=budget,
            population=population,
            seed=seed,
            schedule=schedule,
        )
    return optimize_embedding(_as_graph(guest), _as_graph(host), options)


def load_cache(path) -> ConstructionCache:
    """A construction cache warm-started from ``path`` (empty if missing).

    Install it with ``use_context(cache=...)`` so every facade call memoizes
    through it; persist with ``cache.save(path)`` when done.
    """
    return ConstructionCache.load(path)
