"""Kernel-tier selection and the array-level facade the hot paths call.

:func:`active_kernels` is the single question every hook site asks: *is the
compiled backend in effect, and did a kernel tier actually load?*  It
returns a :class:`KernelSet` (or ``None`` — the caller then runs its array
path unchanged), so the four ported kernels degrade per call site with zero
configuration:

* the ambient context must resolve to ``backend="compiled"`` (the context
  already warned and fell back to ``"array"`` when no toolchain exists, so
  reaching a hook site under ``"compiled"`` normally implies a tier); and
* the tier must load — Numba first, the C/cffi library second.  A tier
  whose *load* fails (a broken numba install, a compiler that errors out)
  is reported with one RuntimeWarning and blacklisted for the process, and
  the next tier (or the array path) takes over.

:class:`KernelSet` owns every array-normalization detail — contiguity,
``int64``/``float64`` dtypes, scratch allocation — so the three tiers
(numba, C, and the interpreted sources the tests drive) share one calling
convention and the kernels themselves stay monomorphic.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional

from ..numbering.arrays import digit_weights, require_numpy
from . import toolchain
from .kernels_py import KERNEL_NAMES

__all__ = ["KernelSet", "active_kernels", "load_kernels", "interpreted_kernels"]


class KernelSet:
    """High-level entry points over one tier's kernel table.

    ``tier`` is ``"numba"``, ``"cffi"`` or ``"python"`` (the interpreted
    sources, used by tests); ``table`` maps the names of
    :data:`~repro.compiled.kernels_py.KERNEL_NAMES` to callables with the
    ``kernels_py`` signatures.
    """

    __slots__ = ("tier", "_table")

    def __init__(self, tier: str, table: Dict[str, Callable]):
        missing = [name for name in KERNEL_NAMES if name not in table]
        if missing:
            raise ValueError(f"kernel table is missing {missing}")
        self.tier = tier
        self._table = table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelSet({self.tier!r})"

    # ------------------------------------------------------------------ #
    # Simulator: the merged event-loop drain
    # ------------------------------------------------------------------ #
    def drain(
        self,
        first_hop,
        last_hop,
        link_ids,
        hop_occupancy,
        phase_of,
        num_links: int,
        num_phases: int,
        max_events: int,
    ):
        """Run the heap drain; returns ``(status, completion, events)``.

        ``status`` is 0 on success, 1 when some phase exceeded
        ``max_events`` (the caller raises).  ``completion`` is the merged
        per-message finish-time array; messages with no hops stay 0.0.
        """
        np = require_numpy()
        next_hop = np.ascontiguousarray(first_hop, dtype=np.int64).copy()
        last = np.ascontiguousarray(last_hop, dtype=np.int64)
        ids = np.ascontiguousarray(link_ids, dtype=np.int64)
        occupancy = np.ascontiguousarray(hop_occupancy, dtype=np.float64)
        phases = np.ascontiguousarray(phase_of, dtype=np.int64)
        messages = next_hop.shape[0]
        link_free = np.zeros(num_links, dtype=np.float64)
        heap_time = np.empty(messages, dtype=np.float64)
        heap_msg = np.empty(messages, dtype=np.int64)
        completion = np.zeros(messages, dtype=np.float64)
        events = np.zeros(num_phases, dtype=np.int64)
        status = self._table["drain"](
            next_hop,
            last,
            ids,
            occupancy,
            phases,
            link_free,
            heap_time,
            heap_msg,
            completion,
            events,
            max_events,
        )
        return int(status), completion, events

    # ------------------------------------------------------------------ #
    # Netsim: CSR route expansion and fused link loads
    # ------------------------------------------------------------------ #
    def expand_link_ids(
        self, src_digits, offsets, starts, shape, num_nodes: int, torus: bool
    ):
        """The per-hop ``link_ids`` array of the CSR route expansion."""
        np = require_numpy()
        src = np.ascontiguousarray(src_digits, dtype=np.int64)
        offs = np.ascontiguousarray(offsets, dtype=np.int64)
        row_starts = np.ascontiguousarray(starts, dtype=np.int64)
        lengths = np.asarray(tuple(shape), dtype=np.int64)
        weights = np.ascontiguousarray(digit_weights(shape), dtype=np.int64)
        link_ids = np.empty(int(row_starts[-1]), dtype=np.int64)
        scratch = np.empty(lengths.shape[0], dtype=np.int64)
        self._table["expand_fill"](
            src,
            offs,
            row_starts,
            lengths,
            weights,
            int(num_nodes),
            1 if torus else 0,
            link_ids,
            scratch,
        )
        return link_ids

    def link_loads(
        self, num_slots: int, starts, link_ids, sizes, occupancy, hop_occupancy=None
    ):
        """Fused ``(counts, volume, busy)`` accumulation over the CSR hops."""
        np = require_numpy()
        row_starts = np.ascontiguousarray(starts, dtype=np.int64)
        ids = np.ascontiguousarray(link_ids, dtype=np.int64)
        message_sizes = np.ascontiguousarray(sizes, dtype=np.float64)
        message_occupancy = np.ascontiguousarray(occupancy, dtype=np.float64)
        use_hop = hop_occupancy is not None
        per_hop = (
            np.ascontiguousarray(hop_occupancy, dtype=np.float64)
            if use_hop
            else np.zeros(0, dtype=np.float64)
        )
        counts = np.zeros(num_slots, dtype=np.int64)
        volume = np.zeros(num_slots, dtype=np.float64)
        busy = np.zeros(num_slots, dtype=np.float64)
        self._table["accumulate"](
            row_starts,
            ids,
            message_sizes,
            message_occupancy,
            per_hop,
            1 if use_hop else 0,
            counts,
            volume,
            busy,
        )
        return counts, volume, busy

    # ------------------------------------------------------------------ #
    # Metrics / optimizer: stacked scoring and move application
    # ------------------------------------------------------------------ #
    def score_rows(self, images, edge_u, edge_v, shape, torus: bool, *, with_congestion):
        """``(dil_max, dil_sum, congestion-or-None)`` per image row."""
        np = require_numpy()
        matrix = np.ascontiguousarray(images, dtype=np.int64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        u = np.ascontiguousarray(edge_u, dtype=np.int64)
        v = np.ascontiguousarray(edge_v, dtype=np.int64)
        lengths = np.asarray(tuple(shape), dtype=np.int64)
        weights = np.ascontiguousarray(digit_weights(shape), dtype=np.int64)
        host_n = int(lengths.prod())
        batch = matrix.shape[0]
        dil_max = np.zeros(batch, dtype=np.int64)
        dil_sum = np.zeros(batch, dtype=np.int64)
        congestion = np.zeros(batch, dtype=np.int64)
        edge_load = np.zeros(
            lengths.shape[0] * host_n if with_congestion else 0, dtype=np.int64
        )
        self._table["score_rows"](
            matrix,
            u,
            v,
            lengths,
            weights,
            host_n,
            1 if torus else 0,
            1 if with_congestion else 0,
            edge_load,
            dil_max,
            dil_sum,
            congestion,
        )
        return dil_max, dil_sum, (congestion if with_congestion else None)

    def apply_moves(self, matrix, moves):
        """Candidate population from one ``(kind, lo, hi)`` move per member."""
        np = require_numpy()
        population = np.ascontiguousarray(matrix, dtype=np.int64)
        move_rows = np.ascontiguousarray(
            np.asarray(list(moves), dtype=np.int64).reshape(len(moves), 3)
        )
        candidate = np.empty_like(population)
        self._table["apply_moves"](population, move_rows, candidate)
        return candidate


# --------------------------------------------------------------------------- #
# Tier loading
# --------------------------------------------------------------------------- #
_LOADED: Dict[str, KernelSet] = {}
_BROKEN: List[str] = []


def _tier_order() -> List[str]:
    order = []
    if toolchain._HAVE_NUMBA:
        order.append("numba")
    if toolchain._HAVE_CFFI:
        order.append("cffi")
    return order


def load_kernels() -> Optional[KernelSet]:
    """The best loadable kernel tier, or ``None`` when none exists.

    Load failures (as opposed to mere absence) warn once per tier per
    process and blacklist that tier, so a broken toolchain degrades exactly
    like a missing one instead of failing every call.
    """
    for tier in _tier_order():
        if tier in _LOADED:
            return _LOADED[tier]
        if tier in _BROKEN:
            continue
        try:
            if tier == "numba":
                from . import jit

                table = jit.function_table()
            else:
                from . import ckernels

                table = ckernels.function_table()
            kernels = KernelSet(tier, table)
        except Exception as error:  # pragma: no cover - environment-specific
            _BROKEN.append(tier)
            warnings.warn(
                f"the {tier} kernel tier failed to load ({error}); "
                "falling back to the next compiled tier or the array backend",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        _LOADED[tier] = kernels
        return kernels
    return None


def active_kernels() -> Optional[KernelSet]:
    """The kernel set to use right now, honouring the ambient context.

    ``None`` unless the resolved backend is ``"compiled"`` *and* a tier
    loads — the hook sites treat ``None`` as "run the array path".
    """
    from ..runtime.context import current

    if current().resolved_backend() != "compiled":
        return None
    return load_kernels()


def interpreted_kernels() -> KernelSet:
    """The uncompiled kernel sources as a :class:`KernelSet`.

    Slow — for differential tests only: it lets every environment (even one
    with no toolchain at all) pin the shared kernel sources against the
    array backend on small inputs.
    """
    from . import kernels_py

    return KernelSet(
        "python", {name: getattr(kernels_py, name) for name in KERNEL_NAMES}
    )
