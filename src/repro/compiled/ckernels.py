"""C tier: the kernel sources lowered to C, built once, ``dlopen``-ed.

The fallback compiled tier for machines with cffi and a C compiler but no
Numba (the ROADMAP's "generated C via cffi" option, in the spirit of Exo's
``LoopIR_compiler`` lowering).  The C bodies below are line-for-line
translations of :mod:`repro.compiled.kernels_py` — same loops, same
float/integer operation order (``pymod`` reproduces Python's nonnegative
``%`` where the sources rely on it) — so the two tiers are interchangeable
under the differential tests.

Build model: the source is hashed, compiled with ``$CC -O2 -shared -fPIC``
into a content-addressed shared library under the user cache directory
(``$REPRO_COMPILED_CACHE`` overrides), and loaded with ``ffi.dlopen``.  A
rebuild happens only when the source (or its hash inputs) change; the
compile-to-temporary + ``os.replace`` dance keeps concurrent processes from
ever seeing a torn library (the same atomicity discipline as
``utils/atomicio.py``).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict

from ..numbering.arrays import require_numpy
from .toolchain import find_c_compiler

__all__ = ["function_table", "library_path"]

_CDEF = """
int64_t repro_drain(int64_t num_messages, int64_t *next_hop,
                    const int64_t *last_hop, const int64_t *link_ids,
                    const double *hop_occupancy, const int64_t *phase_of,
                    double *link_free, double *heap_time, int64_t *heap_msg,
                    double *completion, int64_t *events, int64_t max_events);
void repro_expand_fill(int64_t num_messages, int64_t dims,
                       const int64_t *src_digits, const int64_t *offsets,
                       const int64_t *starts, const int64_t *lengths,
                       const int64_t *weights, int64_t num_nodes,
                       int64_t torus, int64_t *link_ids,
                       int64_t *digit_scratch);
void repro_accumulate(int64_t num_messages, const int64_t *starts,
                      const int64_t *link_ids, const double *sizes,
                      const double *occupancy, const double *hop_occupancy,
                      int64_t use_hop, int64_t *counts, double *volume,
                      double *busy);
void repro_score_rows(int64_t batch, int64_t width, int64_t num_edges,
                      int64_t dims, const int64_t *images,
                      const int64_t *edge_u, const int64_t *edge_v,
                      const int64_t *lengths, const int64_t *weights,
                      int64_t host_n, int64_t torus, int64_t with_congestion,
                      int64_t *edge_load, int64_t load_slots,
                      int64_t *dil_max, int64_t *dil_sum,
                      int64_t *congestion);
void repro_apply_moves(int64_t members, int64_t width, const int64_t *matrix,
                       const int64_t *moves, int64_t *cand);
"""

_SOURCE = r"""
#include <stdint.h>

/* Python's modulo: the result carries the divisor's sign (always
 * nonnegative here, lengths being positive) — C's %% truncates instead. */
static int64_t pymod(int64_t value, int64_t length) {
    int64_t r = value % length;
    return r < 0 ? r + length : r;
}

int64_t repro_drain(int64_t num_messages, int64_t *next_hop,
                    const int64_t *last_hop, const int64_t *link_ids,
                    const double *hop_occupancy, const int64_t *phase_of,
                    double *link_free, double *heap_time, int64_t *heap_msg,
                    double *completion, int64_t *events, int64_t max_events) {
    int64_t size = 0;
    for (int64_t index = 0; index < num_messages; index++) {
        if (next_hop[index] < last_hop[index]) {
            heap_time[size] = 0.0;
            heap_msg[size] = index;
            size++;
        }
    }
    while (size > 0) {
        double ready = heap_time[0];
        int64_t index = heap_msg[0];
        /* Pop: move the last entry to the root and sift it down. */
        size--;
        double hole_time = heap_time[size];
        int64_t hole_msg = heap_msg[size];
        int64_t pos = 0;
        for (;;) {
            int64_t child = 2 * pos + 1;
            if (child >= size) break;
            int64_t right = child + 1;
            if (right < size &&
                (heap_time[right] < heap_time[child] ||
                 (heap_time[right] == heap_time[child] &&
                  heap_msg[right] < heap_msg[child])))
                child = right;
            if (heap_time[child] < hole_time ||
                (heap_time[child] == hole_time && heap_msg[child] < hole_msg)) {
                heap_time[pos] = heap_time[child];
                heap_msg[pos] = heap_msg[child];
                pos = child;
            } else {
                break;
            }
        }
        heap_time[pos] = hole_time;
        heap_msg[pos] = hole_msg;
        /* Serve the popped request. */
        int64_t phase = phase_of[index];
        events[phase]++;
        if (events[phase] > max_events) return 1;
        int64_t hop = next_hop[index];
        int64_t link = link_ids[hop];
        double free_at = link_free[link];
        double start = ready >= free_at ? ready : free_at;
        double finish = start + hop_occupancy[hop];
        link_free[link] = finish;
        next_hop[index] = hop + 1;
        if (hop + 1 < last_hop[index]) {
            /* Push (finish, index): sift up from the new slot. */
            pos = size;
            size++;
            while (pos > 0) {
                int64_t parent = (pos - 1) / 2;
                if (finish < heap_time[parent] ||
                    (finish == heap_time[parent] && index < heap_msg[parent])) {
                    heap_time[pos] = heap_time[parent];
                    heap_msg[pos] = heap_msg[parent];
                    pos = parent;
                } else {
                    break;
                }
            }
            heap_time[pos] = finish;
            heap_msg[pos] = index;
        } else {
            completion[index] = finish;
        }
    }
    return 0;
}

void repro_expand_fill(int64_t num_messages, int64_t dims,
                       const int64_t *src_digits, const int64_t *offsets,
                       const int64_t *starts, const int64_t *lengths,
                       const int64_t *weights, int64_t num_nodes,
                       int64_t torus, int64_t *link_ids,
                       int64_t *digit_scratch) {
    int64_t pos = 0;
    (void)starts;
    for (int64_t index = 0; index < num_messages; index++) {
        int64_t rank = 0;
        for (int64_t j = 0; j < dims; j++) {
            digit_scratch[j] = src_digits[index * dims + j];
            rank += src_digits[index * dims + j] * weights[j];
        }
        for (int64_t j = 0; j < dims; j++) {
            int64_t off = offsets[index * dims + j];
            if (off == 0) continue;
            int64_t direction, channel, count;
            if (off > 0) {
                direction = 1;
                channel = 2 * j;
                count = off;
            } else {
                direction = -1;
                channel = 2 * j + 1;
                count = -off;
            }
            int64_t length = lengths[j];
            int64_t weight = weights[j];
            for (int64_t step = 0; step < count; step++) {
                link_ids[pos++] = channel * num_nodes + rank;
                int64_t coord = digit_scratch[j] + direction;
                if (torus != 0) coord = pymod(coord, length);
                rank += (coord - digit_scratch[j]) * weight;
                digit_scratch[j] = coord;
            }
        }
    }
}

void repro_accumulate(int64_t num_messages, const int64_t *starts,
                      const int64_t *link_ids, const double *sizes,
                      const double *occupancy, const double *hop_occupancy,
                      int64_t use_hop, int64_t *counts, double *volume,
                      double *busy) {
    for (int64_t index = 0; index < num_messages; index++) {
        for (int64_t hop = starts[index]; hop < starts[index + 1]; hop++) {
            int64_t link = link_ids[hop];
            counts[link]++;
            volume[link] += sizes[index];
            busy[link] += use_hop != 0 ? hop_occupancy[hop] : occupancy[index];
        }
    }
}

void repro_score_rows(int64_t batch, int64_t width, int64_t num_edges,
                      int64_t dims, const int64_t *images,
                      const int64_t *edge_u, const int64_t *edge_v,
                      const int64_t *lengths, const int64_t *weights,
                      int64_t host_n, int64_t torus, int64_t with_congestion,
                      int64_t *edge_load, int64_t load_slots,
                      int64_t *dil_max, int64_t *dil_sum,
                      int64_t *congestion) {
    for (int64_t row = 0; row < batch; row++) {
        int64_t worst_dilation = 0;
        int64_t total_dilation = 0;
        if (with_congestion != 0)
            for (int64_t slot = 0; slot < load_slots; slot++) edge_load[slot] = 0;
        for (int64_t e = 0; e < num_edges; e++) {
            int64_t a = images[row * width + edge_u[e]];
            int64_t b = images[row * width + edge_v[e]];
            int64_t distance = 0;
            int64_t flat = a;
            for (int64_t j = 0; j < dims; j++) {
                int64_t length = lengths[j];
                int64_t weight = weights[j];
                int64_t a_j = pymod(a / weight, length);
                int64_t b_j = pymod(b / weight, length);
                int64_t step;
                if (torus != 0) {
                    int64_t forward = pymod(b_j - a_j, length);
                    int64_t backward = pymod(a_j - b_j, length);
                    step = forward <= backward ? forward : backward;
                } else {
                    step = a_j >= b_j ? a_j - b_j : b_j - a_j;
                }
                distance += step;
                if (with_congestion != 0) {
                    if (step > 0) {
                        int64_t line_base = flat - a_j * weight;
                        if (torus != 0 && length > 2) {
                            int64_t forward = pymod(b_j - a_j, length);
                            int64_t backward = pymod(a_j - b_j, length);
                            int64_t start, run;
                            if (forward <= backward) {
                                start = a_j;
                                run = forward;
                            } else {
                                start = b_j;
                                run = backward;
                            }
                            for (int64_t s = 0; s < run; s++) {
                                int64_t coord = pymod(start + s, length);
                                edge_load[j * host_n + line_base + coord * weight]++;
                            }
                        } else {
                            int64_t lo = a_j <= b_j ? a_j : b_j;
                            int64_t hi = a_j <= b_j ? b_j : a_j;
                            for (int64_t coord = lo; coord < hi; coord++)
                                edge_load[j * host_n + line_base + coord * weight]++;
                        }
                    }
                    flat += (b_j - a_j) * weight;
                }
            }
            total_dilation += distance;
            if (distance > worst_dilation) worst_dilation = distance;
        }
        dil_max[row] = worst_dilation;
        dil_sum[row] = total_dilation;
        if (with_congestion != 0) {
            int64_t worst_load = 0;
            for (int64_t slot = 0; slot < load_slots; slot++)
                if (edge_load[slot] > worst_load) worst_load = edge_load[slot];
            congestion[row] = worst_load;
        }
    }
}

void repro_apply_moves(int64_t members, int64_t width, const int64_t *matrix,
                       const int64_t *moves, int64_t *cand) {
    for (int64_t member = 0; member < members; member++) {
        for (int64_t k = 0; k < width; k++)
            cand[member * width + k] = matrix[member * width + k];
        int64_t kind = moves[member * 3 + 0];
        int64_t lo = moves[member * 3 + 1];
        int64_t hi = moves[member * 3 + 2];
        int64_t *row = cand + member * width;
        if (kind == 0) {
            int64_t tmp = row[lo];
            row[lo] = row[hi];
            row[hi] = tmp;
        } else {
            int64_t left = lo, right = hi;
            while (left < right) {
                int64_t tmp = row[left];
                row[left] = row[right];
                row[right] = tmp;
                left++;
                right--;
            }
        }
    }
}
"""


def _cache_dir() -> Path:
    """Where compiled libraries live: ``$REPRO_COMPILED_CACHE`` or user cache."""
    override = os.environ.get("REPRO_COMPILED_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "repro-compiled"
    try:
        return Path.home() / ".cache" / "repro-compiled"
    except RuntimeError:  # pragma: no cover - no resolvable home directory
        return Path(tempfile.gettempdir()) / "repro-compiled"


def library_path() -> Path:
    """The content-addressed shared-library path (existing or to be built)."""
    digest = hashlib.sha256((_CDEF + _SOURCE).encode("utf-8")).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels_{digest}.so"


def _build_library(path: Path) -> None:
    """Compile the kernel source into ``path`` (atomic via temp + replace)."""
    compiler = find_c_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (set $CC or install cc/gcc/clang)")
    path.parent.mkdir(parents=True, exist_ok=True)
    source_path = path.with_suffix(".c")
    source_path.write_text(_SOURCE, encoding="utf-8")
    fd, temp_name = tempfile.mkstemp(
        prefix=path.stem, suffix=".so.tmp", dir=str(path.parent)
    )
    os.close(fd)
    try:
        completed = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", temp_name, str(source_path)],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"{compiler} failed to build the compiled kernels: "
                f"{completed.stderr.strip()}"
            )
        os.replace(temp_name, path)
    finally:
        if os.path.exists(temp_name):  # pragma: no cover - error-path cleanup
            os.unlink(temp_name)


_LIB = None
_FFI = None


def _library():
    """The loaded kernel library (built on first use, cached per process)."""
    global _LIB, _FFI
    if _LIB is None:
        import cffi

        _FFI = cffi.FFI()
        _FFI.cdef(_CDEF)
        path = library_path()
        if not path.exists():
            _build_library(path)
        _LIB = _FFI.dlopen(str(path))
    return _LIB


def function_table() -> Dict[str, Callable]:
    """Kernel name -> adapter matching the ``kernels_py`` call signatures.

    The adapters only cast: the dispatch facade already normalized every
    array to a contiguous ``int64``/``float64`` buffer, so each call is a
    handful of pointer casts plus the foreign call.  The adapters keep
    references to the arrays for the duration of the call, so the buffers
    cannot be collected mid-kernel.
    """
    np = require_numpy()
    lib = _library()
    ffi = _FFI

    def i64(array):
        return ffi.cast("int64_t *", array.ctypes.data)

    def f64(array):
        return ffi.cast("double *", array.ctypes.data)

    def drain(
        next_hop,
        last_hop,
        link_ids,
        hop_occupancy,
        phase_of,
        link_free,
        heap_time,
        heap_msg,
        completion,
        events,
        max_events,
    ):
        return lib.repro_drain(
            next_hop.shape[0],
            i64(next_hop),
            i64(last_hop),
            i64(link_ids),
            f64(hop_occupancy),
            i64(phase_of),
            f64(link_free),
            f64(heap_time),
            i64(heap_msg),
            f64(completion),
            i64(events),
            max_events,
        )

    def expand_fill(
        src_digits,
        offsets,
        starts,
        lengths,
        weights,
        num_nodes,
        torus,
        link_ids,
        digit_scratch,
    ):
        lib.repro_expand_fill(
            src_digits.shape[0],
            src_digits.shape[1],
            i64(src_digits),
            i64(offsets),
            i64(starts),
            i64(lengths),
            i64(weights),
            num_nodes,
            torus,
            i64(link_ids),
            i64(digit_scratch),
        )
        return 0

    def accumulate(
        starts,
        link_ids,
        sizes,
        occupancy,
        hop_occupancy,
        use_hop,
        counts,
        volume,
        busy,
    ):
        lib.repro_accumulate(
            starts.shape[0] - 1,
            i64(starts),
            i64(link_ids),
            f64(sizes),
            f64(occupancy),
            f64(hop_occupancy),
            use_hop,
            i64(counts),
            f64(volume),
            f64(busy),
        )
        return 0

    def score_rows(
        images,
        edge_u,
        edge_v,
        lengths,
        weights,
        host_n,
        torus,
        with_congestion,
        edge_load,
        dil_max,
        dil_sum,
        congestion,
    ):
        lib.repro_score_rows(
            images.shape[0],
            images.shape[1],
            edge_u.shape[0],
            lengths.shape[0],
            i64(images),
            i64(edge_u),
            i64(edge_v),
            i64(lengths),
            i64(weights),
            host_n,
            torus,
            with_congestion,
            i64(edge_load),
            edge_load.shape[0],
            i64(dil_max),
            i64(dil_sum),
            i64(congestion),
        )
        return 0

    def apply_moves(matrix, moves, cand):
        lib.repro_apply_moves(
            matrix.shape[0], matrix.shape[1], i64(matrix), i64(moves), i64(cand)
        )
        return 0

    # `np` is closed over only to assert the import happened before any call.
    assert np is not None
    return {
        "drain": drain,
        "expand_fill": expand_fill,
        "accumulate": accumulate,
        "score_rows": score_rows,
        "apply_moves": apply_moves,
    }
