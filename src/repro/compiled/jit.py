"""Numba tier: ``@njit(cache=True)`` wrappers of the shared kernel sources.

Imported lazily by :func:`repro.compiled.dispatch.load_kernels` and only
when :mod:`numba` is importable.  Each kernel of
:mod:`repro.compiled.kernels_py` is compiled exactly as written — the
sources are the contract, this module adds nothing but the decorator — with
``cache=True`` so the nopython compilation cost is paid once per machine,
not once per process (the on-disk cache lives next to ``kernels_py.py``).

No explicit signatures: the kernels are monomorphic (the dispatch facade
normalizes every argument to contiguous ``int64``/``float64`` arrays and
Python ints), so lazy specialization compiles each exactly once.
"""

from __future__ import annotations

from typing import Callable, Dict

from . import kernels_py

__all__ = ["function_table"]

_TABLE: Dict[str, Callable] = {}


def function_table() -> Dict[str, Callable]:
    """Kernel name -> njit-compiled callable (compiled on first request)."""
    if not _TABLE:
        import numba

        for name in kernels_py.KERNEL_NAMES:
            _TABLE[name] = numba.njit(cache=True)(getattr(kernels_py, name))
    return _TABLE
