"""JIT kernel tier for the irregular hot loops (``backend="compiled"``).

The package ports the four hottest irregular kernels — the simulator's
event-loop drain, CSR route expansion + link-load accumulation, stacked
dilation/congestion scoring, and the optimizer's move application — to a
compiled tier selected at runtime:

* :mod:`~repro.compiled.kernels_py` — the shared kernel sources (plain
  Python in the njit-able subset; the algorithmic contract);
* :mod:`~repro.compiled.jit` — Numba ``@njit(cache=True)`` tier;
* :mod:`~repro.compiled.ckernels` — C-via-cffi tier (content-hashed shared
  library, built once per machine);
* :mod:`~repro.compiled.dispatch` — tier selection and the
  :class:`~repro.compiled.dispatch.KernelSet` facade the hook sites call;
* :mod:`~repro.compiled.toolchain` — detection flags, monkeypatchable for
  degradation tests.

Results are pinned bit-for-bit against the array backend; when no toolchain
is available the runtime context falls back to ``"array"`` with one
RuntimeWarning per process.
"""

from __future__ import annotations

from .dispatch import KernelSet, active_kernels, interpreted_kernels, load_kernels
from .toolchain import HAVE_CFFI, HAVE_NUMBA, compiled_tier_available, preferred_tier

__all__ = [
    "KernelSet",
    "active_kernels",
    "interpreted_kernels",
    "load_kernels",
    "HAVE_CFFI",
    "HAVE_NUMBA",
    "compiled_tier_available",
    "preferred_tier",
]
