"""Compiled-tier toolchain detection: Numba first, C-via-cffi second.

The compiled backend (``ExecutionContext(backend="compiled")``) needs one of
two toolchains at runtime:

* **Numba** — the primary tier: the shared kernel sources of
  :mod:`repro.compiled.kernels_py` are ``@njit(cache=True)``-compiled on
  first use (``pip install -e .[compiled]``);
* **cffi + a C compiler** — the fallback tier: the same algorithms, hand
  lowered to C (:mod:`repro.compiled.ckernels`), built once into a shared
  library keyed by a content hash and ``dlopen``-ed (the
  ``LoopIR_compiler``-style lowering the ROADMAP names).

Neither is a hard dependency.  This module only *detects* them — module-spec
lookups and a ``$CC``/``cc``/``gcc``/``clang`` search — and exposes the
results as the monkeypatchable module globals ``_HAVE_NUMBA`` /
``_HAVE_CFFI`` (the same seam as ``repro.runtime.context._HAVE_NUMPY``), so
tests can simulate a toolchain-less environment without uninstalling
anything.  Actual compilation is deferred to
:func:`repro.compiled.dispatch.load_kernels`.
"""

from __future__ import annotations

import importlib.util
import os
import shutil
from typing import Optional

__all__ = [
    "HAVE_NUMBA",
    "HAVE_CFFI",
    "compiled_tier_available",
    "preferred_tier",
    "find_c_compiler",
]


def _module_exists(name: str) -> bool:
    # find_spec instead of an import: detection must not drag the (heavy)
    # toolchain modules into every `import repro`.  A module that exists but
    # fails to import is caught at load time and blacklisted by
    # :func:`repro.compiled.dispatch.load_kernels`.
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):  # pragma: no cover - broken metadata
        return False


HAVE_NUMBA = _module_exists("numba")


def find_c_compiler() -> Optional[str]:
    """The first working C compiler on PATH (``$CC`` wins), or ``None``."""
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    for candidate in candidates:
        if candidate and shutil.which(candidate):
            return candidate
    return None


HAVE_CFFI = _module_exists("cffi") and find_c_compiler() is not None

#: Patchable aliases (mirroring ``context._HAVE_NUMPY``): tests flip these to
#: simulate a machine without any kernel toolchain.
_HAVE_NUMBA = HAVE_NUMBA
_HAVE_CFFI = HAVE_CFFI


def compiled_tier_available() -> bool:
    """Can ``backend="compiled"`` actually compile kernels on this machine?"""
    return _HAVE_NUMBA or _HAVE_CFFI


def preferred_tier() -> Optional[str]:
    """``"numba"``, ``"cffi"`` or ``None`` — the tier selection order."""
    if _HAVE_NUMBA:
        return "numba"
    if _HAVE_CFFI:
        return "cffi"
    return None
