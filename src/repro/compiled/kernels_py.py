"""The compiled tier's kernel sources: plain Python, in the njit-able subset.

These five functions are the *single algorithmic source of truth* of the
compiled backend.  Each is written in the restricted subset Numba's
``nopython`` mode compiles directly — preallocated NumPy arrays in and out,
scalar locals, ``for``/``while`` loops, no Python objects — and each states
the exact float/integer arithmetic order of the array/loop reference it
replaces, so the bit-for-bit differential contract of PRs 2–8 carries over:

* :func:`drain` — the event loop of ``simulate_phases_rounds``: a binary
  min-heap of ``(ready_time, message_index)`` requests over preallocated CSR
  route arrays, the verbatim semantics of the retained heap references
  (``start = max(ready, link_free)``, ``finish = start + occupancy``, FIFO
  per link with ties broken by message index);
* :func:`expand_fill` — the per-hop body of CSR ``expand_routes``: walk each
  message's per-dimension signed runs, emitting the directed-link id of
  every hop in dimension order;
* :func:`accumulate` — fused per-link count/volume/busy accumulation,
  adding in ``(message, hop)`` order exactly like the three ``np.bincount``
  scatter-adds it replaces;
* :func:`score_rows` — stacked dilation max/sum and dimension-ordered edge
  congestion over a ``(batch, n)`` matrix of host-index rows (the scoring
  kernel of the optimizer and the stacked survey metrics) — all-integer
  arithmetic, so "identical" is int equality;
* :func:`apply_moves` — the optimizer's 2-swap / segment-reversal move
  application over the population matrix.

The functions are also *callable uncompiled* (they are ordinary Python), and
``tests/test_compiled_backend.py`` runs them interpreted on small inputs in
every environment — so even a lane with no toolchain at all pins these
sources against the array backend.

Status returns are ``int`` codes rather than exceptions (``nopython`` code
raises poorly): ``0`` is success, ``1`` means the event budget was exceeded
(the caller raises :class:`~repro.exceptions.SimulationError`).
"""

from __future__ import annotations

__all__ = [
    "drain",
    "expand_fill",
    "accumulate",
    "score_rows",
    "apply_moves",
    "KERNEL_NAMES",
]

#: The table of kernel entry points every tier must provide, in one place so
#: the jit / C adapters and the dispatch facade can never drift apart.
KERNEL_NAMES = ("drain", "expand_fill", "accumulate", "score_rows", "apply_moves")


def drain(
    next_hop,
    last_hop,
    link_ids,
    hop_occupancy,
    phase_of,
    link_free,
    heap_time,
    heap_msg,
    completion,
    events,
    max_events,
):
    """Heap event loop over merged CSR routes; returns 0, or 1 on budget.

    ``next_hop``/``last_hop`` are the per-message hop cursors (``next_hop``
    is mutated), ``link_ids``/``hop_occupancy`` the merged per-hop arrays,
    ``phase_of`` the phase index of each message (for the per-phase
    ``events`` budget), ``link_free`` the per-slot busy-until times (zeroed
    by the caller).  ``heap_time``/``heap_msg`` are scratch arrays of at
    least one slot per message.

    The heap key is ``(ready_time, message_index)`` — each message has at
    most one pending request, so keys are strictly ordered and any correct
    min-heap pops the exact sequence ``heapq`` would.  The float arithmetic
    (``start = max(ready, free)``, ``finish = start + cost``) matches the
    loop/array references operation for operation.
    """
    size = 0
    num_messages = next_hop.shape[0]
    for index in range(num_messages):
        if next_hop[index] < last_hop[index]:
            heap_time[size] = 0.0
            heap_msg[size] = index
            size += 1
    while size > 0:
        ready = heap_time[0]
        index = heap_msg[0]
        # Pop: move the last entry to the root and sift it down.
        size -= 1
        hole_time = heap_time[size]
        hole_msg = heap_msg[size]
        pos = 0
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and (
                heap_time[right] < heap_time[child]
                or (
                    heap_time[right] == heap_time[child]
                    and heap_msg[right] < heap_msg[child]
                )
            ):
                child = right
            if heap_time[child] < hole_time or (
                heap_time[child] == hole_time and heap_msg[child] < hole_msg
            ):
                heap_time[pos] = heap_time[child]
                heap_msg[pos] = heap_msg[child]
                pos = child
            else:
                break
        heap_time[pos] = hole_time
        heap_msg[pos] = hole_msg
        # Serve the popped request.
        phase = phase_of[index]
        events[phase] += 1
        if events[phase] > max_events:
            return 1
        hop = next_hop[index]
        link = link_ids[hop]
        free_at = link_free[link]
        start = ready if ready >= free_at else free_at
        finish = start + hop_occupancy[hop]
        link_free[link] = finish
        next_hop[index] = hop + 1
        if hop + 1 < last_hop[index]:
            # Push (finish, index): sift up from the new slot.
            pos = size
            size += 1
            while pos > 0:
                parent = (pos - 1) // 2
                if finish < heap_time[parent] or (
                    finish == heap_time[parent] and index < heap_msg[parent]
                ):
                    heap_time[pos] = heap_time[parent]
                    heap_msg[pos] = heap_msg[parent]
                    pos = parent
                else:
                    break
            heap_time[pos] = finish
            heap_msg[pos] = index
        else:
            completion[index] = finish
    return 0


def expand_fill(
    src_digits,
    offsets,
    starts,
    lengths,
    weights,
    num_nodes,
    torus,
    link_ids,
    digit_scratch,
):
    """Fill the CSR ``link_ids`` of batched dimension-ordered routes.

    ``src_digits``/``offsets`` are the ``(m, d)`` endpoint digits and signed
    per-dimension step counts (``signed_offset_digits`` output — the torus
    tie-break toward increasing coordinates is already encoded in the sign);
    ``starts`` the precomputed CSR row starts.  Each message walks its
    dimensions in order, maintaining the current digit and flat rank
    incrementally — the emitted ids equal the vectorized expansion's element
    for element (all-integer arithmetic).
    """
    num_messages = src_digits.shape[0]
    dims = src_digits.shape[1]
    pos = 0
    for index in range(num_messages):
        rank = 0
        for j in range(dims):
            digit_scratch[j] = src_digits[index, j]
            rank += src_digits[index, j] * weights[j]
        for j in range(dims):
            off = offsets[index, j]
            if off == 0:
                continue
            if off > 0:
                direction = 1
                channel = 2 * j
                count = off
            else:
                direction = -1
                channel = 2 * j + 1
                count = -off
            length = lengths[j]
            weight = weights[j]
            for _step in range(count):
                link_ids[pos] = channel * num_nodes + rank
                pos += 1
                coord = digit_scratch[j] + direction
                if torus != 0:
                    coord = coord % length
                rank += (coord - digit_scratch[j]) * weight
                digit_scratch[j] = coord
    return 0


def accumulate(
    starts,
    link_ids,
    sizes,
    occupancy,
    hop_occupancy,
    use_hop,
    counts,
    volume,
    busy,
):
    """Fused per-link loads: counts, volume and busy time in one pass.

    Adds in ``(message, hop)`` order — the same sequential order the three
    ``np.bincount`` scatter-adds (and the loop reference's dict updates)
    accumulate, so the float sums agree bit for bit.  ``use_hop`` selects
    the per-hop occupancy array (heterogeneous links) over the per-message
    one.
    """
    num_messages = starts.shape[0] - 1
    for index in range(num_messages):
        for hop in range(starts[index], starts[index + 1]):
            link = link_ids[hop]
            counts[link] += 1
            volume[link] += sizes[index]
            if use_hop != 0:
                busy[link] += hop_occupancy[hop]
            else:
                busy[link] += occupancy[index]
    return 0


def score_rows(
    images,
    edge_u,
    edge_v,
    lengths,
    weights,
    host_n,
    torus,
    with_congestion,
    edge_load,
    dil_max,
    dil_sum,
    congestion,
):
    """Stacked dilation max/sum (and optional congestion) per image row.

    Distances are the per-dimension δt/δm sums (torus: shorter way around
    each ring; mesh: ``|a - b|``).  Congestion counts, per host edge, the
    dimension-ordered runs covering it: while dimension ``j`` is corrected,
    dimensions ``< j`` sit at the target and ``>= j`` at the source, so each
    guest edge loads a contiguous (possibly wrapping) coordinate run on one
    axis line.  Host edge ``(c, c+1 mod l)`` of dimension ``j`` is keyed
    ``j * host_n + <rank of the coordinate-c endpoint>`` in ``edge_load``
    (``d * host_n`` slots, zeroed per row).  Everything is integral, so the
    results equal the array kernels' exactly.
    """
    batch = images.shape[0]
    num_edges = edge_u.shape[0]
    dims = lengths.shape[0]
    for row in range(batch):
        worst_dilation = 0
        total_dilation = 0
        if with_congestion != 0:
            for slot in range(edge_load.shape[0]):
                edge_load[slot] = 0
        for e in range(num_edges):
            a = images[row, edge_u[e]]
            b = images[row, edge_v[e]]
            distance = 0
            flat = a
            for j in range(dims):
                length = lengths[j]
                weight = weights[j]
                a_j = (a // weight) % length
                b_j = (b // weight) % length
                if torus != 0:
                    forward = (b_j - a_j) % length
                    backward = (a_j - b_j) % length
                    step = forward if forward <= backward else backward
                else:
                    step = a_j - b_j if a_j >= b_j else b_j - a_j
                distance += step
                if with_congestion != 0:
                    if step > 0:
                        line_base = flat - a_j * weight
                        if torus != 0 and length > 2:
                            forward = (b_j - a_j) % length
                            backward = (a_j - b_j) % length
                            if forward <= backward:
                                start = a_j
                                run = forward
                            else:
                                start = b_j
                                run = backward
                            for s in range(run):
                                coord = (start + s) % length
                                edge_load[j * host_n + line_base + coord * weight] += 1
                        else:
                            lo = a_j if a_j <= b_j else b_j
                            hi = b_j if a_j <= b_j else a_j
                            for coord in range(lo, hi):
                                edge_load[j * host_n + line_base + coord * weight] += 1
                    flat += (b_j - a_j) * weight
            total_dilation += distance
            if distance > worst_dilation:
                worst_dilation = distance
        dil_max[row] = worst_dilation
        dil_sum[row] = total_dilation
        if with_congestion != 0:
            worst_load = 0
            for slot in range(edge_load.shape[0]):
                if edge_load[slot] > worst_load:
                    worst_load = edge_load[slot]
            congestion[row] = worst_load
    return 0


def apply_moves(matrix, moves, cand):
    """Apply one ``(kind, lo, hi)`` move per population member.

    ``kind`` 0 is a 2-swap of positions ``lo``/``hi``; anything else is an
    inclusive segment reversal of ``[lo, hi]`` — the exact move grammar of
    the optimizer's engines.  ``cand`` receives the mutated copies; the
    input ``matrix`` is untouched.
    """
    members = matrix.shape[0]
    width = matrix.shape[1]
    for member in range(members):
        for k in range(width):
            cand[member, k] = matrix[member, k]
        kind = moves[member, 0]
        lo = moves[member, 1]
        hi = moves[member, 2]
        if kind == 0:
            tmp = cand[member, lo]
            cand[member, lo] = cand[member, hi]
            cand[member, hi] = tmp
        else:
            left = lo
            right = hi
            while left < right:
                tmp = cand[member, left]
                cand[member, left] = cand[member, right]
                cand[member, right] = tmp
                left += 1
                right -= 1
    return 0
