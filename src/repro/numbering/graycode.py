"""Gray codes and the paper's reflected mixed-radix sequences.

Section 3.1 of the paper constructs, for an arbitrary radix-base
``L = (l_1, ..., l_d)``:

* the *natural* sequence ``P`` — all radix-L numbers in increasing order of
  value (its ``δm``-spread is ``> 1`` whenever ``d > 1``); and
* the *reflected* sequence ``P'`` — obtained from ``P`` by reversing every
  odd-numbered segment of every digit column — which has unit ``δm``-spread.
  ``P'`` is exactly the sequence of the embedding function ``f_L``
  (Definition 9), i.e. the mixed-radix generalization of the binary
  reflected Gray code.

The classic binary reflected Gray code is provided both directly (for use as
a baseline, cf. [CS86]) and as the special case ``L = (2, ..., 2)`` of the
mixed-radix construction; tests assert the two coincide.
"""

from __future__ import annotations

from typing import List, Sequence

from ..types import Node
from .radix import RadixBase

__all__ = [
    "natural_sequence",
    "reflected_mixed_radix_sequence",
    "reflected_digit",
    "binary_reflected_gray_code",
    "binary_reflected_gray_value",
    "gray_to_binary_value",
]


def natural_sequence(base: RadixBase | Sequence[int]) -> List[Node]:
    """The sequence ``P``: all radix-L numbers in natural order."""
    if not isinstance(base, RadixBase):
        base = RadixBase(base)
    return base.all_digits()


def reflected_digit(base: RadixBase, x: int, position: int) -> int:
    """The ``position``-th digit (1-based) of the reflected sequence element for ``x``.

    Implements the per-digit rule of Definition 9: with ``x̂_i`` the natural
    radix-L digit, the reflected digit is ``x̂_i`` when ``⌊x / w_{i-1}⌋`` is
    even and ``l_i - x̂_i - 1`` when it is odd.
    """
    if not 1 <= position <= base.dimension:
        raise ValueError(f"position {position} out of range 1..{base.dimension}")
    radix = base.radices[position - 1]
    natural = (x // base.weight(position)) % radix
    segment = x // base.weight(position - 1)
    if segment % 2 == 0:
        return natural
    return radix - natural - 1


def reflected_mixed_radix_sequence(base: RadixBase | Sequence[int]) -> List[Node]:
    """The sequence ``P'`` (equivalently, the values ``f_L(0), ..., f_L(n-1)``).

    The returned sequence has unit ``δm``-spread (Lemma 11) and therefore
    also unit ``δt``-spread (Lemma 12).
    """
    if not isinstance(base, RadixBase):
        base = RadixBase(base)
    sequence: List[Node] = []
    for x in range(base.size):
        sequence.append(
            tuple(reflected_digit(base, x, i) for i in range(1, base.dimension + 1))
        )
    return sequence


def binary_reflected_gray_value(x: int) -> int:
    """The ``x``-th binary reflected Gray code value as an integer (``x XOR x>>1``)."""
    if x < 0:
        raise ValueError("index must be non-negative")
    return x ^ (x >> 1)


def gray_to_binary_value(g: int) -> int:
    """Inverse of :func:`binary_reflected_gray_value`."""
    if g < 0:
        raise ValueError("value must be non-negative")
    x = 0
    while g:
        x ^= g
        g >>= 1
    return x


def binary_reflected_gray_code(bits: int) -> List[Node]:
    """The classic binary reflected Gray code on ``bits`` bits, as bit tuples.

    The most significant bit is the first tuple component, matching the
    digit ordering of :func:`reflected_mixed_radix_sequence` with
    ``L = (2, ..., 2)``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    sequence: List[Node] = []
    for x in range(2**bits):
        g = binary_reflected_gray_value(x)
        sequence.append(tuple((g >> (bits - 1 - i)) & 1 for i in range(bits)))
    return sequence
