"""Mixed-radix numbering systems (Definition 7).

Given a radix-base ``L = (l_1, ..., l_d)`` with every ``l_j > 1`` and
``n = Π l_j``, the radix-L representation of ``x ∈ [n]`` is the ``d``-tuple
``(x̂_1, ..., x̂_d)`` with ``x̂_j = ⌊x / w_j⌋ mod l_j``, where the weights are
``w_d = 1`` and ``w_{j-1} = l_j · w_j`` (so ``w_0 = n``).  The set of all
radix-L numbers is ``Ω_L`` and ``u_L : [n] -> Ω_L`` is the resulting
bijection.

The most significant digit is the *first* component, matching the paper's
convention (e.g. for ``L = (4, 2, 3)``: ``w_1 = 6``, ``w_2 = 3``, ``w_3 = 1``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import InvalidRadixError
from ..types import Node

__all__ = ["RadixBase"]


class RadixBase:
    """A mixed-radix base ``L = (l_1, ..., l_d)``.

    Parameters
    ----------
    radices:
        The radices ``l_1, ..., l_d``; each must be an integer greater than 1.

    Examples
    --------
    >>> L = RadixBase((4, 2, 3))
    >>> L.size
    24
    >>> L.weights
    (24, 6, 3, 1)
    >>> L.to_digits(11)
    (1, 1, 2)
    >>> L.from_digits((1, 1, 2))
    11
    """

    __slots__ = ("_radices", "_weights", "_size")

    def __init__(self, radices: Iterable[int]):
        rs = tuple(int(r) for r in radices)
        if len(rs) == 0:
            raise InvalidRadixError("a radix-base must have at least one radix")
        for r in rs:
            if r < 2:
                raise InvalidRadixError(
                    f"radix {r} is invalid: every radix must be an integer > 1"
                )
        self._radices = rs
        # Weights w_0 .. w_d with w_d = 1 and w_{j-1} = l_j * w_j; w_0 = n.
        weights: List[int] = [1]
        for r in reversed(rs):
            weights.append(weights[-1] * r)
        weights.reverse()
        self._weights = tuple(weights)
        self._size = weights[0]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def radices(self) -> Tuple[int, ...]:
        """The radices ``(l_1, ..., l_d)``."""
        return self._radices

    @property
    def dimension(self) -> int:
        """Number of radices ``d``."""
        return len(self._radices)

    @property
    def size(self) -> int:
        """Number of representable values ``n = Π l_j``."""
        return self._size

    @property
    def weights(self) -> Tuple[int, ...]:
        """The weights ``(w_0, w_1, ..., w_d)`` with ``w_0 = n`` and ``w_d = 1``."""
        return self._weights

    def weight(self, j: int) -> int:
        """The weight ``w_j`` for ``j ∈ [d + 1]`` (0-based ``j`` as in the paper)."""
        return self._weights[j]

    def __len__(self) -> int:
        return len(self._radices)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RadixBase) and self._radices == other._radices

    def __hash__(self) -> int:
        return hash(("RadixBase", self._radices))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RadixBase({self._radices!r})"

    # ------------------------------------------------------------------ #
    # Conversions (the bijections u_L and u_L^{-1})
    # ------------------------------------------------------------------ #
    def to_digits(self, x: int) -> Node:
        """The radix-L representation ``u_L(x)`` of ``x ∈ [n]``.

        ``x̂_j = ⌊x / w_j⌋ mod l_j`` for ``j = 1..d``.
        """
        self._check_value(x)
        digits = []
        for j, radix in enumerate(self._radices, start=1):
            digits.append((x // self._weights[j]) % radix)
        return tuple(digits)

    def from_digits(self, digits: Sequence[int]) -> int:
        """The inverse bijection ``u_L^{-1}((x̂_1, ..., x̂_d)) = Σ x̂_k w_k``."""
        self._check_digits(digits)
        return sum(d * self._weights[j] for j, d in enumerate(digits, start=1))

    def __iter__(self) -> Iterator[Node]:
        """Iterate over ``Ω_L`` in natural (lexicographic) order."""
        return (self.to_digits(x) for x in range(self._size))

    def all_digits(self) -> List[Node]:
        """All radix-L numbers in natural order (the sequence ``P`` of Section 3.1)."""
        return list(iter(self))

    def contains_digits(self, digits: Sequence[int]) -> bool:
        """True when the tuple is a valid radix-L number."""
        if len(digits) != self.dimension:
            return False
        return all(0 <= d < r for d, r in zip(digits, self._radices))

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def _check_value(self, x: int) -> None:
        if not (0 <= x < self._size):
            raise InvalidRadixError(
                f"value {x} is out of range for radix-base {self._radices} (size {self._size})"
            )

    def _check_digits(self, digits: Sequence[int]) -> None:
        if len(digits) != self.dimension:
            raise InvalidRadixError(
                f"expected {self.dimension} digits, got {len(digits)}: {tuple(digits)!r}"
            )
        for position, (digit, radix) in enumerate(zip(digits, self._radices), start=1):
            if not (0 <= digit < radix):
                raise InvalidRadixError(
                    f"digit {digit} at position {position} is out of range [0, {radix})"
                )

    # ------------------------------------------------------------------ #
    # Derived bases
    # ------------------------------------------------------------------ #
    def take(self, start: int, stop: int) -> "RadixBase":
        """Sub-base formed by radices ``start..stop-1`` (0-based slice)."""
        return RadixBase(self._radices[start:stop])

    def concat(self, other: "RadixBase") -> "RadixBase":
        """The base whose radix list is the concatenation of the two bases."""
        return RadixBase(self._radices + other._radices)
