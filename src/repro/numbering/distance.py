"""The δm and δt distance measures on radix-L numbers (Lemmas 5 and 6).

Viewing the radix-L numbers as the nodes of an ``(l_1, ..., l_d)``-mesh or
torus gives two distance measures between tuples ``A`` and ``B``:

* mesh distance (Lemma 6): ``δm(A, B) = Σ_k |a_k - b_k|``;
* torus distance (Lemma 5):
  ``δt(A, B) = Σ_k min(|a_k - b_k|, l_k - |a_k - b_k|)``.

``δm(A, B) >= δt(A, B)`` always holds, a fact the paper uses repeatedly
(e.g. Lemma 12 follows from Lemma 11).
"""

from __future__ import annotations

from typing import Sequence

from .arrays import indices_to_digits, require_numpy

__all__ = [
    "mesh_distance",
    "torus_distance",
    "chebyshev_mesh_distance",
    "mesh_distance_array",
    "torus_distance_array",
    "graph_distance_indices",
]


def mesh_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """δm — the Manhattan distance between two nodes of a mesh (Lemma 6)."""
    if len(a) != len(b):
        raise ValueError("nodes must have the same dimension")
    return sum(abs(x - y) for x, y in zip(a, b))


def torus_distance(a: Sequence[int], b: Sequence[int], shape: Sequence[int]) -> int:
    """δt — the distance between two nodes of an ``(l_1, ..., l_d)``-torus (Lemma 5).

    Parameters
    ----------
    a, b:
        Node coordinate tuples.
    shape:
        The torus shape ``(l_1, ..., l_d)`` providing the wrap-around lengths.
    """
    if not (len(a) == len(b) == len(shape)):
        raise ValueError("nodes and shape must have the same dimension")
    total = 0
    for x, y, length in zip(a, b, shape):
        diff = abs(x - y)
        total += min(diff, length - diff)
    return total


def mesh_distance_array(a_digits, b_digits):
    """Vectorized δm over ``(n, d)`` digit arrays -> ``(n,)`` distances (Lemma 6)."""
    np = require_numpy()
    a_digits = np.asarray(a_digits, dtype=np.int64)
    b_digits = np.asarray(b_digits, dtype=np.int64)
    if a_digits.shape != b_digits.shape:
        raise ValueError("digit arrays must have the same shape")
    return np.abs(a_digits - b_digits).sum(axis=-1)


def torus_distance_array(a_digits, b_digits, shape: Sequence[int]):
    """Vectorized δt over ``(n, d)`` digit arrays -> ``(n,)`` distances (Lemma 5)."""
    np = require_numpy()
    a_digits = np.asarray(a_digits, dtype=np.int64)
    b_digits = np.asarray(b_digits, dtype=np.int64)
    if a_digits.shape != b_digits.shape:
        raise ValueError("digit arrays must have the same shape")
    lengths = np.asarray(tuple(shape), dtype=np.int64)
    if a_digits.shape[-1] != lengths.size:
        raise ValueError("digit arrays and shape must have the same dimension")
    diff = np.abs(a_digits - b_digits)
    return np.minimum(diff, lengths - diff).sum(axis=-1)


def graph_distance_indices(a_indices, b_indices, shape: Sequence[int], *, torus: bool):
    """Distances between flat-index batches of nodes of an ``shape``-mesh/torus.

    The array-backed analogue of :meth:`repro.graphs.base.CartesianGraph.
    distance`: both arguments are ``(n,)`` ``int64`` arrays of natural-order
    node ranks; the result is the ``(n,)`` array of δt (``torus=True``) or δm
    distances.
    """
    a_digits = indices_to_digits(a_indices, shape)
    b_digits = indices_to_digits(b_indices, shape)
    if torus:
        return torus_distance_array(a_digits, b_digits, shape)
    return mesh_distance_array(a_digits, b_digits)


def chebyshev_mesh_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Maximum per-dimension coordinate difference.

    Not used by the paper's proofs but handy for diagnostics: a dilation-1
    mesh embedding keeps both the Manhattan and the Chebyshev distance of
    adjacent guest nodes at 1.
    """
    if len(a) != len(b):
        raise ValueError("nodes must have the same dimension")
    return max(abs(x - y) for x, y in zip(a, b))
