"""The δm and δt distance measures on radix-L numbers (Lemmas 5 and 6).

Viewing the radix-L numbers as the nodes of an ``(l_1, ..., l_d)``-mesh or
torus gives two distance measures between tuples ``A`` and ``B``:

* mesh distance (Lemma 6): ``δm(A, B) = Σ_k |a_k - b_k|``;
* torus distance (Lemma 5):
  ``δt(A, B) = Σ_k min(|a_k - b_k|, l_k - |a_k - b_k|)``.

``δm(A, B) >= δt(A, B)`` always holds, a fact the paper uses repeatedly
(e.g. Lemma 12 follows from Lemma 11).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["mesh_distance", "torus_distance", "chebyshev_mesh_distance"]


def mesh_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """δm — the Manhattan distance between two nodes of a mesh (Lemma 6)."""
    if len(a) != len(b):
        raise ValueError("nodes must have the same dimension")
    return sum(abs(x - y) for x, y in zip(a, b))


def torus_distance(a: Sequence[int], b: Sequence[int], shape: Sequence[int]) -> int:
    """δt — the distance between two nodes of an ``(l_1, ..., l_d)``-torus (Lemma 5).

    Parameters
    ----------
    a, b:
        Node coordinate tuples.
    shape:
        The torus shape ``(l_1, ..., l_d)`` providing the wrap-around lengths.
    """
    if not (len(a) == len(b) == len(shape)):
        raise ValueError("nodes and shape must have the same dimension")
    total = 0
    for x, y, length in zip(a, b, shape):
        diff = abs(x - y)
        total += min(diff, length - diff)
    return total


def chebyshev_mesh_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Maximum per-dimension coordinate difference.

    Not used by the paper's proofs but handy for diagnostics: a dilation-1
    mesh embedding keeps both the Manhattan and the Chebyshev distance of
    adjacent guest nodes at 1.
    """
    if len(a) != len(b):
        raise ValueError("nodes must have the same dimension")
    return max(abs(x - y) for x, y in zip(a, b))
