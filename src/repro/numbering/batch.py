"""Batch construction kernels — the paper's sequences over whole node sets.

The scalar functions of :mod:`repro.core.basic` (``t_n``, ``f_L``, ``g_L``,
``r_L``, ``h_L``) and the mixed-radix collapse ``U_V`` evaluate one node at a
time; building a survey-scale embedding that way costs one Python call per
guest node.  Every one of those definitions is plain arithmetic on digit
vectors (Definitions 7–9, 14–15, 20, 22, 38 of the paper), so this module
provides them over flat NumPy ``int64`` index arrays — the construction-side
counterpart of the cost-side kernels in :mod:`repro.numbering.arrays`:

* :func:`t_indices` — ``t_n`` over an index array (Definition 14);
* :func:`t_columns` — ``T_L``: ``t_{l_j}`` applied to every column of an
  ``(n, d)`` digit matrix (Definition 35);
* :func:`f_digits` / :func:`g_digits` / :func:`r_digits` / :func:`h_digits` —
  the embedding sequences as ``(n, d)`` digit matrices;
* :func:`f_flat` / :func:`g_flat` / :func:`h_flat` — the same sequences as
  flat natural-order ranks (``u_L^{-1}`` of the digit rows);
* :func:`group_collapse` — ``U_V``: collapse consecutive column groups of a
  digit matrix by mixed-radix evaluation (Definition 38).

Each kernel is cross-checked element-for-element against its scalar
counterpart by the differential test harness
(``tests/test_construction_differential.py``); the scalar loops remain the
reference implementation.  All kernels assume their index arguments are in
range (the callers iterate ``0..n-1``); only shapes are validated.
"""

from __future__ import annotations

from typing import Sequence

from ..utils.listops import product
from .arrays import digit_weights, digits_to_indices, require_numpy

__all__ = [
    "t_indices",
    "t_columns",
    "f_digits",
    "f_flat",
    "g_digits",
    "g_flat",
    "r_digits",
    "h_digits",
    "h_flat",
    "group_collapse",
]


def t_indices(n: int, indices):
    """Vectorized ``t_n`` (Definition 14) over an array of values in ``[n]``.

    ``t_n(x) = 2x`` for ``x`` in the first (rounded-up) half and
    ``2(n - x) - 1`` afterwards; the threshold ``⌊(n-1)/2⌋`` covers both the
    even and the odd case of the scalar definition.
    """
    np = require_numpy()
    if n < 1:
        raise ValueError("n must be positive")
    x = np.asarray(indices, dtype=np.int64)
    return np.where(x <= (n - 1) // 2, 2 * x, 2 * (n - x) - 1)


def t_columns(shape: Sequence[int], digits):
    """``T_L`` (Definition 35): apply ``t_{l_j}`` to column ``j`` of a digit matrix."""
    np = require_numpy()
    shape = tuple(shape)
    digits = np.asarray(digits, dtype=np.int64)
    if digits.ndim != 2 or digits.shape[1] != len(shape):
        raise ValueError(
            f"digit matrix of shape {digits.shape} does not match radix-base {shape}"
        )
    out = np.empty_like(digits)
    for j, length in enumerate(shape):
        out[:, j] = t_indices(length, digits[:, j])
    return out


def f_digits(shape: Sequence[int], indices):
    """Vectorized ``f_L`` (Definition 9) as an ``(n, d)`` digit matrix.

    Per digit ``j`` (1-based): with ``x̂_j`` the natural radix-L digit, the
    reflected digit is ``x̂_j`` when the segment number ``⌊x / w_{j-1}⌋`` is
    even and ``l_j - x̂_j - 1`` when it is odd — the whole-column form of
    :func:`repro.numbering.graycode.reflected_digit`.
    """
    np = require_numpy()
    shape = tuple(shape)
    x = np.asarray(indices, dtype=np.int64)
    radices = np.asarray(shape, dtype=np.int64)
    weights = digit_weights(shape)  # w_1 .. w_d
    previous = np.concatenate(([product(shape)], weights[:-1]))  # w_0 .. w_{d-1}
    natural = (x[..., None] // weights) % radices
    segment = x[..., None] // previous
    return np.where(segment % 2 == 0, natural, radices - 1 - natural)


def f_flat(shape: Sequence[int], indices):
    """``f_L`` as flat natural-order ranks: ``u_L^{-1}(f_L(x))`` per element."""
    return digits_to_indices(f_digits(shape, indices), shape)


def g_digits(shape: Sequence[int], indices):
    """Vectorized ``g_L = f_L ∘ t_n`` (Definition 15) as a digit matrix."""
    return f_digits(shape, t_indices(product(tuple(shape)), indices))


def g_flat(shape: Sequence[int], indices):
    """``g_L`` as flat natural-order ranks."""
    return digits_to_indices(g_digits(shape, indices), shape)


def r_digits(shape: Sequence[int], indices):
    """Vectorized ``r_L`` (Definition 20) for a 2-dimensional base ``(l_1, l_2)``.

    First ``l_1`` elements walk down the first column; the rest snake through
    the remaining ``(l_1, l_2 - 1)`` sub-mesh with ``f`` (single remaining
    column filled bottom-to-top when ``l_2 = 2``).
    """
    np = require_numpy()
    shape = tuple(shape)
    if len(shape) != 2:
        raise ValueError("r_L is only defined for 2-dimensional radix-bases")
    l1, l2 = shape
    x = np.asarray(indices, dtype=np.int64)
    head = x < l1
    if l2 > 2:
        # Clip the sub-mesh argument for head rows; their values are discarded.
        inner = f_digits((l1, l2 - 1), np.maximum(x - l1, 0))
        first = np.where(head, l1 - 1 - x, inner[..., 0])
        second = np.where(head, 0, inner[..., 1] + 1)
    else:
        first = np.where(head, l1 - 1 - x, x - l1)
        second = np.where(head, 0, 1)
    return np.stack([first, second], axis=-1)


def h_digits(shape: Sequence[int], indices):
    """Vectorized ``h_L`` (Definition 22) as an ``(n, d)`` digit matrix.

    ``d = 1`` is the identity and ``d = 2`` is ``r_L``; for ``d ≥ 3`` the
    forward pass fills ``l_1 l_2 - 1`` nodes of each ``(l_1, l_2)``-plane
    (alternating direction between planes ordered by ``f`` over the tail
    base) and the backward pass fills the remaining node of each plane.
    """
    np = require_numpy()
    shape = tuple(shape)
    x = np.asarray(indices, dtype=np.int64)
    d = len(shape)
    if d == 1:
        return x[..., None].copy()
    if d == 2:
        return r_digits(shape, x)
    l1, l2 = shape[0], shape[1]
    tail = shape[2:]
    m = product(tail)
    n = m * l1 * l2
    plane_fill = l1 * l2 - 1
    a = x // plane_fill
    b = x % plane_fill
    forward = x < m * plane_fill
    plane_arg = np.where(
        forward, np.where(a % 2 == 0, b, l1 * l2 - b - 2), plane_fill
    )
    tail_arg = np.where(forward, a, n - x - 1)
    return np.concatenate(
        [r_digits((l1, l2), plane_arg), f_digits(tail, tail_arg)], axis=-1
    )


def h_flat(shape: Sequence[int], indices):
    """``h_L`` as flat natural-order ranks."""
    return digits_to_indices(h_digits(shape, indices), shape)


def group_collapse(digits, groups: Sequence[Sequence[int]]):
    """Vectorized ``U_V`` (Definition 38): collapse column groups of a digit matrix.

    ``groups`` partitions the columns left to right; output column ``k`` is
    ``u_{V_k}^{-1}`` of group ``k``'s columns, i.e. the mixed-radix value of
    that group's digit block.  The result is an ``(n, len(groups))`` matrix of
    digits for the reduced base ``(Π V_1, ..., Π V_c)``.
    """
    np = require_numpy()
    digits = np.asarray(digits, dtype=np.int64)
    groups = tuple(tuple(group) for group in groups)
    expected = sum(len(group) for group in groups)
    if digits.ndim != 2 or digits.shape[1] != expected:
        raise ValueError(
            f"digit matrix has {digits.shape[-1] if digits.ndim else 0} columns "
            f"but the groups cover {expected}"
        )
    columns = []
    position = 0
    for group in groups:
        block = digits[:, position : position + len(group)]
        columns.append(block @ digit_weights(group))
        position += len(group)
    return np.stack(columns, axis=1)
