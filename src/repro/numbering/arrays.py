"""Vectorized mixed-radix numbering — the array backbone of the hot path.

The scalar bijections ``u_L`` / ``u_L^{-1}`` of :class:`~repro.numbering.radix.
RadixBase` convert one number at a time; surveying thousands of embeddings
needs the same conversions over *batches* of nodes at hardware speed.  This
module provides them on flat NumPy ``int64`` arrays:

* :func:`indices_to_digits` — ``u_L`` applied to an ``(n,)`` array of flat
  indices, producing an ``(n, d)`` array of radix-L digit rows;
* :func:`digits_to_indices` — the inverse ``u_L^{-1}`` on an ``(n, d)`` array;
* :func:`digit_weights` — the per-digit weights ``(w_1, ..., w_d)``.

NumPy is an optional dependency of the package core (the pure-Python path
remains fully functional without it); every entry point is gated through
:func:`require_numpy` so that environments without NumPy get a clear error
only when the vectorized path is actually requested.
"""

from __future__ import annotations

from typing import Sequence

try:  # pragma: no cover - exercised implicitly by every array test
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "digit_weights",
    "indices_to_digits",
    "digits_to_indices",
]

HAVE_NUMPY = _np is not None


def require_numpy():
    """Return the :mod:`numpy` module or raise a helpful ImportError."""
    if _np is None:  # pragma: no cover - the CI image always has numpy
        raise ImportError(
            "the vectorized embedding path requires numpy; install it or use "
            "the pure-Python methods (method='loop')"
        )
    return _np


def digit_weights(shape: Sequence[int]):
    """The per-digit weights ``(w_1, ..., w_d)`` of the radix-base ``shape``.

    ``w_d = 1`` and ``w_{j-1} = l_j * w_j``, matching
    :attr:`repro.numbering.radix.RadixBase.weights` without its leading
    ``w_0 = n`` entry.
    """
    np = require_numpy()
    radices = np.asarray(tuple(shape), dtype=np.int64)
    if radices.ndim != 1 or radices.size == 0:
        raise ValueError("shape must be a non-empty 1-D sequence of radices")
    weights = np.ones(radices.size, dtype=np.int64)
    if radices.size > 1:
        weights[:-1] = np.cumprod(radices[::-1][:-1])[::-1]
    return weights


def indices_to_digits(indices, shape: Sequence[int]):
    """Vectorized ``u_L``: flat indices ``(n,)`` -> digit rows ``(n, d)``.

    ``x̂_j = ⌊x / w_j⌋ mod l_j`` applied column-wise; the most significant
    digit is the first column, matching the paper's convention.
    """
    np = require_numpy()
    indices = np.asarray(indices, dtype=np.int64)
    radices = np.asarray(tuple(shape), dtype=np.int64)
    weights = digit_weights(shape)
    return (indices[..., None] // weights) % radices


def digits_to_indices(digits, shape: Sequence[int]):
    """Vectorized ``u_L^{-1}``: digit rows ``(n, d)`` -> flat indices ``(n,)``."""
    np = require_numpy()
    digits = np.asarray(digits, dtype=np.int64)
    weights = digit_weights(shape)
    if digits.shape[-1] != weights.size:
        raise ValueError(
            f"digit rows have {digits.shape[-1]} columns but the base has {weights.size} radices"
        )
    return digits @ weights
