"""Vectorized mixed-radix numbering — the array backbone of the hot path.

The scalar bijections ``u_L`` / ``u_L^{-1}`` of :class:`~repro.numbering.radix.
RadixBase` convert one number at a time; surveying thousands of embeddings
needs the same conversions over *batches* of nodes at hardware speed.  This
module provides them on flat NumPy ``int64`` arrays:

* :func:`indices_to_digits` — ``u_L`` applied to an ``(n,)`` array of flat
  indices, producing an ``(n, d)`` array of radix-L digit rows;
* :func:`digits_to_indices` — the inverse ``u_L^{-1}`` on an ``(n, d)`` array;
* :func:`digit_weights` — the per-digit weights ``(w_1, ..., w_d)``.

NumPy is an optional dependency of the package core (the pure-Python path
remains fully functional without it); every entry point is gated through
:func:`require_numpy` so that environments without NumPy get a clear error
only when the vectorized path is actually requested.
"""

from __future__ import annotations

from typing import Sequence

try:  # pragma: no cover - exercised implicitly by every array test
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "compact_index_dtype",
    "digit_weights",
    "indices_to_digits",
    "digits_to_indices",
    "signed_offset_digits",
    "stacked_edge_congestion",
]

HAVE_NUMPY = _np is not None


def require_numpy():
    """Return the :mod:`numpy` module or raise a helpful ImportError.

    Reached only from array-backend code (the execution context of
    :mod:`repro.runtime.context` resolves array-capable requests to the loop
    backend, with one warning, when NumPy is missing) or from the
    array-representation methods of :class:`~repro.core.embedding.Embedding`,
    which have no pure-Python equivalent.
    """
    if _np is None:  # pragma: no cover - the CI image always has numpy
        raise ImportError(
            "the vectorized embedding path requires numpy; install it or "
            "force the pure-Python reference backend with "
            "repro.runtime.use_context(backend='loop')"
        )
    return _np


def compact_index_dtype(max_value: int):
    """The smallest integer dtype that holds node ranks up to ``max_value``.

    Batched survey evaluation stacks many host-index arrays into one
    ``(batch, size)`` matrix; at ``int64`` that matrix is the dominant
    allocation of a shard, and every graph the paper studies fits ``int32``
    comfortably.  The explicit guard (rather than a silent modular cast)
    keeps a hypothetical ``>= 2**31``-node graph correct: it simply stays at
    ``int64``.
    """
    np = require_numpy()
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    if max_value <= int(np.iinfo(np.int32).max):
        return np.int32
    return np.int64


def digit_weights(shape: Sequence[int]):
    """The per-digit weights ``(w_1, ..., w_d)`` of the radix-base ``shape``.

    ``w_d = 1`` and ``w_{j-1} = l_j * w_j``, matching
    :attr:`repro.numbering.radix.RadixBase.weights` without its leading
    ``w_0 = n`` entry.
    """
    np = require_numpy()
    radices = np.asarray(tuple(shape), dtype=np.int64)
    if radices.ndim != 1 or radices.size == 0:
        raise ValueError("shape must be a non-empty 1-D sequence of radices")
    weights = np.ones(radices.size, dtype=np.int64)
    if radices.size > 1:
        weights[:-1] = np.cumprod(radices[::-1][:-1])[::-1]
    return weights


def indices_to_digits(indices, shape: Sequence[int]):
    """Vectorized ``u_L``: flat indices ``(n,)`` -> digit rows ``(n, d)``.

    ``x̂_j = ⌊x / w_j⌋ mod l_j`` applied column-wise; the most significant
    digit is the first column, matching the paper's convention.
    """
    np = require_numpy()
    indices = np.asarray(indices, dtype=np.int64)
    radices = np.asarray(tuple(shape), dtype=np.int64)
    weights = digit_weights(shape)
    return (indices[..., None] // weights) % radices


def digits_to_indices(digits, shape: Sequence[int]):
    """Vectorized ``u_L^{-1}``: digit rows ``(n, d)`` -> flat indices ``(n,)``."""
    np = require_numpy()
    digits = np.asarray(digits, dtype=np.int64)
    weights = digit_weights(shape)
    if digits.shape[-1] != weights.size:
        raise ValueError(
            f"digit rows have {digits.shape[-1]} columns but the base has {weights.size} radices"
        )
    return digits @ weights


def signed_offset_digits(a_digits, b_digits, shape: Sequence[int], *, torus: bool):
    """Per-dimension signed coordinate offsets of dimension-ordered routing.

    For digit rows ``A`` and ``B`` of the base ``shape``, the entry ``(i, j)``
    is the signed number of unit steps dimension-ordered routing takes in
    dimension ``j`` to move message ``i`` from ``a_j`` to ``b_j``:

    * mesh (``torus=False``): ``b_j - a_j`` (monotone correction);
    * torus: the shorter way around the ring of length ``l_j``, ties broken
      towards increasing coordinates — ``+((b_j - a_j) mod l_j)`` when that
      is at most ``(a_j - b_j) mod l_j``, else the negated backward count.

    This is the batched form of the per-step direction choice of
    :func:`repro.graphs.paths.dimension_order_path` (the chosen direction is
    invariant along a run, so one signed offset per dimension reproduces the
    walk), and ``abs(offsets).sum(axis=-1)`` equals the δt/δm distance of
    Lemmas 5 and 6.
    """
    np = require_numpy()
    a_digits = np.asarray(a_digits, dtype=np.int64)
    b_digits = np.asarray(b_digits, dtype=np.int64)
    if a_digits.shape != b_digits.shape:
        raise ValueError("digit arrays must have the same shape")
    lengths = np.asarray(tuple(shape), dtype=np.int64)
    if a_digits.shape[-1] != lengths.size:
        raise ValueError("digit arrays and shape must have the same dimension")
    if not torus:
        return b_digits - a_digits
    forward = (b_digits - a_digits) % lengths
    backward = (a_digits - b_digits) % lengths
    return np.where(forward <= backward, forward, -backward)


def stacked_edge_congestion(images, edge_u, edge_v, shape: Sequence[int], *, torus: bool):
    """Edge congestion of dimension-ordered routing, over stacked embeddings.

    ``images`` is a ``(batch, n)`` matrix of host-index rows (one embedding
    per row; a single ``(n,)`` row is promoted to a batch of one) and
    ``edge_u`` / ``edge_v`` are the shared guest edge-endpoint rank arrays.
    The result is the ``(batch,)`` ``int64`` array of per-row maxima of the
    per-host-edge load.

    Dimension-ordered routing corrects host dimension ``j`` while dimensions
    ``< j`` already sit at the target coordinates and dimensions ``> j``
    still sit at the source coordinates, so each guest edge loads a
    contiguous (possibly wrapping) run of dimension-``j`` host edges along
    one axis line.  Interval adds over a ``(batch * lines, coords)``
    difference buffer — batch rows are disjoint line blocks — followed by a
    cumulative sum yield every host edge's load in O(batch * (E + n)) per
    dimension, with no per-row Python.  All arithmetic is integral, so one
    stacked pass is exactly the per-embedding computation row for row.
    """
    np = require_numpy()
    images = np.asarray(images, dtype=np.int64)
    if images.ndim == 1:
        images = images[None, :]
    if images.ndim != 2:
        raise ValueError(f"images must be a (batch, n) matrix, got shape {images.shape}")
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    batch = images.shape[0]
    worst = np.zeros(batch, dtype=np.int64)
    if edge_u.size == 0:
        return worst
    # Imported lazily: repro.compiled.dispatch imports this module.
    from ..compiled.dispatch import active_kernels

    kernels = active_kernels()
    if kernels is not None:
        _, _, congestion = kernels.score_rows(
            images, edge_u, edge_v, tuple(shape), torus, with_congestion=True
        )
        return congestion
    lengths = tuple(shape)
    weights = digit_weights(lengths)
    size = int(np.prod(np.asarray(lengths, dtype=np.int64)))
    source = indices_to_digits(images[:, edge_u], lengths)  # (batch, E, d): path source A
    target = indices_to_digits(images[:, edge_v], lengths)  # (batch, E, d): path target B
    for j, length in enumerate(lengths):
        a = source[..., j]
        b = target[..., j]
        # Host position while correcting dimension j: dims < j are already
        # at the target, dims >= j still at the source.
        position = np.concatenate([target[..., :j], source[..., j:]], axis=-1)
        flat = position @ weights
        period = int(weights[j]) * length
        line = (flat // period) * int(weights[j]) + (flat % int(weights[j]))
        lines = size // length
        line = line + np.arange(batch, dtype=np.int64)[:, None] * lines
        if torus and length > 2:
            forward = (b - a) % length
            backward = (a - b) % length
            go_forward = forward <= backward
            start = np.where(go_forward, a, b)
            run = np.where(go_forward, forward, backward)
            end = start + run
            delta = np.zeros((batch * lines, length + 1), dtype=np.int64)
            wraps = end > length
            np.add.at(delta, (line, start), 1)
            np.add.at(delta, (line, np.minimum(end, length)), -1)
            if wraps.any():
                np.add.at(delta, (line[wraps], 0), 1)
                np.add.at(delta, (line[wraps], end[wraps] - length), -1)
            counts = np.cumsum(delta[:, :-1], axis=1)  # edge at coord c: (c, c+1 mod l)
        else:
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            delta = np.zeros((batch * lines, length), dtype=np.int64)
            np.add.at(delta, (line, lo), 1)
            np.add.at(delta, (line, hi), -1)
            counts = np.cumsum(delta[:, :-1], axis=1)
        if counts.size:
            np.maximum(worst, counts.reshape(batch, -1).max(axis=1), out=worst)
    return worst
