"""Sequences of radix-L numbers and their spreads (Definition 8).

A bijection ``f : [n] -> Ω_L`` can be viewed either as an *acyclic* sequence
``f(0), f(1), ..., f(n-1)`` or as a *cyclic* sequence in which ``f(n-1)`` and
``f(0)`` are also successive.  The ``δm``-spread (``δt``-spread) of the
sequence is the maximum ``δm`` (``δt``) distance between successive elements.

The paper's basic embeddings are exactly statements about spreads:

* a line -> mesh embedding with dilation ``k`` is an acyclic sequence with
  ``δm``-spread ``k``;
* a ring -> torus embedding with dilation ``k`` is a cyclic sequence with
  ``δt``-spread ``k``; and so on.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..types import Node
from .distance import mesh_distance, torus_distance

__all__ = [
    "sequence_pairs",
    "cyclic_pairs",
    "sequence_spread",
    "cyclic_spread",
    "pairwise_distances",
    "is_gray_sequence",
    "is_cyclic_gray_sequence",
    "is_bijective_sequence",
]

Metric = Callable[[Sequence[int], Sequence[int]], int]


def _resolve_metric(metric: str, shape: Optional[Sequence[int]]) -> Metric:
    if metric == "mesh":
        return mesh_distance
    if metric == "torus":
        if shape is None:
            raise ValueError("the torus metric requires the shape of the torus")
        return lambda a, b: torus_distance(a, b, shape)
    raise ValueError(f"unknown metric {metric!r}: expected 'mesh' or 'torus'")


def sequence_pairs(sequence: Sequence[Node]) -> Iterator[Tuple[Node, Node]]:
    """Successive pairs of an acyclic sequence."""
    for i in range(len(sequence) - 1):
        yield sequence[i], sequence[i + 1]


def cyclic_pairs(sequence: Sequence[Node]) -> Iterator[Tuple[Node, Node]]:
    """Successive pairs of a cyclic sequence (includes last -> first)."""
    n = len(sequence)
    for i in range(n):
        yield sequence[i], sequence[(i + 1) % n]


def pairwise_distances(
    sequence: Sequence[Node],
    *,
    metric: str = "mesh",
    shape: Optional[Sequence[int]] = None,
    cyclic: bool = False,
) -> List[int]:
    """Distances between successive elements, in order.

    With ``cyclic=True`` the wrap-around pair is included as the last entry,
    matching the layout of Figure 3(b) in the paper.
    """
    dist = _resolve_metric(metric, shape)
    pairs = cyclic_pairs(sequence) if cyclic else sequence_pairs(sequence)
    return [dist(a, b) for a, b in pairs]


def sequence_spread(
    sequence: Sequence[Node],
    *,
    metric: str = "mesh",
    shape: Optional[Sequence[int]] = None,
) -> int:
    """The δm- or δt-spread of an acyclic sequence (Definition 8)."""
    distances = pairwise_distances(sequence, metric=metric, shape=shape, cyclic=False)
    if not distances:
        return 0
    return max(distances)


def cyclic_spread(
    sequence: Sequence[Node],
    *,
    metric: str = "mesh",
    shape: Optional[Sequence[int]] = None,
) -> int:
    """The δm- or δt-spread of a cyclic sequence (Definition 8)."""
    distances = pairwise_distances(sequence, metric=metric, shape=shape, cyclic=True)
    if not distances:
        return 0
    return max(distances)


def is_bijective_sequence(sequence: Sequence[Node], universe_size: int) -> bool:
    """True when the sequence lists ``universe_size`` pairwise-distinct elements."""
    return len(sequence) == universe_size and len(set(sequence)) == universe_size


def is_gray_sequence(
    sequence: Sequence[Node],
    *,
    metric: str = "mesh",
    shape: Optional[Sequence[int]] = None,
) -> bool:
    """True when successive elements are always at distance exactly 1.

    For ``L`` a list of 2's and the mesh metric this is the classical Gray
    code property (the paper's definition at the end of Section 2).
    """
    distances = pairwise_distances(sequence, metric=metric, shape=shape, cyclic=False)
    return all(d == 1 for d in distances)


def is_cyclic_gray_sequence(
    sequence: Sequence[Node],
    *,
    metric: str = "mesh",
    shape: Optional[Sequence[int]] = None,
) -> bool:
    """True when the cyclic sequence has unit spread."""
    distances = pairwise_distances(sequence, metric=metric, shape=shape, cyclic=True)
    return all(d == 1 for d in distances)
