"""Mixed-radix numbering systems (Definition 7 of the paper).

The paper's central analytical device is to identify the nodes of an
``(l_1, ..., l_d)``-torus or mesh with the numbers of the mixed-radix
numbering system whose radices are the dimension lengths.  The submodules
here provide:

``radix``
    The :class:`~repro.numbering.radix.RadixBase` class — radix-L
    representations, weights, and the bijections ``u_L`` / ``u_L^{-1}``.
``distance``
    The two distance measures on radix-L numbers: the mesh distance ``δm``
    (Lemma 6) and the torus distance ``δt`` (Lemma 5).
``sequences``
    Acyclic and cyclic sequences of radix-L numbers, their ``δm``- and
    ``δt``-spreads (Definition 8), and Gray-code predicates.
``graycode``
    The natural sequence ``P``, the reflected sequence ``P'`` (which is the
    paper's ``f_L``), and the classic binary reflected Gray code.
``arrays``
    Vectorized (NumPy ``int64``) versions of the ``u_L`` / ``u_L^{-1}``
    bijections over flat index batches — the backbone of the array-backed
    embedding hot path.
``batch``
    Batch construction kernels: the embedding sequences ``t``/``f``/``g``/
    ``r``/``h`` and the ``U_V`` collapse evaluated over whole node sets at
    once — the array-first builders in :mod:`repro.core` are written on top
    of these.
"""

from .radix import RadixBase
from .arrays import HAVE_NUMPY, digit_weights, digits_to_indices, indices_to_digits
from .batch import (
    f_digits,
    f_flat,
    g_digits,
    g_flat,
    group_collapse,
    h_digits,
    h_flat,
    r_digits,
    t_columns,
    t_indices,
)
from .distance import (
    graph_distance_indices,
    mesh_distance,
    mesh_distance_array,
    torus_distance,
    torus_distance_array,
)
from .sequences import (
    cyclic_pairs,
    cyclic_spread,
    is_cyclic_gray_sequence,
    is_gray_sequence,
    sequence_pairs,
    sequence_spread,
)
from .graycode import (
    binary_reflected_gray_code,
    natural_sequence,
    reflected_mixed_radix_sequence,
)

__all__ = [
    "RadixBase",
    "HAVE_NUMPY",
    "digit_weights",
    "digits_to_indices",
    "indices_to_digits",
    "t_indices",
    "t_columns",
    "f_digits",
    "f_flat",
    "g_digits",
    "g_flat",
    "r_digits",
    "h_digits",
    "h_flat",
    "group_collapse",
    "mesh_distance",
    "torus_distance",
    "mesh_distance_array",
    "torus_distance_array",
    "graph_distance_indices",
    "sequence_pairs",
    "cyclic_pairs",
    "sequence_spread",
    "cyclic_spread",
    "is_gray_sequence",
    "is_cyclic_gray_sequence",
    "binary_reflected_gray_code",
    "natural_sequence",
    "reflected_mixed_radix_sequence",
]
