"""Integer objective encoding for the embedding search.

The optimizer compares candidates millions of times per run, across two
engines (vectorized and pure-Python loop) that must agree bit-for-bit.
Floats are the classic way to lose that contract — ``np.mean`` and a Python
``sum()/len()`` can differ in the last ulp — so the search never ranks by a
float.  Instead each candidate is scored by three exact integers (max edge
dilation, total edge dilation, edge congestion) and folded into one ordinal:

``scale = guest_edges * host_diameter + 1``
    strictly greater than any possible dilation total, so the total acts as
    a lexicographic tie-break under the primary term;

``dilation``   → ``dil_max * scale + dil_sum``
``congestion`` → ``congestion * scale + dil_sum``
``combined``   → ``(dil_max + congestion) * scale + dil_sum``

Lower is better.  The tie-break matters: among embeddings with the paper's
optimal dilation the search can still shorten the *average* edge, which is
what the reported ``average_dilation`` column reflects.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "OBJECTIVES",
    "needs_congestion",
    "objective_scale",
    "encode_objective",
    "decode_primary",
]

#: Objective modes accepted by the optimizer and the CLI, in display order.
OBJECTIVES = ("dilation", "congestion", "combined")


def needs_congestion(objective: str) -> bool:
    """True when the mode requires routing every candidate's guest edges."""
    return objective in ("congestion", "combined")


def objective_scale(guest_edges: int, host_diameter: int) -> int:
    """The lexicographic radix: ``> max possible dilation total``."""
    return guest_edges * host_diameter + 1


def encode_objective(
    objective: str,
    scale: int,
    dilation_max: int,
    dilation_total: int,
    congestion: Optional[int],
) -> int:
    """Fold the exact cost components into one comparable integer."""
    if objective == "dilation":
        primary = dilation_max
    elif objective == "congestion":
        primary = congestion
    elif objective == "combined":
        primary = dilation_max + congestion
    else:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {', '.join(OBJECTIVES)}"
        )
    return primary * scale + dilation_total


def decode_primary(objective_value: int, scale: int) -> int:
    """The primary cost term back out of an encoded objective."""
    return objective_value // scale
