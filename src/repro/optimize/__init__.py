"""The optimization layer: embedding search via the batched evaluator.

``optimize_embedding`` runs a population-based local search (2-swaps and
segment reversals, greedy or simulated-annealing acceptance) whose every
generation is priced by the stacked metric kernels in one fused pass, seeded
from the paper's constructions and the registry baselines, with found optima
persisted through the runtime construction cache.  See
:mod:`repro.optimize.search` for the engine architecture and
:mod:`repro.optimize.objective` for the exact-integer objective encoding
that keeps the array and loop engines bit-for-bit identical.
"""

from .objective import (
    OBJECTIVES,
    decode_primary,
    encode_objective,
    needs_congestion,
    objective_scale,
)
from .rng import SplitMix64
from .search import (
    SCHEDULES,
    SEED_STRATEGIES,
    SUITE_OPTIONS,
    OptimizeOptions,
    OptimizeResult,
    optimize_embedding,
    register_optimized_strategy,
)

__all__ = [
    "OBJECTIVES",
    "SCHEDULES",
    "SEED_STRATEGIES",
    "SUITE_OPTIONS",
    "OptimizeOptions",
    "OptimizeResult",
    "SplitMix64",
    "decode_primary",
    "encode_objective",
    "needs_congestion",
    "objective_scale",
    "optimize_embedding",
    "register_optimized_strategy",
]
