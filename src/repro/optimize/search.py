"""Population-based local search over embeddings, scored by the batch kernels.

The survey engine (PR 5) can measure a *stack* of embeddings in one fused
pass; this module points the same kernels at *search*.  A population of
candidate bijections — seeded from the paper's constructions and the
registry baselines — is mutated by random 2-swaps and segment reversals and
re-scored generation by generation, with either greedy hill-climbing or a
simulated-annealing acceptance schedule.  The array engine stacks the whole
population into one ``(population, size)`` host-index matrix and prices every
candidate generation with a single :func:`stacked_objective_components`
call — zero per-candidate Python in the scoring path.

The differential contract that made PRs 2-7 safe extends here: a pure-Python
loop engine re-runs the identical search (same shared
:class:`~repro.optimize.rng.SplitMix64` stream, same shared acceptance
logic, per-candidate reference scoring) and must match the array engine
bit-for-bit under a fixed seed.  All ranking happens on exact integers
(:mod:`repro.optimize.objective`), so "identical scores" is an equality of
ints, never a float tolerance.

Found optima persist as :class:`~repro.runtime.cache.OptimizerState` entries
in the ambient :class:`~repro.runtime.cache.ConstructionCache`, so later
``repro optimize`` / ``repro survey --suite optima`` / ``repro serve`` runs
warm-start from the best embedding known so far.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.metrics import stacked_objective_components
from ..compiled.dispatch import active_kernels
from ..core.embedding import Embedding, use_array_path
from ..exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from ..graphs.paths import dimension_order_path
from ..numbering.arrays import require_numpy
from ..runtime.cache import OptimizerState
from ..runtime.context import current
from ..runtime.registry import STRATEGIES, build_strategy, register_strategy
from .objective import (
    OBJECTIVES,
    encode_objective,
    needs_congestion,
    objective_scale,
)
from .rng import SplitMix64

__all__ = [
    "OBJECTIVES",
    "SCHEDULES",
    "SEED_STRATEGIES",
    "SUITE_OPTIONS",
    "OptimizeOptions",
    "OptimizeResult",
    "optimize_embedding",
    "register_optimized_strategy",
]

#: Acceptance schedules: ``anneal`` follows a geometric cooling curve,
#: ``greedy`` accepts only non-worsening moves (objective is monotone).
SCHEDULES = ("anneal", "greedy")

#: Registry strategies the population is seeded from, in seeding order.  A
#: fixed tuple rather than ``strategy_names()`` so third-party registrations
#: (including our own ``"optimized"`` wrapper) never perturb the seed stream.
SEED_STRATEGIES = ("paper", "lexicographic", "bfs", "random")


@dataclass(frozen=True)
class OptimizeOptions:
    """Tuning knobs of one search run.

    ``budget`` counts candidate evaluations (generations x population);
    ``population`` is the *target* size — the strategy and cached seeds are
    always included even when they exceed it, and random restarts fill the
    remainder.  The RNG stream is a pure function of ``seed`` and the seed
    row count, so fixed options on a fixed cache state replay exactly.
    """

    objective: str = "combined"
    budget: int = 2000
    population: int = 16
    seed: int = 0
    schedule: str = "anneal"

    def validated(self) -> "OptimizeOptions":
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {', '.join(OBJECTIVES)}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {', '.join(SCHEDULES)}"
            )
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.population < 1:
            raise ValueError("population must be >= 1")
        return self


#: The fixed configuration of the ``optima`` survey suite — small enough for
#: the golden tables to regenerate in seconds, pinned so the goldens are
#: byte-stable.  (Suite runs consult the ambient cache for warm starts; the
#: golden fixtures are generated cache-less.)
SUITE_OPTIONS = OptimizeOptions(
    objective="combined", budget=960, population=12, seed=7, schedule="anneal"
)


@dataclass(frozen=True)
class OptimizeResult:
    """The outcome of one search run.

    ``baseline_objective`` is the encoded objective of the paper construction
    when the pair supports one (otherwise the best initial seed), so
    ``improved`` answers the paper-probing question directly: did search beat
    the construction it started from?  ``state`` is the portable payload
    persisted through :class:`~repro.runtime.cache.ConstructionCache`.
    """

    embedding: Embedding
    objective_mode: str
    objective: int
    dilation: int
    dilation_total: int
    congestion: Optional[int]
    baseline_objective: int
    improved: bool
    steps: int
    evaluations: int
    provenance: str
    state: OptimizerState


# --------------------------------------------------------------------------- #
# Engines: candidate construction + scoring (everything else is shared)
# --------------------------------------------------------------------------- #
class _ArrayEngine:
    """Vectorized engine: the population is one ``(population, size)`` matrix.

    Scoring is a single fused pass of the stacked metric kernels per
    generation; move application touches two cells (swap) or one slice
    (reversal) per member, which is negligible next to the ``O(population x
    edges)`` scoring work.
    """

    def __init__(self, guest, host, *, with_congestion: bool):
        self.np = require_numpy()
        self.host = host
        self.with_congestion = with_congestion
        self.edge_u, self.edge_v = guest.edge_index_arrays()

    def population(self, rows: Sequence[Sequence[int]]):
        return self.np.asarray([list(row) for row in rows], dtype=self.np.int64)

    def candidates(self, matrix, moves):
        candidate = matrix.copy()
        for member, move in enumerate(moves):
            kind, lo, hi = move
            if kind == 0:  # 2-swap
                candidate[member, [lo, hi]] = candidate[member, [hi, lo]]
            else:  # segment reversal (inclusive)
                candidate[member, lo : hi + 1] = candidate[
                    member, lo : hi + 1
                ][::-1].copy()
        return candidate

    def score(self, matrix):
        dil_max, dil_sum, congestion = stacked_objective_components(
            self.host,
            self.edge_u,
            self.edge_v,
            matrix,
            with_congestion=self.with_congestion,
        )
        return (
            dil_max.tolist(),
            dil_sum.tolist(),
            congestion.tolist() if congestion is not None else None,
        )

    def commit(self, matrix, candidate, accepted: Sequence[bool]) -> None:
        for member, take in enumerate(accepted):
            if take:
                matrix[member] = candidate[member]

    def row(self, matrix, member: int) -> Tuple[int, ...]:
        return tuple(int(image) for image in matrix[member])


class _CompiledEngine(_ArrayEngine):
    """JIT engine: move application and scoring run as compiled kernels.

    Scoring already reaches the JIT tier through
    :func:`~repro.analysis.metrics.stacked_objective_components` (which
    consults :func:`~repro.compiled.dispatch.active_kernels` itself); this
    subclass additionally applies the whole generation's moves in one kernel
    call instead of a per-member Python loop.  Every step is pinned
    bit-for-bit against :class:`_ArrayEngine`, so the search trajectory —
    acceptances, tie-breaks, the final optimum — is identical.
    """

    def candidates(self, matrix, moves):
        kernels = active_kernels()
        if kernels is None:  # pragma: no cover - context changed mid-search
            return super().candidates(matrix, moves)
        return kernels.apply_moves(matrix, moves)


class _LoopEngine:
    """Pure-Python reference engine: lists of ints, per-edge loops.

    Deliberately naive — it re-derives every candidate's costs with the
    historical per-edge distance loop and the dimension-ordered routing walk,
    so a bit-for-bit match against :class:`_ArrayEngine` cross-checks the
    whole vectorized search, not just one kernel.  Runs without NumPy.
    """

    def __init__(self, guest, host, *, with_congestion: bool):
        self.host = host
        self.with_congestion = with_congestion
        self.edges = [
            (guest.node_index(a), guest.node_index(b)) for a, b in guest.edges()
        ]
        self.host_nodes = [host.index_node(rank) for rank in range(host.size)]

    def population(self, rows: Sequence[Sequence[int]]) -> List[List[int]]:
        return [list(row) for row in rows]

    def candidates(self, matrix, moves):
        candidate = [row.copy() for row in matrix]
        for member, move in enumerate(moves):
            kind, lo, hi = move
            row = candidate[member]
            if kind == 0:
                row[lo], row[hi] = row[hi], row[lo]
            else:
                row[lo : hi + 1] = row[lo : hi + 1][::-1]
        return candidate

    def _score_row(self, row: Sequence[int]) -> Tuple[int, int, Optional[int]]:
        host = self.host
        nodes = self.host_nodes
        dil_max = 0
        dil_sum = 0
        for u, v in self.edges:
            distance = host.distance(nodes[row[u]], nodes[row[v]])
            dil_sum += distance
            if distance > dil_max:
                dil_max = distance
        congestion = None
        if self.with_congestion:
            load = {}
            for u, v in self.edges:
                path = dimension_order_path(host, nodes[row[u]], nodes[row[v]])
                for a, b in zip(path, path[1:]):
                    key = (
                        (a, b)
                        if host.node_index(a) < host.node_index(b)
                        else (b, a)
                    )
                    load[key] = load.get(key, 0) + 1
            congestion = max(load.values()) if load else 0
        return dil_max, dil_sum, congestion

    def score(self, matrix):
        scored = [self._score_row(row) for row in matrix]
        dil_max = [entry[0] for entry in scored]
        dil_sum = [entry[1] for entry in scored]
        if not self.with_congestion:
            return dil_max, dil_sum, None
        return dil_max, dil_sum, [entry[2] for entry in scored]

    def commit(self, matrix, candidate, accepted: Sequence[bool]) -> None:
        for member, take in enumerate(accepted):
            if take:
                matrix[member] = candidate[member]

    def row(self, matrix, member: int) -> Tuple[int, ...]:
        return tuple(matrix[member])


# --------------------------------------------------------------------------- #
# Seeding
# --------------------------------------------------------------------------- #
def _row_from_embedding(embedding) -> List[int]:
    """The embedding's natural-order host-rank row (backend-agnostic)."""
    host = embedding.host
    return [
        host.node_index(embedding.map_index(rank))
        for rank in range(embedding.guest.size)
    ]


def _seed_population(guest, host, options: OptimizeOptions, rng: SplitMix64, cache):
    """``(provenance, row)`` seeds: strategies, cached optimum, random fills.

    Strategy seeds come through :func:`build_strategy`, so they are memoized
    in (and warm-started from) the same construction cache as every other
    consumer.  Pairs the paper does not support simply skip the ``"paper"``
    seed.  Random fills are Fisher-Yates shuffles of the shared RNG stream,
    identical across engines.
    """
    seeds: List[Tuple[str, List[int]]] = []
    for name in SEED_STRATEGIES:
        if name not in STRATEGIES:
            continue
        try:
            embedding = build_strategy(name, guest, host)
        except (UnsupportedEmbeddingError, ShapeMismatchError):
            continue
        seeds.append((name, _row_from_embedding(embedding)))
    if cache is not None:
        state = cache.fetch_optimum(options.objective, guest, host)
        if state is not None:
            seeds.append(("cache", [int(image) for image in state.host_indices]))
    identity = list(range(guest.size))
    for restart in range(max(0, options.population - len(seeds))):
        row = identity.copy()
        rng.shuffle(row)
        seeds.append((f"restart-{restart}", row))
    return seeds


# --------------------------------------------------------------------------- #
# The shared search driver
# --------------------------------------------------------------------------- #
def optimize_embedding(
    guest, host, options: Optional[OptimizeOptions] = None, *, cache=None
) -> OptimizeResult:
    """Search for a low-cost bijective embedding of ``guest`` into ``host``.

    The engine is resolved from the ambient execution context exactly like
    every other cost computation — the array backend runs the stacked-kernel
    population search, ``use_context(backend="loop")`` the pure-Python
    reference — and both produce the identical result for identical options
    and cache state.  ``cache`` defaults to the ambient context's
    construction cache; when present, the stored optimum (if any) joins the
    seed population and the search's best is persisted back (keep-best, so
    repeated runs only ever improve the stored state).
    """
    options = (options or OptimizeOptions()).validated()
    if guest.size != host.size:
        raise UnsupportedEmbeddingError(
            "the optimizer searches bijections: guest and host must have the "
            f"same size (got {guest.size} and {host.size})"
        )
    if cache is None:
        cache = current().cache

    rng = SplitMix64(options.seed)
    seeds = _seed_population(guest, host, options, rng, cache)
    lineage = [provenance for provenance, _ in seeds]
    size = guest.size
    guest_edges = sum(1 for _ in guest.edges())
    scale = objective_scale(guest_edges, host.diameter())
    with_congestion = needs_congestion(options.objective)

    resolved = current().resolved_backend()
    if resolved == "compiled":
        engine_cls = _CompiledEngine
    elif use_array_path():
        engine_cls = _ArrayEngine
    else:
        engine_cls = _LoopEngine
    engine = engine_cls(guest, host, with_congestion=with_congestion)
    population = engine.population([row for _, row in seeds])

    def encode(member_scores, member: int) -> int:
        dil_max, dil_sum, congestion = member_scores
        return encode_objective(
            options.objective,
            scale,
            dil_max[member],
            dil_sum[member],
            congestion[member] if congestion is not None else None,
        )

    scores = engine.score(population)
    objectives = [encode(scores, member) for member in range(len(seeds))]

    best_member = min(range(len(objectives)), key=lambda member: objectives[member])
    best_objective = objectives[best_member]
    best_row = engine.row(population, best_member)
    best_provenance = lineage[best_member]
    if "paper" in lineage:
        baseline_objective = objectives[lineage.index("paper")]
    else:
        baseline_objective = best_objective

    members = len(seeds)
    steps = max(1, options.budget // members) if options.budget > 0 else 0
    if size < 2:
        steps = 0  # no valid move exists on a single-node graph
    if steps:
        initial_temperature = float(scale)
        cooling = 0.01 ** (1.0 / max(1, steps - 1))
        temperature = initial_temperature
        for step in range(steps):
            moves = []
            for _ in range(members):
                kind = rng.randrange(2)
                i = rng.randrange(size)
                j = rng.randrange(size - 1)
                if j >= i:
                    j += 1
                moves.append((kind, min(i, j), max(i, j)))
            candidate = engine.candidates(population, moves)
            candidate_scores = engine.score(candidate)
            accepted = []
            for member in range(members):
                challenger = encode(candidate_scores, member)
                delta = challenger - objectives[member]
                if delta <= 0:
                    take = True
                elif options.schedule == "anneal":
                    take = rng.random() < math.exp(-delta / temperature)
                else:
                    take = False
                accepted.append(take)
                if take:
                    objectives[member] = challenger
                    if challenger < best_objective:
                        best_objective = challenger
                        best_row = engine.row(candidate, member)
                        best_provenance = lineage[member]
            engine.commit(population, candidate, accepted)
            temperature *= cooling

    dilation, dilation_total, congestion = _score_single(engine, best_row)
    improved = best_objective < baseline_objective
    state = OptimizerState(
        host_indices=best_row,
        objective=best_objective,
        objective_mode=options.objective,
        dilation=dilation,
        congestion=congestion,
        steps=steps,
        provenance=best_provenance,
    )
    if cache is not None:
        cache.store_optimum(options.objective, guest, host, state)

    notes = {
        "objective": options.objective,
        "objective_value": best_objective,
        "search_steps": steps,
        "seeded_from": best_provenance,
    }
    return OptimizeResult(
        embedding=_embedding_from_row(guest, host, best_row, notes=notes),
        objective_mode=options.objective,
        objective=best_objective,
        dilation=dilation,
        dilation_total=dilation_total,
        congestion=congestion,
        baseline_objective=baseline_objective,
        improved=improved,
        steps=steps,
        evaluations=members * (steps + 1),
        provenance=best_provenance,
        state=state,
    )


def _score_single(engine, row: Sequence[int]) -> Tuple[int, int, Optional[int]]:
    """``(dilation, dilation_total, congestion)`` of one row, via the engine."""
    dil_max, dil_sum, congestion = engine.score(engine.population([list(row)]))
    return (
        dil_max[0],
        dil_sum[0],
        congestion[0] if congestion is not None else None,
    )


def _embedding_from_row(guest, host, row: Sequence[int], *, notes) -> Embedding:
    """A live ``Embedding`` for a host-rank row, honouring the backend."""
    if use_array_path():
        np = require_numpy()
        return Embedding.from_index_array(
            guest,
            host,
            np.asarray(row, dtype=np.int64),
            strategy="optimized",
            predicted_dilation=None,
            notes=dict(notes),
        )
    guest_base = guest.radix_base
    host_base = host.radix_base
    mapping = {
        guest_base.to_digits(rank): host_base.to_digits(int(image))
        for rank, image in enumerate(row)
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy="optimized",
        predicted_dilation=None,
        notes=dict(notes),
    )


# --------------------------------------------------------------------------- #
# Registry integration
# --------------------------------------------------------------------------- #
def register_optimized_strategy(options: Optional[OptimizeOptions] = None) -> None:
    """Register ``"optimized"`` as a runtime strategy (explicit opt-in).

    Not a default registry entry: the default strategy set is pinned (tests,
    golden simulation tables), and a search is far more expensive than any
    construction.  Long-lived consumers — ``repro serve`` — call this once at
    startup so clients can request ``strategy="optimized"`` embeddings that
    warm-start from, and persist to, the service's construction cache.
    Registering twice is a no-op.
    """
    if "optimized" in STRATEGIES:
        return
    fixed = (options or OptimizeOptions()).validated()

    def build(guest, host):
        return optimize_embedding(guest, host, fixed).embedding

    register_strategy("optimized", build)
