"""Deterministic pure-Python PRNG for the embedding optimizer.

The optimizer's differential contract (array engine vs loop reference,
bit-for-bit under a fixed seed) rules out both ``random.Random`` (whose
Mersenne state is awkward to reason about across draws of different kinds)
and NumPy generators (unavailable to the loop engine).  SplitMix64 is a
64-bit mixing PRNG small enough to restate exactly: both engines share one
instance driven from the *shared* search driver, so the stream of move
parameters and acceptance draws is identical by construction.

Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
generators" (OOPSLA 2014) — the same mixer Java's ``SplittableRandom`` and
NumPy's ``SeedSequence`` build on.
"""

from __future__ import annotations

__all__ = ["SplitMix64"]

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


class SplitMix64:
    """SplitMix64: 64-bit state, one add + two xor-shift-multiply mixes."""

    __slots__ = ("_state",)

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """The next raw 64-bit output word."""
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """A draw from ``range(n)``.

        Plain modulo reduction: the ~2**-64 bias is irrelevant for a search
        heuristic, and avoiding rejection sampling keeps the number of raw
        draws per move fixed — one — which makes the stream easy to audit.
        """
        if n <= 0:
            raise ValueError("randrange() bound must be positive")
        return self.next_u64() % n

    def random(self) -> float:
        """A float in ``[0, 1)`` with 53 random bits (the IEEE mantissa)."""
        return (self.next_u64() >> 11) * (2.0**-53)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates using :meth:`randrange` (deterministic)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]
