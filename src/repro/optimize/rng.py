"""Deterministic pure-Python PRNG for the embedding optimizer.

The implementation moved to :mod:`repro.utils.rng` when the chaos plane
and the retry/backoff policy started sharing it; this module remains the
optimizer-facing import site (``from .rng import SplitMix64`` throughout
:mod:`repro.optimize.search`).
"""

from __future__ import annotations

from ..utils.rng import SplitMix64

__all__ = ["SplitMix64"]
