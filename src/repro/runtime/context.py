"""The execution context: backend, cache and parallelism in one ambient object.

Three PRs of growth left every layer of the embed → place → route → simulate
pipeline hand-threading a ``method="auto|array|loop"`` kwarg call-by-call.
This module replaces that with one ambient :class:`ExecutionContext` that the
procedures *consult* (the SYS_ATL/Exo idiom: a scheduling context, not a
parameter every caller must forward):

* :func:`current` — the context in effect (innermost :func:`use_context`
  override, else the process default);
* :func:`use_context` — a scoped override, e.g.
  ``with use_context(backend="loop"): ...``;
* :func:`set_default_context` — install a process-wide default (used by
  survey worker processes to inherit the parent's context).

Backend resolution order (see ``docs/ARCHITECTURE.md``):

1. an explicit per-call override (the deprecated ``method=`` shim);
2. the innermost ``use_context`` scope;
3. the process default context (``backend="auto"``).

A resolved ``"auto"``/``"array"`` request falls back to the loop backend with
**one warning per process** when NumPy is missing — uniformly, instead of the
historical mix of hard ``ImportError`` and silent fallbacks.
"""

from __future__ import annotations

import contextvars
import dataclasses
import functools
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Union

from ..numbering.arrays import HAVE_NUMPY
from .cache import ConstructionCache

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .chaos import ChaosPlan

__all__ = [
    "BACKENDS",
    "Backend",
    "ExecutionContext",
    "current",
    "use_context",
    "set_default_context",
    "resolve_backend",
    "use_array_path",
    "accepts_deprecated_method",
]

#: Allowed values of :attr:`ExecutionContext.backend` (and of the deprecated
#: per-call ``method=`` override): ``"auto"`` prefers the vectorized array
#: kernels when NumPy is available, ``"array"`` requests them explicitly,
#: ``"loop"`` forces the retained pure-Python reference implementations, and
#: ``"compiled"`` requests the JIT kernel tier (:mod:`repro.compiled`) for
#: the irregular hot loops, with the array kernels everywhere else.
Backend = str

BACKENDS = ("auto", "array", "loop", "compiled")

#: Patchable alias so tests can simulate a NumPy-less environment without
#: uninstalling NumPy.
_HAVE_NUMPY = HAVE_NUMPY

_warned_numpy_fallback = False

_warned_compiled_fallback = False


def _validate_backend(backend: Backend) -> Backend:
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


@dataclass(frozen=True)
class ExecutionContext:
    """One execution context: backend selection, memo cache, parallelism.

    Attributes
    ----------
    backend:
        Construction/measure/simulation implementation — ``"auto"`` (array
        kernels when NumPy is available), ``"array"``, ``"loop"`` or
        ``"compiled"`` (JIT kernels for the irregular hot loops, array
        kernels elsewhere).
    cache:
        The content-addressed construction memo
        (:class:`~repro.runtime.cache.ConstructionCache`), or ``None`` to
        disable memoization (the default).
    workers:
        Worker-process count for sharded runs (the survey engine); ``None``
        means ``os.cpu_count()``, ``0``/``1`` means sequential in-process.
    shard_size:
        Scenarios per shard — the unit of work handed to one worker.
    batch:
        Whether the survey engine evaluates shards through the batched path
        (:mod:`repro.survey.batch` — stacked metric kernels, one vectorized
        event loop per shard).  On by default; set ``False`` to force the
        per-scenario path (the cross-checked reference, and the only path
        available when the resolved backend is ``"loop"``).
    chaos:
        The active fault-injection schedule
        (:class:`~repro.runtime.chaos.ChaosPlan`), or ``None`` — the
        default, under which every named injection point is a no-op.  A
        spec string (``"worker_crash:0.02,seed=7"``) is parsed on
        construction.

    The dataclass is frozen and picklable: survey workers receive the
    parent's context verbatim (the cache dict rides along as the warm
    start, the chaos plan so workers inject the same seeded schedule), and
    scoped overrides are :func:`dataclasses.replace` copies.
    """

    backend: Backend = "auto"
    cache: Optional[ConstructionCache] = None
    workers: Optional[int] = None
    shard_size: int = 64
    batch: bool = True
    chaos: Optional[Union["ChaosPlan", str]] = None

    def __post_init__(self) -> None:
        _validate_backend(self.backend)
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if isinstance(self.chaos, str):
            from .chaos import ChaosPlan

            object.__setattr__(self, "chaos", ChaosPlan.parse(self.chaos))

    def resolved_backend(self, override: Optional[Backend] = None) -> Backend:
        """The concrete backend — ``"array"``, ``"loop"`` or ``"compiled"``.

        ``override`` (when not ``None``) takes precedence over the context's
        own :attr:`backend`; it is how the deprecated per-call ``method=``
        shim slots into the resolution order.  Array-capable requests degrade
        to ``"loop"`` with one per-process warning when NumPy is missing.
        A ``"compiled"`` request additionally needs a kernel toolchain
        (Numba, or cffi plus a C compiler); without one it degrades to
        ``"array"`` with one per-process warning — ``"auto"`` never selects
        ``"compiled"`` on its own, the JIT tier is strictly opt-in.
        """
        requested = _validate_backend(
            override if override is not None else self.backend
        )
        if requested == "loop":
            return "loop"
        if not _HAVE_NUMPY:
            global _warned_numpy_fallback
            if not _warned_numpy_fallback:
                _warned_numpy_fallback = True
                warnings.warn(
                    "NumPy is not available; the runtime falls back to the "
                    "pure-Python loop backend for every array-capable request "
                    "(this warning is emitted once per process)",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return "loop"
        if requested == "compiled":
            from ..compiled import toolchain

            if toolchain.compiled_tier_available():
                return "compiled"
            global _warned_compiled_fallback
            if not _warned_compiled_fallback:
                _warned_compiled_fallback = True
                warnings.warn(
                    "no kernel toolchain is available (install numba via "
                    "'pip install repro[compiled]', or provide cffi and a C "
                    "compiler); backend='compiled' falls back to the array "
                    "backend (this warning is emitted once per process)",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return "array"

    def use_array(self, override: Optional[Backend] = None) -> bool:
        """True when the resolved backend runs the vectorized array kernels.

        The ``"compiled"`` backend *is* the array path everywhere outside the
        four ported kernels (the hook sites consult
        :func:`repro.compiled.dispatch.active_kernels` themselves), so it
        answers True here.
        """
        return self.resolved_backend(override) in ("array", "compiled")

    def resolved_workers(self) -> int:
        """The effective worker count (``None`` → ``os.cpu_count()``)."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1


_default_context = ExecutionContext()

_current_context: contextvars.ContextVar[Optional[ExecutionContext]] = (
    contextvars.ContextVar("repro_execution_context", default=None)
)


def current() -> ExecutionContext:
    """The execution context in effect for the calling code."""
    context = _current_context.get()
    return context if context is not None else _default_context


def set_default_context(context: ExecutionContext) -> ExecutionContext:
    """Install a new process-wide default context; returns the previous one.

    Scoped :func:`use_context` overrides still win while active.  Survey
    worker processes call this once at pool start-up so every shard they
    evaluate inherits the parent's backend, cache warm start and policy.
    """
    global _default_context
    previous = _default_context
    _default_context = context
    return previous


@contextmanager
def use_context(
    context: Optional[ExecutionContext] = None, **overrides
) -> Iterator[ExecutionContext]:
    """Scoped context override.

    ``use_context(ctx)`` installs a full context; ``use_context(backend=...,
    cache=..., ...)`` derives one from the currently active context with the
    given fields replaced; both forms combined install ``replace(ctx, ...)``.
    Nesting composes innermost-wins, and the override is restored on exit
    even when the body raises.
    """
    base = context if context is not None else current()
    scoped = dataclasses.replace(base, **overrides) if overrides else base
    token = _current_context.set(scoped)
    try:
        yield scoped
    finally:
        _current_context.reset(token)


def resolve_backend(override: Optional[Backend] = None) -> Backend:
    """:meth:`ExecutionContext.resolved_backend` of the current context."""
    return current().resolved_backend(override)


def use_array_path(method: Optional[Backend] = None) -> bool:
    """Should the vectorized array path run?  Resolved from the context.

    The single gate shared by every cost measure, construction builder and
    simulation path.  ``method`` is the deprecated per-call override kept for
    backward compatibility; new code leaves it ``None`` and scopes the
    backend with :func:`use_context` instead.
    """
    return current().use_array(method)


def accepts_deprecated_method(func):
    """Shim decorator: accept the pre-runtime ``method=`` kwarg.

    The wrapped function no longer takes ``method``; a caller that still
    passes one gets a :class:`DeprecationWarning` and the call runs under a
    scoped ``use_context(backend=method)`` — so the override reaches the
    whole call chain without any hand-threading.
    """

    @functools.wraps(func)
    def wrapper(*args, method: Optional[Backend] = None, **kwargs):
        if method is None:
            return func(*args, **kwargs)
        warnings.warn(
            f"{func.__qualname__}(method=...) is deprecated and will be "
            "removed in repro 2.0; wrap the call in "
            "repro.runtime.use_context(backend=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        with use_context(backend=method):
            return func(*args, **kwargs)

    return wrapper
