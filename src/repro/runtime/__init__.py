"""The runtime layer: one execution context instead of hand-threaded kwargs.

Everything that used to be a per-call ``method="auto|array|loop"`` kwarg —
backend selection, plus the construction memo cache and the survey
parallelism policy — lives in one ambient
:class:`~repro.runtime.context.ExecutionContext`:

>>> from repro.runtime import use_context
>>> with use_context(backend="loop"):
...     embedding = embed(guest, host)          # pure-Python reference path

``context``
    :class:`ExecutionContext`, the :func:`current` accessor, the scoped
    :func:`use_context` override and the deprecated ``method=`` shim.
``cache``
    :class:`ConstructionCache` — the content-addressed embedding memo,
    picklable across survey workers and CLI invocations.
``registry``
    The plugin registries of embedding strategies and traffic patterns
    shared by the survey engine, the experiment harness and the CLI.
``chaos``
    The deterministic fault-injection plane: a seeded
    :class:`ChaosPlan` carried on the context, named :func:`inject`
    points, and the process-local fault tally behind the recovery
    counters in survey reports and ``/stats``.
"""

from .cache import (
    CachedConstruction,
    ConstructionCache,
    OptimizerState,
    embedding_cache_key,
    optimum_cache_key,
)
from .chaos import (
    ChaosPlan,
    FaultRule,
    InjectedFault,
    chaos_counters,
    inject,
    reset_chaos_counters,
)
from .context import (
    BACKENDS,
    Backend,
    ExecutionContext,
    accepts_deprecated_method,
    current,
    resolve_backend,
    set_default_context,
    use_array_path,
    use_context,
)
from .registry import (
    Registry,
    build_strategy,
    build_traffic,
    register_strategy,
    register_traffic,
    strategy_builder,
    strategy_names,
    traffic_builder,
    traffic_names,
)

__all__ = [
    # context
    "BACKENDS",
    "Backend",
    "ExecutionContext",
    "current",
    "use_context",
    "set_default_context",
    "resolve_backend",
    "use_array_path",
    "accepts_deprecated_method",
    # chaos
    "ChaosPlan",
    "FaultRule",
    "InjectedFault",
    "chaos_counters",
    "inject",
    "reset_chaos_counters",
    # cache
    "CachedConstruction",
    "ConstructionCache",
    "OptimizerState",
    "embedding_cache_key",
    "optimum_cache_key",
    # registry
    "Registry",
    "register_strategy",
    "strategy_builder",
    "strategy_names",
    "build_strategy",
    "register_traffic",
    "traffic_builder",
    "traffic_names",
    "build_traffic",
]
