"""Content-addressed construction cache — the memo layer of the runtime.

MaT87's constructions are pure functions of ``(strategy family, guest kind
and shape, host kind and shape)``: two calls with the same key always produce
the node-for-node identical embedding (the differential test harness pins
this).  That makes them ideal for content-addressed memoization across survey
shards and across repeated CLI invocations.

:class:`ConstructionCache` stores, per key, the *portable* payload of an
embedding — the flat host-index sequence plus the strategy name, predicted
dilation and notes — never a live :class:`~repro.core.embedding.Embedding`
object.  The payload is

* **backend-agnostic** — reconstructed under either the array or the loop
  backend, so golden tables are byte-identical with caching on and off;
* **picklable** — the whole cache (a plain dict of tuples/arrays) ships to
  survey worker processes as a warm-start dict and round-trips through
  :meth:`ConstructionCache.save` / :meth:`ConstructionCache.load` so repeated
  ``repro survey`` / ``repro simulate`` invocations skip re-construction
  entirely.

Key format (see ``docs/ARCHITECTURE.md``)::

    ("embedding", <strategy family>, <guest kind>, <guest shape>,
                                     <host kind>,  <host shape>)

The leading namespace tag leaves room for future route/table memo entries in
the same store.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..numbering.arrays import HAVE_NUMPY
from ..utils.atomicio import atomic_write

__all__ = [
    "CachedConstruction",
    "ConstructionCache",
    "OptimizerState",
    "embedding_cache_key",
    "edge_arrays_cache_key",
    "family_cache_key",
    "optimum_cache_key",
]

PathLike = Union[str, Path]

#: Cache keys are flat tuples of strings and int tuples — hashable, picklable
#: and stable across processes and Python versions.
CacheKey = Tuple[object, ...]


def embedding_cache_key(strategy_family: str, guest, host) -> CacheKey:
    """The content address of a construction.

    ``strategy_family`` is :func:`repro.core.dispatch.strategy_for`'s family
    for the paper's dispatcher, or ``"strategy:<name>"`` for registry-built
    competitors (baselines).  The remaining components are the guest and host
    identities — kind plus shape — which fully determine every construction
    the dispatcher can select.
    """
    return (
        "embedding",
        strategy_family,
        guest.kind.value,
        tuple(guest.shape),
        host.kind.value,
        tuple(host.shape),
    )


def edge_arrays_cache_key(graph) -> CacheKey:
    """The address of a graph's memoized derived edge-index arrays.

    ``edge_index_arrays`` is a pure function of the graph identity (kind plus
    shape); memoizing the pair lets batched survey shards — which rebuild
    graph objects from scenario specs — skip the per-signature re-derivation
    entirely.
    """
    return ("edges", graph.kind.value, tuple(graph.shape))


def family_cache_key(guest, host) -> CacheKey:
    """The address of a memoized pair → strategy-family resolution.

    ``strategy_for`` is itself a pure function of the graph identities (it
    runs the expansion/reduction factor searches), so the dispatcher memoizes
    its answer alongside the constructions — a warm cache skips the search as
    well as the build.
    """
    return (
        "family",
        guest.kind.value,
        tuple(guest.shape),
        host.kind.value,
        tuple(host.shape),
    )


def optimum_cache_key(objective: str, guest, host) -> CacheKey:
    """The address of a search-found optimum for a pair, per objective.

    Optima are keyed separately from constructions: the same pair may hold a
    best-known embedding per objective mode (``dilation`` / ``congestion`` /
    ``combined``), and storing them under their own namespace keeps the
    construction memo's byte-identity contract untouched.
    """
    return (
        "optimum",
        objective,
        guest.kind.value,
        tuple(guest.shape),
        host.kind.value,
        tuple(host.shape),
    )


@dataclass(frozen=True)
class OptimizerState:
    """The portable payload of one search-found optimum.

    ``host_indices`` follows the :class:`CachedConstruction` convention (a
    read-only ``int64`` array or a plain int tuple, reconstructable under
    either backend).  ``objective`` is the encoded scalar objective value of
    :mod:`repro.optimize.objective` under ``objective_mode``; ``dilation`` /
    ``congestion`` are the human-readable components, ``steps`` the search
    steps that produced it and ``provenance`` the seed it descended from.
    """

    host_indices: object
    objective: int
    objective_mode: str
    dilation: int
    congestion: Optional[int]
    steps: int
    provenance: str


@dataclass(frozen=True)
class CachedConstruction:
    """The portable payload of one memoized embedding.

    ``host_indices`` is the flat natural-order host rank of every guest rank
    — a read-only NumPy ``int64`` array when NumPy built the entry, a plain
    tuple of ints otherwise.  Either form reconstructs under either backend.
    """

    host_indices: object
    strategy: str
    predicted_dilation: Optional[int]
    notes: Dict[str, object]


def _portable_indices(embedding):
    """The embedding's host-index sequence in a picklable, immutable form."""
    if HAVE_NUMPY:
        array = embedding.host_index_array().copy()
        array.setflags(write=False)
        return array
    guest_base = embedding.guest.radix_base
    host_base = embedding.host.radix_base
    mapping = embedding.mapping
    return tuple(
        host_base.from_digits(mapping[guest_base.to_digits(rank)])
        for rank in range(embedding.guest.size)
    )


def _materialize(payload: CachedConstruction, guest, host):
    """Rebuild a live :class:`Embedding` from a cached payload.

    Resolution honours the ambient backend: the array backend rehydrates the
    flat index array directly (sharing the read-only cached array, no copy);
    the loop backend rebuilds the tuple ``mapping`` dict, so a loop-only
    environment never needs NumPy to consume a cache built elsewhere with
    plain-tuple payloads.
    """
    from ..core.embedding import Embedding, use_array_path

    if use_array_path():
        return Embedding.from_index_array(
            guest,
            host,
            payload.host_indices,
            strategy=payload.strategy,
            predicted_dilation=payload.predicted_dilation,
            notes=dict(payload.notes),
        )
    guest_base = guest.radix_base
    host_base = host.radix_base
    mapping = {
        guest_base.to_digits(rank): host_base.to_digits(int(image))
        for rank, image in enumerate(payload.host_indices)
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy=payload.strategy,
        predicted_dilation=payload.predicted_dilation,
        notes=dict(payload.notes),
    )


class ConstructionCache:
    """A content-addressed, picklable memo store for constructions.

    The backing ``data`` dict is deliberately plain (key tuple →
    :class:`CachedConstruction`): it is the warm-start dict shipped to survey
    workers, the merge unit for worker deltas, and the pickle payload of
    :meth:`save`.  Hit/miss counters are per-instance observability only and
    are not persisted.
    """

    __slots__ = ("data", "hits", "misses")

    def __init__(self, data: Optional[Dict[CacheKey, CachedConstruction]] = None):
        self.data: Dict[CacheKey, CachedConstruction] = dict(data or {})
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self.data

    def clear(self) -> None:
        self.data.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Embedding entries
    # ------------------------------------------------------------------ #
    def fetch_embedding(self, key: CacheKey, guest, host):
        """The memoized embedding for ``key`` rebuilt for ``guest``/``host``,
        or ``None`` on a miss."""
        payload = self.data.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return _materialize(payload, guest, host)

    def store_embedding(self, key: CacheKey, embedding) -> None:
        """Memoize an embedding under its content address."""
        self.data[key] = CachedConstruction(
            host_indices=_portable_indices(embedding),
            strategy=embedding.strategy,
            predicted_dilation=embedding.predicted_dilation,
            notes=dict(embedding.notes),
        )

    @property
    def construction_count(self) -> int:
        """Memoized constructions only — ``len(self)`` also counts the
        family bookkeeping entries, so user-facing reports use this."""
        return sum(1 for key in self.data if key[0] == "embedding")

    # ------------------------------------------------------------------ #
    # Strategy-family entries (memoized ``strategy_for`` answers)
    # ------------------------------------------------------------------ #
    def fetch_family(self, guest, host) -> Optional[Tuple[str, Optional[str]]]:
        """The memoized ``(family, error)`` for a pair, or ``None``.

        ``error`` is the stored :class:`UnsupportedEmbeddingError` message
        for ``"unsupported"`` pairs and ``None`` otherwise.  Family lookups
        are bookkeeping for the embedding entries, so they do not touch the
        hit/miss counters.
        """
        entry = self.data.get(family_cache_key(guest, host))
        if isinstance(entry, str):
            return entry, None
        if isinstance(entry, tuple) and len(entry) == 2:
            return entry
        return None

    def store_family(
        self, guest, host, family: str, error: Optional[str] = None
    ) -> None:
        """Memoize a pair's strategy family.

        ``"unsupported"`` pairs store the dispatcher's error message too, so
        a warm sweep re-raises it directly instead of re-running the failed
        factor searches.
        """
        self.data[family_cache_key(guest, host)] = (
            family if error is None else (family, error)
        )

    # ------------------------------------------------------------------ #
    # Optimizer entries (search-found optima, per objective mode)
    # ------------------------------------------------------------------ #
    def fetch_optimum(self, objective: str, guest, host) -> Optional[OptimizerState]:
        """The stored :class:`OptimizerState` for a pair and objective mode.

        Counts as regular hit/miss traffic: a warm optimum skips (or
        warm-starts) a whole search, which is exactly the reuse the counters
        exist to report.
        """
        state = self.data.get(optimum_cache_key(objective, guest, host))
        if not isinstance(state, OptimizerState):
            self.misses += 1
            return None
        self.hits += 1
        return state

    def store_optimum(self, objective: str, guest, host, state: OptimizerState) -> bool:
        """Keep the best-known optimum for a pair; returns True when stored.

        A worse candidate never overwrites a better stored one, so repeated
        searches (different budgets, different seeds) monotonically improve
        the persisted state.
        """
        key = optimum_cache_key(objective, guest, host)
        existing = self.data.get(key)
        if (
            isinstance(existing, OptimizerState)
            and existing.objective <= state.objective
        ):
            return False
        self.data[key] = state
        return True

    def materialize_optimum(self, state: OptimizerState, guest, host):
        """Rebuild a live ``Embedding`` from a stored optimum (backend-aware)."""
        payload = CachedConstruction(
            host_indices=state.host_indices,
            strategy="optimized",
            predicted_dilation=None,
            notes={
                "objective": state.objective_mode,
                "objective_value": state.objective,
                "search_steps": state.steps,
                "seeded_from": state.provenance,
            },
        )
        return _materialize(payload, guest, host)

    @property
    def optimum_count(self) -> int:
        """Stored search optima (all objective modes)."""
        return sum(1 for key in self.data if key[0] == "optimum")

    # ------------------------------------------------------------------ #
    # Derived-array entries (memoized per-graph tables)
    # ------------------------------------------------------------------ #
    def fetch_edge_arrays(self, graph):
        """The memoized ``edge_index_arrays`` pair of a graph, or ``None``.

        Derived arrays are pure functions of the graph identity, so they are
        content-addressed under ``("edges", kind, shape)``.  Like the family
        entries they are bookkeeping for the embedding memo and do not touch
        the hit/miss counters.
        """
        entry = self.data.get(edge_arrays_cache_key(graph))
        if isinstance(entry, tuple) and len(entry) == 2:
            return entry
        return None

    def store_edge_arrays(self, graph, arrays) -> None:
        """Memoize a graph's ``(u, v)`` edge-endpoint rank arrays."""
        u, v = arrays
        self.data[edge_arrays_cache_key(graph)] = (u, v)

    # ------------------------------------------------------------------ #
    # Sharing and persistence
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[CacheKey, CachedConstruction]:
        """A shallow copy of the backing dict (the warm-start unit)."""
        return dict(self.data)

    def merge(self, entries: Dict[CacheKey, CachedConstruction]) -> int:
        """Fold a warm-start/delta dict into this cache; returns new-entry count."""
        added = 0
        for key, payload in entries.items():
            if key not in self.data:
                added += 1
            self.data[key] = payload
        return added

    def save(self, path: PathLike) -> Path:
        """Persist the backing dict (pickle) for the next invocation.

        The pickle is written atomically (temp file + ``os.replace``), so a
        kill mid-save leaves the previous snapshot intact instead of a torn
        file that cold-starts every later run.  This also makes periodic
        snapshots from the long-running service safe against readers.
        """
        path = Path(path)
        with atomic_write(path, mode="wb") as handle:
            pickle.dump(self.data, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ConstructionCache":
        """A cache warm-started from :meth:`save` output; empty when the file
        is missing or unreadable (a torn write must not kill a run).

        A present-but-corrupt file warns before cold-starting: silently
        losing a warm cache costs every construction of the next sweep, so
        the degradation should be visible.
        """
        path = Path(path)
        if not path.is_file():
            return cls()
        try:
            with path.open("rb") as handle:
                data = pickle.load(handle)
        except Exception as error:  # noqa: BLE001 - any corrupt byte stream cold-starts
            warnings.warn(
                f"construction cache {path} is unreadable "
                f"({type(error).__name__}: {error}); starting cold",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls()
        if not isinstance(data, dict):
            warnings.warn(
                f"construction cache {path} holds {type(data).__name__!s}, "
                "not a cache dict; starting cold",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls()
        return cls(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConstructionCache({len(self.data)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
