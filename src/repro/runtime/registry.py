"""Plugin-style registries for embedding strategies and traffic patterns.

PR 3 left two copies of the strategy-builder table — one in
``survey/runner.py``, one in ``experiments/simulation_tables.py`` — and the
traffic table buried in ``netsim/traffic.py``.  This module is the single
registry all three consumers (survey engine, experiment harness, CLI) import,
and the extension point for new competitors and workloads:

>>> from repro.runtime.registry import register_strategy
>>> @register_strategy("my-heuristic")
... def my_heuristic(guest, host):
...     ...

Builders are pure functions of their inputs — no ``method=`` parameter; they
consult the ambient :mod:`execution context <repro.runtime.context>` for the
backend, and :func:`build_strategy` memoizes their results through the
context's construction cache (keyed ``"strategy:<name>"``; the ``"paper"``
dispatcher memoizes itself under its strategy family inside
:func:`repro.core.dispatch.embed`).

Default entries load lazily on first lookup, so importing this module never
drags in the whole package (and the late imports break the otherwise-circular
``runtime ↔ core/baselines/netsim`` dependency).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .cache import embedding_cache_key
from .context import current

__all__ = [
    "Registry",
    "STRATEGIES",
    "TRAFFIC_PATTERNS",
    "register_strategy",
    "strategy_builder",
    "strategy_names",
    "build_strategy",
    "register_traffic",
    "traffic_builder",
    "traffic_names",
    "build_traffic",
]


class Registry:
    """A named table of plugins with lazy default loading.

    ``loader`` (when given) runs once, on first lookup, to register the
    built-in entries; anything registered earlier (e.g. by importing the
    module that defines the defaults) simply pre-empts the loader's import.
    Registration order is preserved — it is the display order of CLI choices.
    """

    __slots__ = ("_kind", "_entries", "_loader", "_loaded", "_loading")

    def __init__(self, kind: str, loader: Optional[Callable[[], None]] = None):
        self._kind = kind
        self._entries: Dict[str, object] = {}
        self._loader = loader
        self._loaded = loader is None
        self._loading = False

    def _ensure_loaded(self) -> None:
        if self._loaded or self._loading:
            return
        self._loading = True  # the loader's imports may re-enter lookups
        try:
            self._loader()
            self._loaded = True  # only a successful load is final: a raising
            # loader (e.g. a transient ImportError) is retried on next lookup
        finally:
            self._loading = False

    def register(self, name: str, obj: object = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        Duplicate names are an error — except while the default loader runs,
        where an existing entry wins: registering before the first lookup
        deliberately pre-empts the built-in of the same name.
        """

        def add(entry):
            if name in self._entries:
                if self._loading:
                    return self._entries[name]
                raise ValueError(f"duplicate {self._kind} {name!r}")
            self._entries[name] = entry
            return entry

        return add if obj is None else add(obj)

    def get(self, name: str):
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self._kind} {name!r}; "
                f"choose from {', '.join(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        self._ensure_loaded()
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self._kind!r}, {list(self._entries)})"


# --------------------------------------------------------------------------- #
# Embedding strategies
# --------------------------------------------------------------------------- #
def _load_default_strategies() -> None:
    """The paper's dispatcher plus the three baselines (the PR 3 competitor set)."""
    from ..baselines import (
        bfs_order_embedding,
        lexicographic_embedding,
        random_embedding,
    )
    from ..core.dispatch import embed

    STRATEGIES.register("paper", lambda guest, host: embed(guest, host))
    STRATEGIES.register("lexicographic", lexicographic_embedding)
    STRATEGIES.register("bfs", bfs_order_embedding)
    STRATEGIES.register(
        "random", lambda guest, host: random_embedding(guest, host, seed=0)
    )


#: Embedding strategies the simulation scenarios select by name.  One table
#: for the survey engine, the SIM-MAP experiment and the CLI, so all three
#: always compare exactly the same competitors.
STRATEGIES = Registry("embedding strategy", _load_default_strategies)


def register_strategy(name: str, builder: object = None):
    """Add an embedding strategy: ``builder(guest, host) -> Embedding``.

    Builders must be deterministic in ``(guest, host)`` — the construction
    cache memoizes their output by name and graph identities.
    """
    return STRATEGIES.register(name, builder)


def strategy_builder(name: str):
    """The raw builder callable registered under ``name``."""
    return STRATEGIES.get(name)


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return STRATEGIES.names()


def build_strategy(name: str, guest, host):
    """Build the named strategy's embedding, memoized through the context cache.

    The ``"paper"`` dispatcher handles its own memoization (keyed by strategy
    *family* inside :func:`repro.core.dispatch.embed`); every other builder is
    memoized here under ``("embedding", "strategy:<name>", ...)``.
    """
    builder = STRATEGIES.get(name)
    cache = current().cache
    if cache is None or name == "paper":
        return builder(guest, host)
    key = embedding_cache_key(f"strategy:{name}", guest, host)
    cached = cache.fetch_embedding(key, guest, host)
    if cached is not None:
        return cached
    embedding = builder(guest, host)
    cache.store_embedding(key, embedding)
    return embedding


# --------------------------------------------------------------------------- #
# Traffic patterns
# --------------------------------------------------------------------------- #
def _load_default_traffic() -> None:
    """Importing the module registers its patterns as an import side effect."""
    from ..netsim import traffic as _traffic  # noqa: F401


#: Traffic patterns the simulation suite and ``repro simulate`` sweep.
TRAFFIC_PATTERNS = Registry("traffic pattern", _load_default_traffic)


def register_traffic(name: str, builder: object = None):
    """Add a traffic pattern builder: ``(guest, *, message_size, ...) -> TrafficPattern``."""
    return TRAFFIC_PATTERNS.register(name, builder)


def traffic_builder(name: str):
    """The raw pattern builder registered under ``name``."""
    return TRAFFIC_PATTERNS.get(name)


def traffic_names() -> Tuple[str, ...]:
    """Registered traffic pattern names, in registration order."""
    return TRAFFIC_PATTERNS.names()


def build_traffic(name: str, guest, *, message_size: float = 1.0, **kwargs):
    """Build the named traffic pattern for a guest task graph."""
    return TRAFFIC_PATTERNS.get(name)(guest, message_size=message_size, **kwargs)
