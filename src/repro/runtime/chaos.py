"""The chaos plane: deterministic fault injection behind named sites.

The system models faults as *workloads* (degraded hosts, PR 6) but until
this module assumed its own runtime never fails: one worker crash killed a
whole sweep, a wedged request stalled the service forever, and none of it
was testable on demand.  The chaos plane makes runtime faults first-class
and — crucially — **seeded**: a :class:`ChaosPlan` parsed from a spec
string like ``"worker_crash:0.02,slow_io:0.05x200ms,torn_write:0.01,seed=7"``
drives every injection decision through the repo's one PRNG mixer
(:func:`~repro.utils.rng.splitmix64_mix`), so a given seed replays the
identical fault schedule, run after run, process after process.

Injection sites are *named*: code that can fail calls
``inject("survey.shard", key=..., kinds=(...))`` at the point where a real
fault would bite.  With no plan on the ambient
:class:`~repro.runtime.context.ExecutionContext` the call is a two-attribute
no-op (one contextvar read, one ``is None`` test) — the production path
pays nothing.  With a plan active, each spec rule whose kind the site
honours draws one deterministic decision:

* ``slow_io`` — :func:`inject` sleeps the rule's delay in place and keeps
  going (latency faults compose with error faults);
* every other kind — the rule is *returned* and the call site applies it
  (``worker_crash`` → the survey worker kills its own process,
  ``torn_write`` → :func:`~repro.utils.atomicio.atomic_write` aborts before
  the rename, ``request_error`` → the service fails the batch).

Decisions are keyed two ways:

* an explicit ``key`` (the survey runner passes ``(shard, attempt)``) makes
  the decision a pure function of ``(seed, site, kind, key)`` — fully
  replayable regardless of process scheduling, and naturally *different*
  on the retry, which is what lets recovery succeed;
* no key falls back to a per-``(site, kind)`` sequence counter, reset per
  process — deterministic for a single-process run (the service tier).

Every fired fault is counted in a process-local tally
(:func:`chaos_counters`), which the survey report and the service
``/stats`` document surface as recovery observability.

Sites wired in this repo::

    survey.shard     worker_crash, slow_io   (repro.survey.runner)
    store.write      torn_write, slow_io     (repro.utils.atomicio)
    service.handle   request_error, slow_io  (repro.service.server)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..utils.rng import splitmix64_mix, stable_text_hash
from .context import current

__all__ = [
    "FAULT_KINDS",
    "ChaosPlan",
    "FaultRule",
    "InjectedFault",
    "chaos_counters",
    "inject",
    "merge_chaos_counters",
    "raise_fault",
    "reset_chaos_counters",
]

#: The fault kinds the spec grammar accepts.
FAULT_KINDS = ("worker_crash", "slow_io", "torn_write", "request_error")


class InjectedFault(RuntimeError):
    """An error fault fired by the chaos plane.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults model infrastructure failure (a crashed worker, a torn write, a
    flaky request), so they must flow through the same generic recovery
    paths a real ``OSError`` would, not through library-error handling.
    """

    def __init__(self, kind: str, site: str):
        super().__init__(f"chaos: injected {kind} at {site}")
        self.kind = kind
        self.site = site

    def __reduce__(self):
        # The two-argument __init__ breaks default exception pickling
        # (args holds only the message); survey workers ship these across
        # the process pool, so spell the reconstruction out.
        return (InjectedFault, (self.kind, self.site))


@dataclass(frozen=True)
class FaultRule:
    """One fault kind with its firing probability (and delay for latency).

    Token forms: ``worker_crash:0.02`` (probability only) and
    ``slow_io:0.05x200ms`` (probability x injected delay).
    """

    kind: str
    probability: float
    delay: float = 0.0  # seconds; only meaningful for slow_io

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")

    @property
    def token(self) -> str:
        if self.delay:
            return f"{self.kind}:{self.probability:g}x{self.delay * 1e3:g}ms"
        return f"{self.kind}:{self.probability:g}"


def _parse_rule(entry: str) -> FaultRule:
    kind, _, parameters = entry.partition(":")
    if not parameters:
        raise ValueError(
            f"malformed chaos entry {entry!r}: expected kind:probability"
            "[xDELAYms], e.g. worker_crash:0.02 or slow_io:0.05x200ms"
        )
    probability_text, _, delay_text = parameters.partition("x")
    try:
        probability = float(probability_text)
    except ValueError as error:
        raise ValueError(
            f"malformed chaos probability in {entry!r}: {probability_text!r}"
        ) from error
    delay = 0.0
    if delay_text:
        scale = 1.0
        if delay_text.endswith("ms"):
            scale, delay_text = 1e-3, delay_text[:-2]
        elif delay_text.endswith("s"):
            delay_text = delay_text[:-1]
        try:
            delay = float(delay_text) * scale
        except ValueError as error:
            raise ValueError(
                f"malformed chaos delay in {entry!r}: expected e.g. 200ms or 0.2s"
            ) from error
    return FaultRule(kind=kind.strip(), probability=probability, delay=delay)


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, replayable fault schedule (frozen, picklable).

    The plan rides on :class:`~repro.runtime.context.ExecutionContext`, so
    survey workers inherit it with the rest of the context and inject the
    *same* schedule the parent would — which is what makes a chaos soak
    assertable in CI rather than merely stochastic.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse a spec string: comma-separated fault tokens plus ``seed=N``.

        >>> ChaosPlan.parse("worker_crash:0.02,slow_io:0.05x200ms,seed=7")
        ... # doctest: +ELLIPSIS
        ChaosPlan(rules=(...), seed=7)
        """
        rules = []
        seed = 0
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    seed = int(entry[len("seed=") :])
                except ValueError as error:
                    raise ValueError(
                        f"malformed chaos seed in {entry!r}: expected seed=<int>"
                    ) from error
                continue
            rules.append(_parse_rule(entry))
        if not rules:
            raise ValueError(
                f"chaos spec {spec!r} names no fault rules; expected e.g. "
                "'worker_crash:0.02,seed=7'"
            )
        return cls(rules=tuple(rules), seed=seed)

    @property
    def token(self) -> str:
        """The canonical spec string (``parse`` round-trips it)."""
        return ",".join([rule.token for rule in self.rules] + [f"seed={self.seed}"])

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def decides(self, rule: FaultRule, site: str, key: object) -> bool:
        """Does ``rule`` fire at ``site`` for ``key``?  Pure and replayable.

        The decision hashes ``(site, kind, key)`` into one 64-bit word
        (FNV-1a over the stable text form — Python's salted ``hash`` would
        differ across worker processes), folds in the plan seed and runs one
        SplitMix64 finalizer pass; the top 53 bits become the uniform draw
        compared against the rule's probability.
        """
        if rule.probability <= 0.0:
            return False
        if rule.probability >= 1.0:
            return True
        word = stable_text_hash(f"{site}|{rule.kind}|{key!r}")
        mixed = splitmix64_mix((word + self.seed * 0x9E3779B97F4A7C15) & ((1 << 64) - 1))
        return (mixed >> 11) * (2.0**-53) < rule.probability

    def fire(
        self,
        site: str,
        key: object = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> Optional[FaultRule]:
        """Evaluate every applicable rule at ``site``; apply latency faults
        in place and return the first error fault that fired (or ``None``).

        ``kinds`` restricts which fault kinds the call site honours (a
        write path cannot meaningfully "crash a worker").  ``key=None``
        draws from the per-``(site, kind)`` sequence counter instead of a
        caller-supplied replay key.
        """
        fault: Optional[FaultRule] = None
        for rule in self.rules:
            if kinds is not None and rule.kind not in kinds:
                continue
            decision_key = key if key is not None else _next_sequence(site, rule.kind)
            if not self.decides(rule, site, decision_key):
                continue
            _count(site, rule.kind)
            if rule.kind == "slow_io":
                if rule.delay:
                    time.sleep(rule.delay)
                continue
            if fault is None:
                fault = rule
        return fault


# ---------------------------------------------------------------------- #
# Process-local injection state: sequence counters and the fault tally
# ---------------------------------------------------------------------- #
_state_lock = threading.Lock()
_sequences: Dict[Tuple[str, str], int] = {}
_counters: Dict[str, int] = {}


def _next_sequence(site: str, kind: str) -> Tuple[str, int]:
    with _state_lock:
        value = _sequences.get((site, kind), 0)
        _sequences[(site, kind)] = value + 1
    return ("#", value)


def _count(site: str, kind: str) -> None:
    label = f"{site}:{kind}"
    with _state_lock:
        _counters[label] = _counters.get(label, 0) + 1


def chaos_counters() -> Dict[str, int]:
    """Faults fired in this process so far, keyed ``site:kind`` (a copy)."""
    with _state_lock:
        return dict(sorted(_counters.items()))


def merge_chaos_counters(delta: Dict[str, int]) -> None:
    """Fold a worker's fault tally into this process's (survey merge path)."""
    with _state_lock:
        for label, count in delta.items():
            _counters[label] = _counters.get(label, 0) + count


def reset_chaos_counters() -> None:
    """Zero the tally and the keyless sequence counters (tests, run starts)."""
    with _state_lock:
        _counters.clear()
        _sequences.clear()


def inject(
    site: str, key: object = None, kinds: Optional[Sequence[str]] = None
) -> Optional[FaultRule]:
    """The injection point: fire the ambient plan's faults at ``site``.

    Returns ``None`` immediately — one contextvar read, one ``is None``
    test — when no plan is active, so instrumented hot paths stay
    effectively free (the chaos bench gates the disabled overhead at ≤1%
    of per-record evaluation time).  ``slow_io`` faults sleep here; error
    faults are returned for the call site to apply (most sites raise
    :class:`InjectedFault` via :func:`raise_fault`).
    """
    plan = current().chaos
    if plan is None:
        return None
    return plan.fire(site, key, kinds)


def raise_fault(fault: Optional[FaultRule], site: str) -> None:
    """Raise :class:`InjectedFault` when ``fault`` is an error fault."""
    if fault is not None:
        raise InjectedFault(fault.kind, site)
