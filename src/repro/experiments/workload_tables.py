"""Experiment WORKLOADS: the PR-6 workload axes as pinned tables.

Three tables cover the axes the embedding surveys opened beyond the paper's
same-size, pristine-host, neighbour-exchange setting:

* :func:`expansion_rows` — unequal-size pairs routed through the
  dispatcher's ``subshape`` strategy (guest strictly smaller than host);
* :func:`fault_rows` — degraded hosts: seeded node/link knockouts, repair
  around the dead images and the dilation measured over surviving routes,
  paper construction vs the re-mapping baselines;
* :func:`hotspot_rows` — the randomized/adversarial traffic generators
  (random-permutation, hotspot, bursty) simulated per strategy, plus one
  heterogeneous-link column.

All three are derived from the survey engine's per-scenario evaluator, so
the golden fixtures (``tests/golden/tab_expansion.json`` etc.) pin the same
records the ``expansion`` and ``faults`` suites produce — one source of
truth for both the CLI sweeps and the regression tests.
"""

from __future__ import annotations

from typing import List

from ..graphs.base import Torus
from ..netsim import (
    CostModel,
    HostNetwork,
    LinkWeightSpec,
    simulate_phase,
    traffic_pattern,
)
from ..runtime.registry import build_strategy
from ..survey.runner import SurveyOptions, evaluate_scenario
from ..survey.scenarios import Scenario, scenarios_for_suite
from .registry import ExperimentResult, register

__all__ = ["expansion_rows", "fault_rows", "hotspot_rows"]

#: Traffic generators of the randomized/adversarial family.
WORKLOAD_TRAFFIC = ("random-permutation", "hotspot", "bursty")

#: Strategies compared under the adversarial workloads.
WORKLOAD_STRATEGIES = ("paper", "lexicographic", "random")


def expansion_rows() -> List[dict]:
    """One row per expansion-suite pair: the injective sub-embedding costs."""
    rows = []
    for scenario in scenarios_for_suite("expansion"):
        record = evaluate_scenario(scenario, SurveyOptions(workers=1))
        rows.append(
            {
                "guest": record.guest,
                "host": record.host,
                "status": record.status,
                "strategy": record.strategy,
                "guest size": record.guest_size,
                "host size": record.nodes,
                "dilation": record.dilation,
                "avg dilation": (
                    round(record.average_dilation, 4)
                    if record.average_dilation is not None
                    else None
                ),
            }
        )
    return rows


def fault_rows() -> List[dict]:
    """One row per faults-suite scenario: degraded dilation per strategy."""
    rows = []
    for scenario in scenarios_for_suite("faults"):
        record = evaluate_scenario(scenario, SurveyOptions(workers=1))
        rows.append(
            {
                "guest": record.guest,
                "host": record.host,
                "faults": record.faults,
                "strategy": record.strategy,
                "dilation": record.dilation,
                "avg dilation": (
                    round(record.average_dilation, 4)
                    if record.average_dilation is not None
                    else None
                ),
                "makespan": record.makespan,
            }
        )
    return rows


def hotspot_rows() -> List[dict]:
    """Adversarial traffic on one mapping pair, homogeneous and weighted links.

    The scenario is the task-mapping pair ``Torus((4, 6)) -> Mesh((3, 8))``
    (an expansion mapping with two spare columns is deliberately avoided:
    same-size keeps every strategy comparable).  Each traffic generator runs
    per strategy on uniform links and once more under ``dimension:0.5``
    weights, pinning the per-hop weighted pricing end to end.
    """
    guest, host = Torus((4, 6)), Torus((4, 6))
    rows = []
    for weights in (None, LinkWeightSpec("dimension", 0.5, 0)):
        network = HostNetwork(host, CostModel(), link_weights=weights)
        for traffic_name in WORKLOAD_TRAFFIC:
            traffic = traffic_pattern(traffic_name, guest)
            for strategy in WORKLOAD_STRATEGIES:
                embedding = build_strategy(strategy, guest, host)
                result = simulate_phase(network, embedding, traffic)
                rows.append(
                    {
                        "traffic": traffic.name,
                        "links": weights.token if weights else "uniform",
                        "strategy": strategy,
                        "messages": result.statistics.num_messages,
                        "max hops": result.statistics.max_hops,
                        "makespan": round(result.makespan, 4),
                    }
                )
    return rows


@register("WORKLOADS", "Expansion, fault-tolerance and adversarial workloads")
def experiment_workloads() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="WORKLOADS",
        title="Expansion, fault-tolerance and adversarial workloads",
        rows=expansion_rows() + fault_rows() + hotspot_rows(),
    )
    result.notes.append(
        "expansion pairs embed a strictly smaller guest injectively; fault "
        "rows measure dilation over surviving links after repair; hotspot "
        "rows simulate the randomized workloads under uniform and weighted links"
    )
    return result
