"""Experiments TAB-SQUARE-LOW and TAB-SQUARE-INC (Theorems 48, 51, 52, 53).

Lowering rows report the measured dilation, the formula ``l^((d-c)/c)`` (×2
for torus -> mesh) and the Theorem 47 lower bound, demonstrating the
"optimal to within a constant" claim; increasing rows report the measured
dilation against the Theorem 52/53 formulas.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.bounds import lowering_dilation_lower_bound
from ..core.square import embed_square, predicted_square_dilation
from ..graphs.base import Mesh, Torus
from .registry import ExperimentResult, register

#: (d, c, l) triples for square lowering (guest dimension d, host dimension c, side l).
SQUARE_LOWERING_SWEEP: List[Tuple[int, int, int]] = [
    (2, 1, 3),
    (2, 1, 4),
    (2, 1, 5),
    (2, 1, 6),
    (3, 1, 3),
    (3, 1, 4),
    (3, 2, 4),
    (3, 2, 9),
    (4, 2, 3),
    (4, 2, 4),
    (4, 3, 8),
    (5, 2, 4),
    (6, 2, 2),
    (6, 3, 2),
    (6, 4, 4),
]

#: (d, c, l) triples for square increasing (guest dimension d < host dimension c).
SQUARE_INCREASING_SWEEP: List[Tuple[int, int, int]] = [
    (1, 2, 9),
    (1, 2, 16),
    (1, 3, 8),
    (1, 3, 27),
    (2, 4, 4),
    (2, 4, 9),
    (2, 3, 8),
    (2, 6, 8),
    (3, 6, 4),
    (2, 5, 32),
]


def _square_pair(d: int, c: int, l: int, guest_kind: str, host_kind: str):
    guest_shape = (l,) * d
    host_side = round(l ** (d / c))
    host_shape = (host_side,) * c
    if math.prod(host_shape) != math.prod(guest_shape):
        return None
    guest = Mesh(guest_shape) if guest_kind == "mesh" else Torus(guest_shape)
    host = Mesh(host_shape) if host_kind == "mesh" else Torus(host_shape)
    return guest, host


def square_lowering_rows(
    sweep: List[Tuple[int, int, int]] = SQUARE_LOWERING_SWEEP,
    *,
    kinds: Tuple[Tuple[str, str], ...] = (("mesh", "mesh"), ("torus", "torus"), ("torus", "mesh")),
    max_size: int = 4096,
) -> List[dict]:
    """Theorems 48 and 51 over the sweep, with the Theorem 47 lower bound."""
    rows = []
    for d, c, l in sweep:
        for guest_kind, host_kind in kinds:
            pair = _square_pair(d, c, l, guest_kind, host_kind)
            if pair is None:
                continue
            guest, host = pair
            if guest.size > max_size:
                continue
            predicted = predicted_square_dilation(guest.spec, host.spec)
            embedding = embed_square(guest, host)
            rows.append(
                {
                    "guest": repr(guest),
                    "host": repr(host),
                    "d": d,
                    "c": c,
                    "dilation": embedding.dilation(),
                    "formula": predicted,
                    "lower bound (Thm 47)": lowering_dilation_lower_bound(
                        d, c, l, torus_pair=(guest_kind != "mesh" or host_kind != "mesh")
                    ),
                    "theorem": embedding.notes.get("theorem", "48/51"),
                }
            )
    return rows


def square_increasing_rows(
    sweep: List[Tuple[int, int, int]] = SQUARE_INCREASING_SWEEP,
    *,
    kinds: Tuple[Tuple[str, str], ...] = (("mesh", "mesh"), ("torus", "torus"), ("torus", "mesh")),
    max_size: int = 4096,
) -> List[dict]:
    """Theorems 52 and 53 over the sweep."""
    rows = []
    for d, c, l in sweep:
        for guest_kind, host_kind in kinds:
            pair = _square_pair(d, c, l, guest_kind, host_kind)
            if pair is None:
                continue
            guest, host = pair
            if guest.size > max_size:
                continue
            predicted = predicted_square_dilation(guest.spec, host.spec)
            embedding = embed_square(guest, host)
            rows.append(
                {
                    "guest": repr(guest),
                    "host": repr(host),
                    "d": d,
                    "c": c,
                    "dilation": embedding.dilation(),
                    "formula": predicted,
                    "divisible": "yes" if c % d == 0 else "no",
                }
            )
    return rows


@register("TAB-SQUARE-LOW", "Theorems 48 and 51: square lowering-dimension sweep")
def square_lowering_table() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-SQUARE-LOW", "Theorems 48 and 51: square lowering-dimension sweep"
    )
    quick = [(d, c, l) for (d, c, l) in SQUARE_LOWERING_SWEEP if l**d <= 1500]
    result.rows.extend(square_lowering_rows(quick))
    result.notes.append(
        "measured dilation never exceeds the formula and always dominates the Theorem 47 bound, "
        "demonstrating optimality to within a constant for fixed d and c"
    )
    return result


@register("TAB-SQUARE-INC", "Theorems 52 and 53: square increasing-dimension sweep")
def square_increasing_table() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-SQUARE-INC", "Theorems 52 and 53: square increasing-dimension sweep"
    )
    quick = [(d, c, l) for (d, c, l) in SQUARE_INCREASING_SWEEP if l**d <= 1500]
    result.rows.extend(square_increasing_rows(quick))
    result.notes.append(
        "divisible cases (Theorem 52) are optimal: dilation 1, or 2 for odd-size torus guests in meshes"
    )
    return result
