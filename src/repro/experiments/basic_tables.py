"""Experiment TAB-BASIC: the Section 3 dilation results over a shape sweep.

The rows cover every claim of the section summary:

* a line embeds in every mesh/torus with dilation 1 (Theorem 13);
* a ring embeds in every torus with dilation 1 (Theorem 28);
* a ring embeds in an even-size mesh of dimension > 1 with dilation 1
  (Theorem 24) and in an odd-size mesh or a line with the optimal dilation 2
  (Theorem 17);

together with the ``g_L`` vs ``h_L`` ablation for rings in even meshes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.basic import g_sequence, predicted_ring_dilation, ring_in_graph_embedding
from ..core.dispatch import embed
from ..graphs.base import Line, Mesh, Ring, Torus
from ..numbering.sequences import cyclic_spread
from .registry import ExperimentResult, register

#: The shape sweep used by the basic-embedding table (sizes 8 .. 4096).
BASIC_SWEEP: List[Tuple[int, ...]] = [
    (8,),
    (9,),
    (3, 3),
    (4, 4),
    (3, 5),
    (4, 2, 3),
    (5, 5),
    (2, 3, 5),
    (3, 3, 3),
    (4, 4, 4),
    (2, 2, 2, 2, 2, 2),
    (8, 8),
    (16, 16),
    (3, 3, 3, 3),
    (8, 8, 8),
    (16, 16, 16),
]


def line_rows(shapes: List[Tuple[int, ...]] = BASIC_SWEEP) -> List[dict]:
    """Measured dilation of a line in every mesh and torus of the sweep."""
    rows = []
    for shape in shapes:
        for host in (Mesh(shape), Torus(shape)):
            embedding = embed(Line(host.size), host)
            rows.append(
                {
                    "guest": f"Line({host.size})",
                    "host": repr(host),
                    "strategy": embedding.strategy,
                    "dilation": embedding.dilation(),
                    "paper": 1,
                }
            )
    return rows


def ring_rows(shapes: List[Tuple[int, ...]] = BASIC_SWEEP) -> List[dict]:
    """Measured dilation of a ring in every mesh and torus of the sweep."""
    rows = []
    for shape in shapes:
        for host in (Mesh(shape), Torus(shape)):
            embedding = embed(Ring(host.size), host)
            rows.append(
                {
                    "guest": f"Ring({host.size})",
                    "host": repr(host),
                    "strategy": embedding.strategy,
                    "dilation": embedding.dilation(),
                    "paper": predicted_ring_dilation(host),
                }
            )
    return rows


def ring_ablation_rows(shapes: List[Tuple[int, ...]] = BASIC_SWEEP) -> List[dict]:
    """g_L vs h_L for rings in even-size meshes of dimension > 1 (design ablation)."""
    rows = []
    for shape in shapes:
        host = Mesh(shape)
        if host.size % 2 != 0 or host.dimension < 2:
            continue
        h_based = ring_in_graph_embedding(host).dilation()
        g_based = cyclic_spread(g_sequence(shape))
        rows.append(
            {
                "host": repr(host),
                "h_L dilation": h_based,
                "g_L dilation": g_based,
                "winner": "h_L" if h_based < g_based else "tie",
            }
        )
    return rows


@register("TAB-BASIC", "Dilation of a line/ring in meshes and toruses (Section 3)")
def basic_table() -> ExperimentResult:
    # Keep the registered experiment quick by using the smaller half of the sweep.
    shapes = [shape for shape in BASIC_SWEEP if Mesh(shape).size <= 512]
    result = ExperimentResult(
        "TAB-BASIC", "Dilation of a line/ring in meshes and toruses (Section 3)"
    )
    result.rows.extend(line_rows(shapes))
    result.rows.extend(ring_rows(shapes))
    ablation = ring_ablation_rows(shapes)
    result.notes.append(
        "ablation (g_L vs h_L for rings in even meshes): "
        + "; ".join(f"{row['host']}: h={row['h_L dilation']}, g={row['g_L dilation']}" for row in ablation)
    )
    result.notes.append("every measured dilation equals the Section 3 prediction")
    return result
