"""Experiment SIM-MAP: task-mapping simulation, paper embedding vs baselines.

This realizes the paper's motivating scenario (Section 1): a parallel task
whose communication structure is a torus or mesh must be mapped onto the
interconnection network of a parallel machine.  For each (task graph, host
network) pair the paper's embedding and the baselines are placed on the
simulated store-and-forward network and one neighbour-exchange phase is
simulated; the low-dilation embedding should win on maximum hops, link
congestion and simulated completion time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..baselines import bfs_order_embedding, lexicographic_embedding, random_embedding
from ..core.dispatch import embed
from ..core.embedding import Embedding
from ..graphs.base import CartesianGraph, Hypercube, Mesh, Torus
from ..netsim import CostModel, HostNetwork, neighbor_exchange_traffic, simulate_phase
from ..netsim.traffic import transpose_traffic
from .registry import ExperimentResult, register

#: The task-mapping scenarios: (task graph, host network) pairs.
SCENARIOS: List[Tuple[CartesianGraph, CartesianGraph]] = [
    (Torus((8, 8)), Mesh((4, 4, 4))),
    (Mesh((8, 8)), Torus((4, 4, 4))),
    (Torus((4, 4, 4)), Mesh((8, 8))),
    (Mesh((16, 4)), Torus((4, 4, 4))),
    (Torus((8, 8)), Torus((2,) * 6)),
]

#: Embedding strategies compared in the simulation.
STRATEGIES: Dict[str, Callable[[CartesianGraph, CartesianGraph], Embedding]] = {
    "paper": embed,
    "lexicographic": lexicographic_embedding,
    "bfs-order": bfs_order_embedding,
    "random": lambda guest, host: random_embedding(guest, host, seed=0),
}


def mapping_rows(
    scenarios: List[Tuple[CartesianGraph, CartesianGraph]] = SCENARIOS,
    *,
    alpha: float = 1.0,
    bandwidth: float = 1.0,
    message_size: float = 1.0,
) -> List[dict]:
    """Simulate one neighbour-exchange phase for every scenario and strategy."""
    rows = []
    for guest, host in scenarios:
        network = HostNetwork(host, CostModel(alpha=alpha, bandwidth=bandwidth))
        traffic = neighbor_exchange_traffic(guest, message_size=message_size)
        for name, builder in STRATEGIES.items():
            embedding = builder(guest, host)
            result = simulate_phase(network, embedding, traffic)
            rows.append(
                {
                    "task graph": repr(guest),
                    "network": repr(host),
                    "strategy": name,
                    "dilation": embedding.dilation(),
                    "max hops": result.statistics.max_hops,
                    "mean hops": round(result.statistics.mean_hops, 2),
                    "max link msgs": result.statistics.max_link_load_messages,
                    "makespan": round(result.makespan, 1),
                }
            )
    return rows


def negative_control_rows(
    *, alpha: float = 1.0, bandwidth: float = 1.0
) -> List[dict]:
    """The transpose (long-range) workload where dilation matters far less."""
    rows = []
    guest, host = Torus((8, 8)), Mesh((4, 4, 4))
    network = HostNetwork(host, CostModel(alpha=alpha, bandwidth=bandwidth))
    traffic = transpose_traffic(guest)
    for name, builder in STRATEGIES.items():
        embedding = builder(guest, host)
        result = simulate_phase(network, embedding, traffic)
        rows.append(
            {
                "workload": "transpose",
                "strategy": name,
                "dilation": embedding.dilation(),
                "max hops": result.statistics.max_hops,
                "makespan": round(result.makespan, 1),
            }
        )
    return rows


@register("SIM-MAP", "Task-mapping simulation: paper embedding vs baselines")
def simulation_table() -> ExperimentResult:
    result = ExperimentResult("SIM-MAP", "Task-mapping simulation: paper embedding vs baselines")
    result.rows.extend(mapping_rows(SCENARIOS[:3]))
    result.notes.append(
        "negative control (transpose workload, dominated by network diameter): "
        + "; ".join(
            f"{row['strategy']}: makespan {row['makespan']}" for row in negative_control_rows()
        )
    )
    result.notes.append(
        "on neighbour-exchange workloads the paper's low-dilation embedding minimizes max hops, "
        "link congestion and simulated completion time in every scenario"
    )
    return result
