"""Experiment SIM-MAP: task-mapping simulation, paper embedding vs baselines.

This realizes the paper's motivating scenario (Section 1): a parallel task
whose communication structure is a torus or mesh must be mapped onto the
interconnection network of a parallel machine.  For each (task graph, host
network) pair the paper's embedding and the baselines are placed on the
simulated store-and-forward network and one neighbour-exchange phase is
simulated; the low-dilation embedding should win on maximum hops, link
congestion and simulated completion time.

The strategy set is the runtime's plugin registry
(:mod:`repro.runtime.registry`) — the same competitors the ``simulation``
survey suite sweeps and the CLI compares — and every row generator resolves
its backend from the ambient execution context, so the experiment can be
pinned against either the array kernels or the loop reference by wrapping a
call in ``use_context(backend=...)`` (they agree exactly; the golden fixture
``tests/golden/tab_sim_map.json`` pins the table).
"""

from __future__ import annotations

from typing import List, Tuple

from ..graphs.base import CartesianGraph, Mesh, Torus
from ..netsim import (
    CostModel,
    HostNetwork,
    all_to_all_in_groups_traffic,
    neighbor_exchange_traffic,
    simulate_phase,
    transpose_traffic,
)
from ..runtime.registry import build_strategy, strategy_names
from .registry import ExperimentResult, register

#: The task-mapping scenarios: (task graph, host network) pairs.
SCENARIOS: List[Tuple[CartesianGraph, CartesianGraph]] = [
    (Torus((8, 8)), Mesh((4, 4, 4))),
    (Mesh((8, 8)), Torus((4, 4, 4))),
    (Torus((4, 4, 4)), Mesh((8, 8))),
    (Mesh((16, 4)), Torus((4, 4, 4))),
    (Torus((8, 8)), Torus((2,) * 6)),
]


def mapping_rows(
    scenarios: List[Tuple[CartesianGraph, CartesianGraph]] = SCENARIOS,
    *,
    alpha: float = 1.0,
    bandwidth: float = 1.0,
    message_size: float = 1.0,
) -> List[dict]:
    """Simulate one neighbour-exchange phase for every scenario and strategy."""
    rows = []
    for guest, host in scenarios:
        network = HostNetwork(host, CostModel(alpha=alpha, bandwidth=bandwidth))
        traffic = neighbor_exchange_traffic(guest, message_size=message_size)
        for name in strategy_names():
            embedding = build_strategy(name, guest, host)
            result = simulate_phase(network, embedding, traffic)
            rows.append(
                {
                    "task graph": repr(guest),
                    "network": repr(host),
                    "strategy": name,
                    "dilation": embedding.dilation(),
                    "max hops": result.statistics.max_hops,
                    "mean hops": round(result.statistics.mean_hops, 2),
                    "max link msgs": result.statistics.max_link_load_messages,
                    "makespan": round(result.makespan, 1),
                }
            )
    return rows


def negative_control_rows(*, alpha: float = 1.0, bandwidth: float = 1.0) -> List[dict]:
    """The transpose (long-range) workload where dilation matters far less."""
    rows = []
    guest, host = Torus((8, 8)), Mesh((4, 4, 4))
    network = HostNetwork(host, CostModel(alpha=alpha, bandwidth=bandwidth))
    traffic = transpose_traffic(guest)
    for name in strategy_names():
        embedding = build_strategy(name, guest, host)
        result = simulate_phase(network, embedding, traffic)
        rows.append(
            {
                "workload": "transpose",
                "strategy": name,
                "dilation": embedding.dilation(),
                "max hops": result.statistics.max_hops,
                "makespan": round(result.makespan, 1),
            }
        )
    return rows


def collective_rows(*, alpha: float = 1.0, bandwidth: float = 1.0) -> List[dict]:
    """The all-to-all-in-groups collective, where clustering still pays.

    Unlike the transpose control, the dense within-group exchange keeps
    rewarding embeddings that map each group of tasks onto nearby
    processors, so the paper's embedding should beat the baselines here too
    (by a smaller margin than on pure neighbour exchange).
    """
    rows = []
    guest, host = Torus((8, 8)), Mesh((4, 4, 4))
    network = HostNetwork(host, CostModel(alpha=alpha, bandwidth=bandwidth))
    traffic = all_to_all_in_groups_traffic(guest)
    for name in strategy_names():
        embedding = build_strategy(name, guest, host)
        result = simulate_phase(network, embedding, traffic)
        rows.append(
            {
                "workload": traffic.name,
                "strategy": name,
                "dilation": embedding.dilation(),
                "max hops": result.statistics.max_hops,
                "makespan": round(result.makespan, 1),
            }
        )
    return rows


@register("SIM-MAP", "Task-mapping simulation: paper embedding vs baselines")
def simulation_table() -> ExperimentResult:
    result = ExperimentResult("SIM-MAP", "Task-mapping simulation: paper embedding vs baselines")
    result.rows.extend(mapping_rows(SCENARIOS[:3]))
    result.notes.append(
        "negative control (transpose workload, dominated by network diameter): "
        + "; ".join(
            f"{row['strategy']}: makespan {row['makespan']}" for row in negative_control_rows()
        )
    )
    result.notes.append(
        "collective control (all-to-all within groups, clustering still pays): "
        + "; ".join(
            f"{row['strategy']}: makespan {row['makespan']}" for row in collective_rows()
        )
    )
    result.notes.append(
        "on neighbour-exchange workloads the paper's low-dilation embedding minimizes max hops, "
        "link congestion and simulated completion time in every scenario"
    )
    return result
