"""Experiment TAB-INC: Theorem 32's dilation matrix under the expansion condition.

Rows sweep guest/host type combinations and shapes (including the hypercube
hosts of Corollary 34) and report the measured dilation next to the value the
theorem promises, plus the expansion-factor ablation of Theorem 32(iii)
(even-size torus into a mesh: a good factor achieves dilation 1, a bad one
only 2).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.dispatch import embed
from ..core.expansion import ExpansionFactor
from ..core.increasing import embed_increasing
from ..graphs.base import Mesh, Torus
from .registry import ExperimentResult, register

#: (guest shape, host shape) pairs satisfying the expansion condition.
INCREASING_SWEEP: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
    ((4, 6), (2, 2, 2, 3)),
    ((6, 12), (6, 3, 2, 2)),
    ((4, 4), (2, 2, 2, 2)),
    ((8, 8), (2, 2, 2, 2, 2, 2)),
    ((3, 9), (3, 3, 3)),
    ((9, 9), (3, 3, 3, 3)),
    ((4, 8), (2, 2, 2, 2, 2)),
    ((6, 10), (2, 3, 2, 5)),
    ((12, 12), (4, 3, 4, 3)),
    ((16, 16), (4, 4, 4, 4)),
]


def increasing_rows(
    sweep: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = INCREASING_SWEEP,
) -> List[dict]:
    """Measured dilation for every guest/host type combination of the sweep."""
    rows = []
    for guest_shape, host_shape in sweep:
        for guest_kind in ("mesh", "torus"):
            for host_kind in ("mesh", "torus"):
                guest = Mesh(guest_shape) if guest_kind == "mesh" else Torus(guest_shape)
                host = Mesh(host_shape) if host_kind == "mesh" else Torus(host_shape)
                embedding = embed(guest, host)
                rows.append(
                    {
                        "guest": repr(guest),
                        "host": repr(host),
                        "strategy": embedding.strategy,
                        "dilation": embedding.dilation(),
                        "paper": embedding.predicted_dilation,
                    }
                )
    return rows


def factor_ablation_rows() -> List[dict]:
    """Theorem 32(iii)'s ablation on the paper's (6,12) -> (6,3,2,2) example."""
    guest = Torus((6, 12))
    host = Mesh((6, 3, 2, 2))
    good = embed_increasing(guest, host, prefer_unit_dilation=True)
    bad = embed_increasing(
        guest, host, ExpansionFactor(((6,), (3, 2, 2))), prefer_unit_dilation=False
    )
    return [
        {
            "factor": "((2,3),(6,2)) — every list starts even",
            "strategy": good.strategy,
            "dilation": good.dilation(),
            "paper": 1,
        },
        {
            "factor": "((6),(3,2,2)) — singleton list",
            "strategy": bad.strategy,
            "dilation": bad.dilation(),
            "paper": 2,
        },
    ]


def hypercube_rows(max_dimension: int = 10) -> List[dict]:
    """Corollary 34: meshes/toruses of power-of-two size embed in hypercubes with dilation 1."""
    rows = []
    for guest_shape in [(4, 8), (8, 8), (4, 4, 4), (16, 4), (2, 32), (8, 16)]:
        size = math.prod(guest_shape)
        bits = size.bit_length() - 1
        if bits > max_dimension:
            continue
        host = Torus((2,) * bits)
        for guest in (Mesh(guest_shape), Torus(guest_shape)):
            embedding = embed(guest, host)
            rows.append(
                {
                    "guest": repr(guest),
                    "host": f"Hypercube({bits})",
                    "dilation": embedding.dilation(),
                    "paper": 1,
                }
            )
    return rows


@register("TAB-INC", "Theorem 32 dilation matrix under the expansion condition")
def increasing_table() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-INC", "Theorem 32 dilation matrix under the expansion condition"
    )
    quick_sweep = [pair for pair in INCREASING_SWEEP if math.prod(pair[0]) <= 144]
    result.rows.extend(increasing_rows(quick_sweep))
    result.notes.append(
        "expansion-factor ablation on (6,12)-torus -> (6,3,2,2)-mesh: "
        + "; ".join(f"{row['factor']}: dilation {row['dilation']}" for row in factor_ablation_rows())
    )
    result.notes.append(
        "hypercube hosts (Corollary 34): "
        + "; ".join(f"{row['guest']}: {row['dilation']}" for row in hypercube_rows())
    )
    return result
