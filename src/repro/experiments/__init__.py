"""Experiment harness: regenerate every figure and result table of the paper.

Each module computes the rows of one (or a small group of) experiment(s) from
the index in ``DESIGN.md``; the benchmark suite under ``benchmarks/`` wraps
these generators with ``pytest-benchmark`` timing and shape assertions, and
``python -m repro.experiments`` renders all of them as the markdown recorded
in ``EXPERIMENTS.md``.

Experiment identifiers
----------------------
========  ==========================================================
FIG-1/2   the (4,2,3)-torus and mesh of Figures 1-2
FIG-3     distance/spread table in the style of Figure 3
FIG-4     sequences P and P' for L = (4,2,3) (Figure 4)
FIG-9     embedding functions f, g, h for L = (4,2,3) (Figure 9)
FIG-10    line/ring of size 24 in the (4,2,3)-mesh (Figure 10)
FIG-11    F_V, G_V, H_V for L = (4,6), M = (2,2,2,3) (Figure 11)
FIG-12    (3,3,6)-mesh in the (6,9)-mesh via supernodes (Figure 12)
TAB-BASIC dilation of a line/ring in meshes and toruses (Section 3)
TAB-INC   Theorem 32 dilation matrix under the expansion condition
TAB-LOW-SIMPLE  Theorem 39 / Corollary 40 dilation sweep
TAB-LOW-GENERAL Theorem 43 dilation sweep
TAB-SQUARE-LOW  Theorems 48 and 51 sweep
TAB-SQUARE-INC  Theorems 52 and 53 sweep
TAB-OPTIMA      Section 5 comparison against known optimal embeddings
TAB-SEARCH      empirical optimality probe: population search vs seeds
APP-EPS         the Appendix ε sequence
SIM-MAP         task-mapping simulation: paper embedding vs baselines
========  ==========================================================
"""

from .registry import EXPERIMENTS, ExperimentResult, get_experiment, run_all, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment", "run_experiment", "run_all"]
