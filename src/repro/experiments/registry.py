"""Registry and runner for the reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.report import format_table

__all__ = ["ExperimentResult", "EXPERIMENTS", "register", "get_experiment", "run_experiment", "run_all"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment: tabular rows plus free-form notes."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    text: Optional[str] = None

    def render(self) -> str:
        """Render as plain text (table + notes)."""
        parts: List[str] = []
        if self.text is not None:
            parts.append(self.text)
        if self.rows:
            parts.append(format_table(self.rows, title=f"{self.experiment_id}: {self.title}"))
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """Render as a markdown section (used to build ``EXPERIMENTS.md``)."""
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        if self.text is not None:
            lines.append("```")
            lines.append(self.text)
            lines.append("```")
            lines.append("")
        if self.rows:
            columns: List[str] = []
            for row in self.rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            lines.append("| " + " | ".join(columns) + " |")
            lines.append("|" + "|".join("---" for _ in columns) + "|")
            for row in self.rows:
                lines.append("| " + " | ".join(str(row.get(col, "")) for col in columns) + " |")
            lines.append("")
        for note in self.notes:
            lines.append(f"*{note}*")
            lines.append("")
        return "\n".join(lines)


#: Experiment id -> (title, generator) registry, populated by the modules below.
EXPERIMENTS: Dict[str, tuple] = {}


def register(experiment_id: str, title: str) -> Callable:
    """Decorator registering a zero-argument generator returning an ExperimentResult."""

    def decorator(func: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        EXPERIMENTS[experiment_id] = (title, func)
        return func

    return decorator


def get_experiment(experiment_id: str):
    """The generator registered under the given id."""
    _ensure_loaded()
    title, func = EXPERIMENTS[experiment_id]
    return func


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment and return its result."""
    return get_experiment(experiment_id)()


def run_all(ids: Optional[Sequence[str]] = None) -> List[ExperimentResult]:
    """Run every registered experiment (or the given subset) in registry order."""
    _ensure_loaded()
    selected = list(ids) if ids is not None else list(EXPERIMENTS)
    return [run_experiment(experiment_id) for experiment_id in selected]


def _ensure_loaded() -> None:
    """Import the experiment modules so their registrations run."""
    from . import (  # noqa: F401  (imported for registration side effects)
        figures,
        basic_tables,
        increasing_tables,
        lowering_tables,
        square_tables,
        optima_tables,
        simulation_tables,
        workload_tables,
    )
