"""Experiments FIG-1/2, FIG-3, FIG-4, FIG-9, FIG-10, FIG-11, FIG-12.

These regenerate the paper's worked figures as data: node/edge counts and
example distances for Figures 1–2, sequence/spread tables for Figures 3, 4,
9 and 11, and the embedding grids of Figures 10 and 12 together with their
measured dilation costs.
"""

from __future__ import annotations

from ..core.basic import (
    f_sequence,
    f_value,
    g_value,
    h_value,
    line_in_graph_embedding,
    ring_in_graph_embedding,
)
from ..core.expansion import ExpansionFactor
from ..core.increasing import F_value, G_value, H_value
from ..core.lowering import embed_lowering_general
from ..graphs.base import Mesh, Torus
from ..numbering.graycode import natural_sequence
from ..numbering.radix import RadixBase
from ..numbering.sequences import cyclic_spread, sequence_spread
from ..viz.ascii import render_embedding_grid, render_sequence_table
from .registry import ExperimentResult, register

FIGURE_SHAPE = (4, 2, 3)
FIGURE11_GUEST = (4, 6)
FIGURE11_FACTOR = ExpansionFactor(((2, 2), (2, 3)))


@register("FIG-1/2", "The (4,2,3)-torus and (4,2,3)-mesh of Figures 1 and 2")
def figure_1_2() -> ExperimentResult:
    result = ExperimentResult("FIG-1/2", "The (4,2,3)-torus and (4,2,3)-mesh of Figures 1 and 2")
    for graph in (Torus(FIGURE_SHAPE), Mesh(FIGURE_SHAPE)):
        result.rows.append(
            {
                "graph": repr(graph),
                "nodes": graph.size,
                "edges": graph.num_edges(),
                "diameter": graph.diameter(),
                "distance (0,0,1)->(3,0,0)": graph.distance((0, 0, 1), (3, 0, 0)),
            }
        )
    result.notes.append(
        "paper: the torus distance between (0,0,1) and (3,0,0) is 2; the mesh distance is 4"
    )
    return result


@register("FIG-3", "δm/δt spreads of a sequence over Ω_(3,3) (Figure 3 style)")
def figure_3() -> ExperimentResult:
    sequence = [(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1), (0, 2), (1, 2), (2, 2)]
    result = ExperimentResult("FIG-3", "δm/δt spreads of a sequence over Ω_(3,3) (Figure 3 style)")
    result.rows.append(
        {
            "view": "acyclic",
            "δm-spread": sequence_spread(sequence),
            "δt-spread": sequence_spread(sequence, metric="torus", shape=(3, 3)),
        }
    )
    result.rows.append(
        {
            "view": "cyclic",
            "δm-spread": cyclic_spread(sequence),
            "δt-spread": cyclic_spread(sequence, metric="torus", shape=(3, 3)),
        }
    )
    result.notes.append("illustrates Definition 8: the two views and two metrics give different spreads")
    return result


@register("FIG-4", "Sequences P and P' for L = (4,2,3) (Figure 4)")
def figure_4() -> ExperimentResult:
    naturals = natural_sequence(FIGURE_SHAPE)
    reflected = f_sequence(FIGURE_SHAPE)
    result = ExperimentResult("FIG-4", "Sequences P and P' for L = (4,2,3) (Figure 4)")
    result.text = render_sequence_table(
        24,
        {"P": lambda x: naturals[x], "P'": lambda x: reflected[x]},
        title="Figure 4: natural sequence P and reflected sequence P'",
    )
    result.rows.append(
        {
            "sequence": "P (natural)",
            "δm-spread": sequence_spread(naturals),
            "paper": "> 1 for d > 1",
        }
    )
    result.rows.append(
        {"sequence": "P' (= f_L)", "δm-spread": sequence_spread(reflected), "paper": 1}
    )
    return result


@register("FIG-9", "Embedding functions f_L, g_L, h_L for n = 24, L = (4,2,3) (Figure 9)")
def figure_9() -> ExperimentResult:
    result = ExperimentResult(
        "FIG-9", "Embedding functions f_L, g_L, h_L for n = 24, L = (4,2,3) (Figure 9)"
    )
    result.text = render_sequence_table(
        24,
        {
            "f_L": lambda x: f_value(FIGURE_SHAPE, x),
            "g_L": lambda x: g_value(FIGURE_SHAPE, x),
            "h_L": lambda x: h_value(FIGURE_SHAPE, x),
        },
        title="Figure 9: f_L, g_L and h_L for L = (4, 2, 3)",
    )
    shape = FIGURE_SHAPE
    result.rows.append(
        {
            "function": "f_L",
            "acyclic δm-spread": sequence_spread([f_value(shape, x) for x in range(24)]),
            "cyclic δm-spread": cyclic_spread([f_value(shape, x) for x in range(24)]),
            "cyclic δt-spread": cyclic_spread(
                [f_value(shape, x) for x in range(24)], metric="torus", shape=shape
            ),
        }
    )
    result.rows.append(
        {
            "function": "g_L",
            "acyclic δm-spread": sequence_spread([g_value(shape, x) for x in range(24)]),
            "cyclic δm-spread": cyclic_spread([g_value(shape, x) for x in range(24)]),
            "cyclic δt-spread": cyclic_spread(
                [g_value(shape, x) for x in range(24)], metric="torus", shape=shape
            ),
        }
    )
    result.rows.append(
        {
            "function": "h_L",
            "acyclic δm-spread": sequence_spread([h_value(shape, x) for x in range(24)]),
            "cyclic δm-spread": cyclic_spread([h_value(shape, x) for x in range(24)]),
            "cyclic δt-spread": cyclic_spread(
                [h_value(shape, x) for x in range(24)], metric="torus", shape=shape
            ),
        }
    )
    result.notes.append("paper: f has unit acyclic spreads; g has cyclic δm-spread 2; h has unit cyclic spreads")
    return result


@register("FIG-10", "A line and a ring of size 24 in the (4,2,3)-mesh (Figure 10)")
def figure_10() -> ExperimentResult:
    host = Mesh(FIGURE_SHAPE)
    line = line_in_graph_embedding(host)
    ring = ring_in_graph_embedding(host)
    result = ExperimentResult("FIG-10", "A line and a ring of size 24 in the (4,2,3)-mesh (Figure 10)")
    result.text = "\n\n".join(
        [
            render_embedding_grid(line, title="Figure 10(d): the line embedded with f_(4,2,3)"),
            render_embedding_grid(ring, title="Figure 10(f): the ring embedded with h_(4,2,3)"),
        ]
    )
    result.rows.append(
        {"guest": "line of 24", "strategy": line.strategy, "dilation": line.dilation(), "paper": 1}
    )
    result.rows.append(
        {"guest": "ring of 24", "strategy": ring.strategy, "dilation": ring.dilation(), "paper": 1}
    )
    return result


@register("FIG-11", "F_V, G_V, H_V for L = (4,6), M = (2,2,2,3) (Figure 11)")
def figure_11() -> ExperimentResult:
    guest_base = RadixBase(FIGURE11_GUEST)
    naturals = [guest_base.to_digits(x) for x in range(guest_base.size)]
    result = ExperimentResult("FIG-11", "F_V, G_V, H_V for L = (4,6), M = (2,2,2,3) (Figure 11)")
    result.text = render_sequence_table(
        guest_base.size,
        {
            "F_V": lambda x: F_value(FIGURE11_FACTOR, naturals[x]),
            "G_V": lambda x: G_value(FIGURE11_FACTOR, naturals[x]),
            "H_V": lambda x: H_value(FIGURE11_FACTOR, naturals[x]),
        },
        title="Figure 11: F_V, G_V, H_V for V = ((2,2), (2,3))",
    )
    from ..core.increasing import embed_increasing

    for guest_kind, host_kind, paper in [
        ("mesh", "mesh", 1),
        ("mesh", "torus", 1),
        ("torus", "torus", 1),
        ("torus", "mesh", "1 (even size) / 2 in general"),
    ]:
        guest = Mesh(FIGURE11_GUEST) if guest_kind == "mesh" else Torus(FIGURE11_GUEST)
        host = Mesh((2, 2, 2, 3)) if host_kind == "mesh" else Torus((2, 2, 2, 3))
        embedding = embed_increasing(guest, host)
        result.rows.append(
            {
                "guest": repr(guest),
                "host": repr(host),
                "strategy": embedding.strategy,
                "dilation": embedding.dilation(),
                "paper": paper,
            }
        )
    return result


@register("FIG-12", "The (3,3,6)-mesh in the (6,9)-mesh via supernodes (Figure 12)")
def figure_12() -> ExperimentResult:
    guest = Mesh((3, 3, 6))
    host = Mesh((6, 9))
    embedding = embed_lowering_general(guest, host)
    result = ExperimentResult("FIG-12", "The (3,3,6)-mesh in the (6,9)-mesh via supernodes (Figure 12)")
    result.text = render_embedding_grid(
        embedding, title="Figure 12: guest ranks inside the (6,9)-mesh (supernode construction)"
    )
    result.rows.append(
        {
            "guest": repr(guest),
            "host": repr(host),
            "strategy": embedding.strategy,
            "dilation": embedding.dilation(),
            "paper": 3,
        }
    )
    result.notes.append(
        "the paper walks through exactly this example when introducing general reduction (Section 4.2.2)"
    )
    return result
