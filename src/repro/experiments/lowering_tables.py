"""Experiments TAB-LOW-SIMPLE and TAB-LOW-GENERAL (Theorems 39 and 43).

The simple-reduction sweep includes the hypercube sources of Corollary 40 and
the reduction-factor-ordering ablation; the general-reduction sweep includes
the paper's worked (3,3,6) -> (6,9) supernode example.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.dispatch import embed
from ..core.lowering import embed_lowering_general, embed_lowering_simple
from ..core.reduction import find_general_reduction, find_simple_reduction
from ..graphs.base import Hypercube, Line, Mesh, Torus
from .registry import ExperimentResult, register

#: (guest shape, host shape) pairs satisfying the simple-reduction condition.
SIMPLE_SWEEP: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
    ((4, 2, 3, 3), (8, 9)),
    ((3, 3, 6), (6, 9)),
    ((2, 2, 2, 2), (4, 4)),
    ((4, 4, 4), (16, 4)),
    ((2, 3, 5), (30,)),
    ((4, 4), (16,)),
    ((2, 2, 2, 2, 2, 2), (8, 8)),
    ((2, 2, 2, 2, 2, 2), (4, 4, 4)),
    ((3, 3, 3, 3), (9, 9)),
    ((8, 8, 8), (64, 8)),
]

#: (guest shape, host shape) pairs requiring the general-reduction construction.
GENERAL_SWEEP: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
    ((3, 3, 6), (6, 9)),
    ((3, 3, 4), (6, 6)),
    ((3, 3, 3, 4), (6, 6, 3)),
    ((5, 5, 4), (10, 10)),
    ((2, 3, 2, 10, 6, 21, 5, 4), (4, 3, 5, 28, 10, 18)),
]


def simple_rows(
    sweep: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = SIMPLE_SWEEP,
) -> List[dict]:
    """Theorem 39 over the sweep, all four guest/host type combinations."""
    rows = []
    for guest_shape, host_shape in sweep:
        factor = find_simple_reduction(guest_shape, host_shape)
        if factor is None:
            continue
        for guest_kind in ("mesh", "torus"):
            for host_kind in ("mesh", "torus"):
                guest = Mesh(guest_shape) if guest_kind == "mesh" else Torus(guest_shape)
                host = Mesh(host_shape) if host_kind == "mesh" else Torus(host_shape)
                embedding = embed_lowering_simple(guest, host, factor)
                rows.append(
                    {
                        "guest": repr(guest),
                        "host": repr(host),
                        "dilation": embedding.dilation(),
                        "paper": embedding.predicted_dilation,
                        "formula": f"max(m_i/l_vi) = {factor.dilation()}",
                    }
                )
    return rows


def hypercube_rows() -> List[dict]:
    """Corollary 40: a hypercube embeds with dilation max(m_i)/2."""
    rows = []
    for d, host_shape in [(4, (4, 4)), (6, (8, 8)), (6, (4, 4, 4)), (8, (16, 16)), (8, (4, 4, 4, 4)), (10, (32, 32))]:
        guest = Hypercube(d)
        for host in (Mesh(host_shape), Torus(host_shape)):
            embedding = embed(guest, host)
            rows.append(
                {
                    "guest": f"Hypercube({d})",
                    "host": repr(host),
                    "dilation": embedding.dilation(),
                    "paper": max(host_shape) // 2,
                }
            )
    return rows


def ordering_ablation_rows() -> List[dict]:
    """Theorem 39's non-increasing ordering vs the adversarial ordering."""
    rows = []
    for guest_shape, host_shape in [((4, 2), (8,)), ((4, 2, 3, 3), (8, 9)), ((2, 2, 8), (32,)), ((3, 9), (27,))]:
        factor = find_simple_reduction(guest_shape, host_shape)
        if factor is None:
            continue
        guest, host = Mesh(guest_shape), Mesh(host_shape) if len(host_shape) > 1 else Line(host_shape[0])
        good = embed_lowering_simple(guest, host, factor.sorted_non_increasing())
        bad = embed_lowering_simple(guest, host, factor.sorted_non_decreasing())
        rows.append(
            {
                "guest": repr(guest),
                "host": repr(host),
                "non-increasing": good.dilation(),
                "non-decreasing": bad.dilation(),
            }
        )
    return rows


def general_rows(
    sweep: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = GENERAL_SWEEP,
) -> List[dict]:
    """Theorem 43 over the sweep, all four guest/host type combinations."""
    rows = []
    for guest_shape, host_shape in sweep:
        factor = find_general_reduction(guest_shape, host_shape)
        if factor is None:
            continue
        if math.prod(guest_shape) > 2048:
            # The eight-dimensional Definition 41 example is used for factor
            # validation only; measuring its dilation needs > 10^5 nodes.
            rows.append(
                {
                    "guest": f"mesh{guest_shape}",
                    "host": f"mesh{host_shape}",
                    "dilation": "(factor check only)",
                    "paper": f"max(s) = {factor.dilation()}",
                }
            )
            continue
        for guest_kind in ("mesh", "torus"):
            for host_kind in ("mesh", "torus"):
                guest = Mesh(guest_shape) if guest_kind == "mesh" else Torus(guest_shape)
                host = Mesh(host_shape) if host_kind == "mesh" else Torus(host_shape)
                embedding = embed_lowering_general(guest, host, factor)
                rows.append(
                    {
                        "guest": repr(guest),
                        "host": repr(host),
                        "dilation": embedding.dilation(),
                        "paper": embedding.predicted_dilation,
                    }
                )
    return rows


@register("TAB-LOW-SIMPLE", "Theorem 39 / Corollary 40: simple-reduction dilation sweep")
def simple_table() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-LOW-SIMPLE", "Theorem 39 / Corollary 40: simple-reduction dilation sweep"
    )
    quick = [pair for pair in SIMPLE_SWEEP if math.prod(pair[0]) <= 256]
    result.rows.extend(simple_rows(quick))
    result.notes.append(
        "hypercube sources (Corollary 40): "
        + "; ".join(f"{row['guest']}->{row['host']}: {row['dilation']}" for row in hypercube_rows()[:6])
    )
    result.notes.append(
        "factor-ordering ablation: "
        + "; ".join(
            f"{row['guest']}: sorted {row['non-increasing']} vs unsorted {row['non-decreasing']}"
            for row in ordering_ablation_rows()
        )
    )
    return result


@register("TAB-LOW-GENERAL", "Theorem 43: general-reduction dilation sweep")
def general_table() -> ExperimentResult:
    result = ExperimentResult("TAB-LOW-GENERAL", "Theorem 43: general-reduction dilation sweep")
    result.rows.extend(general_rows())
    result.notes.append(
        "torus guests into mesh hosts report at most twice the max(s) value (Theorem 43(iii))"
    )
    return result
