"""Experiments TAB-OPTIMA, TAB-SEARCH and APP-EPS.

TAB-OPTIMA reproduces Section 5's comparison of the constructed embeddings
against the previously known optimal results: FitzGerald's (l,l)- and
(l,l,l)-mesh-in-line optima, the (l,l)-torus-in-ring optimum of [MN86] and
Harper's hypercube-in-line optimum.  TAB-SEARCH probes the same optimality
claims *empirically*: the population-based optimizer (:mod:`repro.optimize`)
searches each pair of the ``optima`` survey suite, seeded from the paper's
construction and the baselines, and the table reports where search matched
or beat its seeds.  APP-EPS tabulates the Appendix ε sequence that
quantifies the hypercube-in-line gap.
"""

from __future__ import annotations

from typing import List

from ..core.bounds import (
    epsilon_value,
    fitzgerald_cube_mesh_in_line,
    fitzgerald_square_mesh_in_line,
    harper_hypercube_in_line,
    mn86_square_torus_in_ring,
)
from ..core.dispatch import embed
from ..graphs.base import Hypercube, Line, Mesh, Ring, Torus
from ..survey.runner import SurveyOptions, evaluate_scenario
from ..survey.scenarios import scenarios_for_suite
from .registry import ExperimentResult, register


def square_mesh_in_line_rows(sides: List[int] = (3, 4, 5, 6, 8)) -> List[dict]:
    """(l, l)-mesh in a line: ours vs FitzGerald's optimum (they coincide)."""
    rows = []
    for l in sides:
        ours = embed(Mesh((l, l)), Line(l * l)).dilation()
        optimal = fitzgerald_square_mesh_in_line(l)
        rows.append(
            {
                "instance": f"({l},{l})-mesh -> line",
                "ours": ours,
                "known optimal": optimal,
                "ratio": round(ours / optimal, 3),
                "source": "[Fit74]",
            }
        )
    return rows


def square_torus_in_ring_rows(sides: List[int] = (3, 4, 5, 6, 8)) -> List[dict]:
    """(l, l)-torus in a ring: ours vs [MN86] (they coincide)."""
    rows = []
    for l in sides:
        ours = embed(Torus((l, l)), Ring(l * l)).dilation()
        optimal = mn86_square_torus_in_ring(l)
        rows.append(
            {
                "instance": f"({l},{l})-torus -> ring",
                "ours": ours,
                "known optimal": optimal,
                "ratio": round(ours / optimal, 3),
                "source": "[MN86]",
            }
        )
    return rows


def cube_mesh_in_line_rows(sides: List[int] = (3, 4, 5)) -> List[dict]:
    """(l, l, l)-mesh in a line: ours (l²) vs FitzGerald's ⌊3l²/4 + l/2⌋."""
    rows = []
    for l in sides:
        ours = embed(Mesh((l, l, l)), Line(l**3)).dilation()
        optimal = fitzgerald_cube_mesh_in_line(l)
        rows.append(
            {
                "instance": f"({l},{l},{l})-mesh -> line",
                "ours": ours,
                "known optimal": optimal,
                "ratio": round(ours / optimal, 3),
                "source": "[Fit74] (ratio -> 4/3)",
            }
        )
    return rows


def hypercube_in_line_rows(dimensions: List[int] = (2, 3, 4, 5, 6, 8, 10)) -> List[dict]:
    """Hypercube in a line: ours (2^(d-1)) vs Harper's optimum, ratio 1/ε_(d-1)."""
    rows = []
    for d in dimensions:
        optimal = harper_hypercube_in_line(d)
        if 2**d <= 2048:
            ours = embed(Hypercube(d), Line(2**d)).dilation()
        else:
            ours = 2 ** (d - 1)
        rows.append(
            {
                "instance": f"hypercube(2^{d}) -> line",
                "ours": ours,
                "known optimal": optimal,
                "ratio (= 1/ε)": round(ours / optimal, 3),
                "source": "[Har66]",
            }
        )
    return rows


def epsilon_rows(count: int = 16) -> List[dict]:
    """The Appendix ε_m values and the induced optimal/constructed ratio."""
    rows = []
    for m in range(count):
        value = epsilon_value(m)
        rows.append(
            {
                "m": m,
                "ε_m": f"{value.numerator}/{value.denominator}",
                "ε_m (float)": round(float(value), 5),
                "1/ε_m": round(float(1 / value), 5),
            }
        )
    return rows


def search_rows() -> List[dict]:
    """One row per ``optima``-suite pair: the optimizer vs its seeds.

    Derived from the survey engine's per-scenario evaluator under the fixed
    :data:`repro.optimize.SUITE_OPTIONS` configuration, so the golden
    fixture (``tests/golden/tab_optima.json``) pins the same records a
    ``repro survey --suite optima`` run produces — one source of truth for
    the CLI sweep and the regression test.
    """
    rows = []
    for scenario in scenarios_for_suite("optima"):
        record = evaluate_scenario(
            scenario, SurveyOptions(workers=1, with_congestion=True)
        )
        rows.append(
            {
                "guest": record.guest,
                "host": record.host,
                "status": record.status,
                "dilation": record.dilation,
                "avg dilation": (
                    round(record.average_dilation, 4)
                    if record.average_dilation is not None
                    else None
                ),
                "congestion": record.congestion,
                "search objective": record.search_objective,
                "search steps": record.search_steps,
                "improved": record.improved,
            }
        )
    return rows


@register("TAB-SEARCH", "Empirical optimality probe: search vs the constructions")
def search_table() -> ExperimentResult:
    result = ExperimentResult(
        "TAB-SEARCH", "Empirical optimality probe: search vs the constructions"
    )
    result.rows.extend(search_rows())
    improved = sum(1 for row in result.rows if row["improved"])
    result.notes.append(
        "search never found a better combined dilation+congestion embedding "
        "than a paper construction in its seed population; "
        f"{improved} pair(s) without a construction improved over the baselines"
    )
    return result


@register("TAB-OPTIMA", "Section 5 comparison against known optimal embeddings")
def optima_table() -> ExperimentResult:
    result = ExperimentResult("TAB-OPTIMA", "Section 5 comparison against known optimal embeddings")
    result.rows.extend(square_mesh_in_line_rows((3, 4, 5, 6)))
    result.rows.extend(square_torus_in_ring_rows((3, 4, 5, 6)))
    result.rows.extend(cube_mesh_in_line_rows((3, 4)))
    result.rows.extend(hypercube_in_line_rows((2, 3, 4, 5, 6, 8)))
    result.notes.append(
        "the (l,l)-mesh->line and (l,l)-torus->ring cases are truly optimal; the (l,l,l)-mesh->line "
        "case is within 4/3; the hypercube->line ratio 1/ε grows with d (Appendix)"
    )
    return result


@register("APP-EPS", "Appendix: the ε_m sequence")
def epsilon_table() -> ExperimentResult:
    result = ExperimentResult("APP-EPS", "Appendix: the ε_m sequence")
    result.rows.extend(epsilon_rows(16))
    result.notes.append("ε_0 = ε_1 = ε_2 = 1 and the sequence strictly decreases afterwards")
    harper_check = all(
        harper_hypercube_in_line(d) == epsilon_value(d - 1) * 2 ** (d - 1) for d in range(1, 16)
    )
    result.notes.append(
        f"identity Σ C(k,⌊k/2⌋) = ε_(d-1)·2^(d-1) verified for d = 1..15: {harper_check}"
    )
    return result
