"""Run the full experiment suite from the command line.

``python -m repro.experiments``                 prints every experiment as text
``python -m repro.experiments --markdown``      prints markdown (EXPERIMENTS.md body)
``python -m repro.experiments --only FIG-9 ...``  restricts to specific ids
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .registry import EXPERIMENTS, run_all, _ensure_loaded


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("--markdown", action="store_true", help="emit markdown sections")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument("--only", nargs="*", default=None, help="restrict to these experiment ids")
    args = parser.parse_args(list(argv) if argv is not None else None)

    _ensure_loaded()
    if args.list:
        for experiment_id, (title, _func) in EXPERIMENTS.items():
            print(f"{experiment_id:16s} {title}")
        return 0

    results = run_all(args.only)
    for result in results:
        if args.markdown:
            print(result.render_markdown())
        else:
            print(result.render())
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
