"""Capped exponential backoff with deterministic jitter, plus a breaker.

One retry policy for every recovery loop in the system: the survey runner's
per-shard retries, the service client's request retries and its
``wait_until_ready`` readiness probe all share :class:`BackoffPolicy`, so
"how do we wait between attempts" has exactly one answer (capped exponential
growth with full jitter — the classic AWS architecture-blog scheme) instead
of one hand-rolled loop per call site.

Jitter is drawn from :class:`~repro.utils.rng.SplitMix64`, the repo's one
PRNG, so a seeded chaos run replays not just the same fault schedule but
the same recovery delays.

:class:`CircuitBreaker` is the minimal three-state breaker (closed →
open → half-open) the service client puts in front of its retry loop: after
``failure_threshold`` consecutive failures the breaker opens and calls fail
fast for ``reset_timeout`` seconds; the first call after the timeout is the
half-open probe that closes the breaker again on success.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, Optional

from .rng import SplitMix64

__all__ = ["BackoffPolicy", "CircuitBreaker", "CircuitOpenError"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (so ``3`` means two retries).
    base_delay:
        Seconds before the first retry (the exponential's starting rung).
    max_delay:
        Cap on any single delay.
    factor:
        Exponential growth factor between rungs.
    jitter:
        Fraction of each rung drawn uniformly at random: the actual delay
        is ``rung * (1 - jitter) + rung * jitter * u`` with ``u ~ U[0, 1)``.
        ``0`` disables jitter (exact rungs, useful in tests); ``1`` is full
        jitter over ``(0, rung]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    factor: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: Optional[SplitMix64] = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based).

        ``attempt=0`` is the delay after the *first* failure.  Deterministic
        given ``rng``; without one the jitter midpoint is used (so callers
        that don't care about determinism still spread out).
        """
        rung = min(self.max_delay, self.base_delay * (self.factor**attempt))
        if self.jitter == 0.0:
            return rung
        fraction = rng.random() if rng is not None else 0.5
        return rung * (1.0 - self.jitter) + rung * self.jitter * fraction

    def delays(self, seed: int = 0) -> Iterator[float]:
        """The policy's full jittered delay schedule (``max_attempts - 1``
        entries), deterministic for a given ``seed``."""
        rng = SplitMix64(seed)
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt, rng)


class CircuitOpenError(RuntimeError):
    """Raised when a call is refused because the circuit breaker is open."""


class CircuitBreaker:
    """Minimal consecutive-failure circuit breaker (closed/open/half-open).

    Not thread-safe by design: the service client that owns one is itself
    single-threaded per instance (one connection, one breaker).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def before_call(self) -> None:
        """Gate a call: raises :class:`CircuitOpenError` while open."""
        if self.state == "open":
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            raise CircuitOpenError(
                f"circuit breaker is open after "
                f"{self._consecutive_failures} consecutive failures; "
                f"retry in {max(0.0, remaining):.2f}s"
            )

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._opened_at = self._clock()
