"""List and permutation operations used by the paper's constructions.

The paper (Section 2) fixes the following conventions, which the functions in
this module implement verbatim:

* ``(x_1, ..., x_p) ∘ (y_1, ..., y_q)`` denotes list concatenation
  (:func:`concat`).
* Given a permutation ``π : [k]+ -> [k]+`` and a list ``(i_1, ..., i_k)``,
  ``π((i_1, ..., i_k))`` denotes ``(i_{π(1)}, ..., i_{π(k)})``
  (:func:`apply_permutation`).  Permutations are represented 0-based in code:
  a permutation is a tuple ``perm`` of length ``k`` with
  ``apply_permutation(perm, xs)[j] == xs[perm[j]]``.
* ``Π A`` denotes the product of the elements of a list (:func:`product`).

The key derived operation is :func:`find_permutation`: given two lists that
are permutations of each other (as multisets), produce one explicit
permutation ``perm`` with ``apply_permutation(perm, source) == target``.  The
paper repeatedly asserts "let π be a permutation such that π(V) = M"; this
function constructs such a π.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "concat",
    "product",
    "apply_permutation",
    "invert_permutation",
    "identity_permutation",
    "compose_permutations",
    "find_permutation",
    "is_permutation_of",
]

T = TypeVar("T")

Permutation = Tuple[int, ...]


def concat(*lists: Sequence[T]) -> Tuple[T, ...]:
    """Concatenate lists: the paper's ``∘`` operator on lists."""
    out: list[T] = []
    for xs in lists:
        out.extend(xs)
    return tuple(out)


def product(values: Iterable[int]) -> int:
    """Product of a list of integers (the paper's ``Π A``)."""
    return math.prod(values)


def _validate_permutation(perm: Sequence[int]) -> None:
    k = len(perm)
    if sorted(perm) != list(range(k)):
        raise ValueError(f"{perm!r} is not a permutation of 0..{k - 1}")


def apply_permutation(perm: Sequence[int], values: Sequence[T]) -> Tuple[T, ...]:
    """Apply a permutation to a list: ``result[j] = values[perm[j]]``.

    This is the paper's ``π((i_1, ..., i_k)) = (i_{π(1)}, ..., i_{π(k)})``
    with 0-based indices.
    """
    if len(perm) != len(values):
        raise ValueError(
            f"permutation length {len(perm)} does not match list length {len(values)}"
        )
    _validate_permutation(perm)
    return tuple(values[p] for p in perm)


def invert_permutation(perm: Sequence[int]) -> Permutation:
    """Return the inverse permutation ``perm^{-1}``.

    ``apply_permutation(invert_permutation(perm), apply_permutation(perm, xs)) == xs``.
    """
    _validate_permutation(perm)
    inverse = [0] * len(perm)
    for position, source_index in enumerate(perm):
        inverse[source_index] = position
    return tuple(inverse)


def identity_permutation(k: int) -> Permutation:
    """The identity permutation on ``k`` elements."""
    if k < 0:
        raise ValueError("permutation size must be non-negative")
    return tuple(range(k))


def compose_permutations(outer: Sequence[int], inner: Sequence[int]) -> Permutation:
    """Compose permutations so that applying the result equals applying
    ``inner`` first and then ``outer``.

    Formally ``apply_permutation(compose_permutations(outer, inner), xs)
    == apply_permutation(outer, apply_permutation(inner, xs))``.
    """
    if len(outer) != len(inner):
        raise ValueError("permutations must have the same length")
    _validate_permutation(outer)
    _validate_permutation(inner)
    return tuple(inner[o] for o in outer)


def is_permutation_of(xs: Sequence[T], ys: Sequence[T]) -> bool:
    """True when the two lists are equal as multisets."""
    if len(xs) != len(ys):
        return False
    counts: defaultdict[T, int] = defaultdict(int)
    for x in xs:
        counts[x] += 1
    for y in ys:
        counts[y] -= 1
        if counts[y] < 0:
            return False
    return True


def find_permutation(source: Sequence[T], target: Sequence[T]) -> Optional[Permutation]:
    """Find a permutation ``perm`` with ``apply_permutation(perm, source) == target``.

    Returns ``None`` when the lists are not permutations of each other.
    When several permutations exist (repeated values), the lexicographically
    smallest assignment of source positions is returned, which makes the
    result deterministic.
    """
    if len(source) != len(target):
        return None
    positions: defaultdict[T, list[int]] = defaultdict(list)
    for index in range(len(source) - 1, -1, -1):
        positions[source[index]].append(index)
    perm: list[int] = []
    for value in target:
        stack = positions.get(value)
        if not stack:
            return None
        perm.append(stack.pop())
    return tuple(perm)
