"""Atomic file replacement — torn-write protection for every artifact writer.

Survey shard files, merged result documents and construction-cache pickles
are all written by long-running processes that can be killed at any byte
(Ctrl-C mid-sweep, OOM, a pre-empted CI runner).  Writing in place turns
such a kill into a *torn file*: a shard that silently fails the resume
check and costs a full recompute, or a cache pickle that cold-starts the
next invocation.

:func:`atomic_write` closes that window.  The payload is written to a
temporary file **in the same directory** as the destination (same
filesystem, so the final rename cannot degrade to a copy) and moved over
the destination with :func:`os.replace` — atomic on POSIX and Windows —
only after the handle has been flushed and closed.  A crash at any earlier
point leaves the previous file intact and at worst a stray ``*.tmp``
sibling, never a half-written artifact.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Optional, Union

__all__ = ["atomic_write"]

PathLike = Union[str, Path]


@contextmanager
def atomic_write(
    path: PathLike,
    mode: str = "w",
    encoding: Optional[str] = "utf-8",
    newline: Optional[str] = None,
) -> Iterator[IO]:
    """Open a temp file that replaces ``path`` atomically on clean exit.

    ``mode`` is ``"w"`` for text or ``"wb"`` for binary (``encoding`` and
    ``newline`` apply to text mode only).  Parent directories are created.
    If the body raises, the temp file is removed and the destination is
    left exactly as it was.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write mode must be 'w' or 'wb', got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        if mode == "wb":
            handle = os.fdopen(descriptor, mode)
        else:
            handle = os.fdopen(descriptor, mode, encoding=encoding, newline=newline)
        try:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
