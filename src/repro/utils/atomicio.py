"""Atomic file replacement — torn-write protection for every artifact writer.

Survey shard files, merged result documents and construction-cache pickles
are all written by long-running processes that can be killed at any byte
(Ctrl-C mid-sweep, OOM, a pre-empted CI runner).  Writing in place turns
such a kill into a *torn file*: a shard that silently fails the resume
check and costs a full recompute, or a cache pickle that cold-starts the
next invocation.

:func:`atomic_write` closes that window.  The payload is written to a
temporary file **in the same directory** as the destination (same
filesystem, so the final rename cannot degrade to a copy) and moved over
the destination with :func:`os.replace` — atomic on POSIX and Windows —
only after the handle has been flushed and closed.  A crash at any earlier
point leaves the previous file intact and at worst a stray ``*.tmp``
sibling, never a half-written artifact.  After the replace the containing
*directory* is fsynced too: the rename itself lives in the directory
inode, and a power cut right after a snapshot could otherwise silently
undo it (the classic "rename then lose the rename" crash window).

The write path carries the chaos plane's ``store.write`` injection point:
under an active :class:`~repro.runtime.chaos.ChaosPlan`, a ``torn_write``
fault aborts the write after the payload hit the temp file but *before*
the rename — exactly the crash the machinery defends against — and a
``slow_io`` fault stretches the write.  Both are no-ops without a plan.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Optional, Union

__all__ = ["atomic_write"]

PathLike = Union[str, Path]


@contextmanager
def atomic_write(
    path: PathLike,
    mode: str = "w",
    encoding: Optional[str] = "utf-8",
    newline: Optional[str] = None,
) -> Iterator[IO]:
    """Open a temp file that replaces ``path`` atomically on clean exit.

    ``mode`` is ``"w"`` for text or ``"wb"`` for binary (``encoding`` and
    ``newline`` apply to text mode only).  Parent directories are created.
    If the body raises, the temp file is removed and the destination is
    left exactly as it was.
    """
    # Imported here, not at module level: the runtime's cache persists
    # through this writer, so a top-level import would be circular.
    from ..runtime.chaos import inject, raise_fault

    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write mode must be 'w' or 'wb', got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        if mode == "wb":
            handle = os.fdopen(descriptor, mode)
        else:
            handle = os.fdopen(descriptor, mode, encoding=encoding, newline=newline)
        try:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            handle.close()
        # The payload is safely in the temp file; a torn_write fault models
        # the process dying in exactly this window — before the rename.
        raise_fault(
            inject("store.write", kinds=("torn_write", "slow_io")), "store.write"
        )
        os.replace(temp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to disk: fsync the directory that recorded it.

    ``os.replace`` makes the swap atomic against concurrent *readers*, but
    the new directory entry still lives in the page cache until the
    directory inode is synced — a crash in that window can resurrect the
    old file with the new one already gone.  Best-effort: directories are
    not fsync-able on some platforms (notably Windows), where the historic
    behaviour is kept.
    """
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)
