"""Small generic utilities shared across the library.

Submodules
----------
``listops``
    Operations on lists/tuples used throughout the paper's constructions:
    concatenation, applying and inverting permutations, finding a permutation
    between two multisets.
``intmath``
    Integer arithmetic helpers: exact integer roots, divisor enumeration,
    prime factorization, and the property proved in Lemma 50 of the paper.
``validation``
    Argument validation helpers that raise the library's exceptions.
``atomicio``
    Atomic file replacement (same-directory temp file + ``os.replace``) so
    killed writers never leave torn artifacts.
"""

from .atomicio import atomic_write
from .listops import (
    apply_permutation,
    compose_permutations,
    concat,
    find_permutation,
    identity_permutation,
    invert_permutation,
    is_permutation_of,
    product,
)
from .intmath import (
    divisors,
    exact_nth_root,
    factorizations_into_parts,
    gcd,
    integer_nth_root,
    is_perfect_power,
    is_power_of,
    prime_factorization,
)

__all__ = [
    "atomic_write",
    "apply_permutation",
    "compose_permutations",
    "concat",
    "find_permutation",
    "identity_permutation",
    "invert_permutation",
    "is_permutation_of",
    "product",
    "divisors",
    "exact_nth_root",
    "factorizations_into_parts",
    "gcd",
    "integer_nth_root",
    "is_perfect_power",
    "is_power_of",
    "prime_factorization",
]
