"""Deterministic pure-Python PRNG shared across subsystems.

The optimizer's differential contract (array engine vs loop reference,
bit-for-bit under a fixed seed) rules out both ``random.Random`` (whose
Mersenne state is awkward to reason about across draws of different kinds)
and NumPy generators (unavailable to the loop engine).  SplitMix64 is a
64-bit mixing PRNG small enough to restate exactly: both engines share one
instance driven from the *shared* search driver, so the stream of move
parameters and acceptance draws is identical by construction.

The chaos plane (:mod:`repro.runtime.chaos`) and the retry/backoff policy
(:mod:`repro.utils.backoff`) reuse the same mixer, so a seeded fault
schedule and its jittered recovery delays replay identically run to run.

Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
generators" (OOPSLA 2014) — the same mixer Java's ``SplittableRandom`` and
NumPy's ``SeedSequence`` build on.
"""

from __future__ import annotations

__all__ = ["SplitMix64", "splitmix64_mix", "stable_text_hash"]

_MASK64 = (1 << 64) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def splitmix64_mix(value: int) -> int:
    """One stateless SplitMix64 finalizer pass over a 64-bit word.

    Used wherever a *keyed* deterministic decision is needed (the chaos
    plane hashes ``(seed, site, key)`` into one word and mixes it) without
    maintaining stream state.
    """
    z = (value + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def stable_text_hash(text: str) -> int:
    """FNV-1a 64-bit hash of ``text`` — stable across processes and runs.

    Python's builtin ``hash`` of strings is salted per process
    (``PYTHONHASHSEED``), so it cannot key a fault schedule that must
    replay identically in every survey worker.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 0x100000001B3) & _MASK64
    return value


class SplitMix64:
    """SplitMix64: 64-bit state, one add + two xor-shift-multiply mixes."""

    __slots__ = ("_state",)

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """The next raw 64-bit output word."""
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """A draw from ``range(n)``.

        Plain modulo reduction: the ~2**-64 bias is irrelevant for a search
        heuristic, and avoiding rejection sampling keeps the number of raw
        draws per move fixed — one — which makes the stream easy to audit.
        """
        if n <= 0:
            raise ValueError("randrange() bound must be positive")
        return self.next_u64() % n

    def random(self) -> float:
        """A float in ``[0, 1)`` with 53 random bits (the IEEE mantissa)."""
        return (self.next_u64() >> 11) * (2.0**-53)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates using :meth:`randrange` (deterministic)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]
