"""Integer arithmetic helpers.

These back the shape analysis done in Sections 4 and 5 of the paper:

* finding *expansion factors* requires enumerating ordered factorizations of
  a dimension length into parts greater than 1
  (:func:`factorizations_into_parts`, :func:`divisors`);
* the square-graph theorems (Theorems 51 and 53) rely on Lemma 50 — if
  ``x^(u/v)`` is an integer for coprime ``u`` and ``v`` then ``x^(1/v)`` is an
  integer — which in code amounts to exact integer-root extraction
  (:func:`exact_nth_root`) and a direct check (:func:`lemma50_root`);
* prime factorization supports both of the above.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "gcd",
    "prime_factorization",
    "divisors",
    "integer_nth_root",
    "exact_nth_root",
    "is_perfect_power",
    "is_power_of",
    "factorizations_into_parts",
    "lemma50_root",
]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (non-negative)."""
    return math.gcd(a, b)


@lru_cache(maxsize=4096)
def prime_factorization(n: int) -> Tuple[Tuple[int, int], ...]:
    """Prime factorization of ``n >= 1`` as a tuple of ``(prime, exponent)`` pairs.

    This is the "standard form" the paper cites as property (*) in Section 5.
    """
    if n < 1:
        raise ValueError("prime_factorization requires a positive integer")
    factors: List[Tuple[int, int]] = []
    remaining = n
    candidate = 2
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            exponent = 0
            while remaining % candidate == 0:
                remaining //= candidate
                exponent += 1
            factors.append((candidate, exponent))
        candidate += 1 if candidate == 2 else 2
    if remaining > 1:
        factors.append((remaining, 1))
    return tuple(factors)


def divisors(n: int, *, proper: bool = False, exclude_one: bool = False) -> List[int]:
    """Sorted divisors of ``n``.

    Parameters
    ----------
    proper:
        Exclude ``n`` itself.
    exclude_one:
        Exclude 1 (useful when enumerating factor components which must be
        greater than 1 per Definitions 30 and 41).
    """
    if n < 1:
        raise ValueError("divisors requires a positive integer")
    result = {1}
    for prime, exponent in prime_factorization(n):
        result = {d * prime**e for d in result for e in range(exponent + 1)}
    values = sorted(result)
    if proper:
        values = [d for d in values if d != n]
    if exclude_one:
        values = [d for d in values if d != 1]
    return values


def integer_nth_root(value: int, n: int) -> int:
    """Floor of the ``n``-th root of a non-negative integer."""
    if n < 1:
        raise ValueError("root degree must be >= 1")
    if value < 0:
        raise ValueError("value must be non-negative")
    if value in (0, 1) or n == 1:
        return value
    # Newton-style search seeded with the float estimate, corrected exactly.
    root = int(round(value ** (1.0 / n)))
    root = max(root, 1)
    while root**n > value:
        root -= 1
    while (root + 1) ** n <= value:
        root += 1
    return root


def exact_nth_root(value: int, n: int) -> Optional[int]:
    """Return ``r`` with ``r**n == value`` if such an integer exists, else ``None``."""
    root = integer_nth_root(value, n)
    return root if root**n == value else None


def is_perfect_power(value: int, n: int) -> bool:
    """True when ``value`` is an exact ``n``-th power of an integer."""
    return exact_nth_root(value, n) is not None


def is_power_of(value: int, base: int) -> Optional[int]:
    """If ``value == base**k`` for an integer ``k >= 0``, return ``k``; else ``None``."""
    if base < 2:
        raise ValueError("base must be >= 2")
    if value < 1:
        return None
    exponent = 0
    remaining = value
    while remaining % base == 0:
        remaining //= base
        exponent += 1
    return exponent if remaining == 1 else None


def lemma50_root(x: int, u: int, v: int) -> Optional[int]:
    """Lemma 50 of the paper, constructively.

    Let ``x > 1`` and let ``u`` and ``v`` be coprime positive integers.  If
    ``x**(u/v)`` is an integer then ``x**(1/v)`` is an integer; this function
    returns that integer ``x**(1/v)`` when the premise holds and ``None``
    otherwise (i.e. when ``x**u`` is not a perfect ``v``-th power).
    """
    if x <= 1:
        raise ValueError("Lemma 50 requires x > 1")
    if u < 1 or v < 1:
        raise ValueError("u and v must be positive")
    if math.gcd(u, v) != 1:
        raise ValueError("u and v must be relatively prime")
    if exact_nth_root(x**u, v) is None:
        return None
    return exact_nth_root(x, v)


def factorizations_into_parts(
    n: int,
    *,
    num_parts: Optional[int] = None,
    min_part: int = 2,
    max_parts: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Enumerate ordered factorizations of ``n`` into parts ``>= min_part``.

    Every yielded tuple ``(p_1, ..., p_k)`` satisfies ``p_1 * ... * p_k == n``
    and ``p_i >= min_part``.  The enumeration yields *ordered* factorizations
    (the order of parts matters), which mirrors the paper's expansion factors
    where ``V_i`` is an ordered list.  Duplicate orderings of the same
    multiset are all produced.

    Parameters
    ----------
    num_parts:
        If given, only factorizations with exactly this many parts are
        yielded (``num_parts == 0`` yields the empty factorization only when
        ``n == 1``).
    max_parts:
        If given, factorizations with more parts are pruned.
    """
    if n < 1:
        raise ValueError("n must be positive")

    def recurse(remaining: int, parts: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if num_parts is not None and len(parts) > num_parts:
            return
        if max_parts is not None and len(parts) > max_parts:
            return
        if remaining == 1:
            if num_parts is None or len(parts) == num_parts:
                yield parts
            # A part could still be appended only if min_part == 1, which we
            # disallow for factor searches (parts must exceed 1).
            return
        for part in divisors(remaining):
            if part < min_part:
                continue
            yield from recurse(remaining // part, parts + (part,))

    if n == 1:
        if num_parts in (None, 0):
            yield ()
        return
    yield from recurse(n, ())
