"""Command-line interface.

Four subcommands:

``embed``
    Build an embedding between two graphs given as ``kind:shape`` strings
    (for example ``torus:4,6``), print its strategy, predicted and measured
    dilation, and optionally the congestion and a picture of the mapping.

``figure``
    Regenerate one of the paper's worked figures (``fig4``, ``fig9``,
    ``fig10``, ``fig11``, ``fig12``) as text.

``simulate``
    Map a guest task graph onto a host network with the paper's embedding
    and with the baselines, and report the simulated communication time of
    one phase of the chosen traffic pattern (neighbour exchange, transpose
    or all-to-all within groups).

``survey``
    Run a parallel embedding survey — every same-size guest/host shape pair
    up to a node budget, or a named suite mirroring the paper's tables, or
    the ``simulation`` suite that sweeps strategy × traffic pairs through
    the store-and-forward simulator — and write the results to JSON/CSV.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.metrics import evaluate_embedding
from .analysis.report import format_table
from .baselines import random_embedding
from .core import (
    ExpansionFactor,
    embed,
    embed_lowering_general,
    f_value,
    g_value,
    h_value,
)
from .analysis.fault_tolerance import repair_embedding
from .graphs.base import CartesianGraph, Mesh, make_graph
from .graphs.faults import FaultSpec
from .netsim import (
    CostModel,
    HostNetwork,
    LinkWeightSpec,
    simulate_phase,
    traffic_pattern,
    traffic_pattern_names,
)
from .numbering.graycode import natural_sequence
from .runtime import ConstructionCache, build_strategy, strategy_names, use_context
from .survey import (
    SurveyOptions,
    run_survey,
    scenarios_for_suite,
    suite_names,
    write_records,
)
from .types import GraphKind
from .viz.ascii import render_embedding_grid, render_sequence_table

__all__ = ["main", "parse_graph"]


def parse_graph(spec: str) -> CartesianGraph:
    """Parse ``kind:shape`` strings such as ``torus:4,6`` or ``mesh:2,2,2,3``.

    The 1-dimensional and hypercube conveniences of the paper are accepted as
    well: ``ring:<n>`` (a 1-D torus), ``line:<n>`` (a 1-D mesh) and
    ``hypercube:<d>`` (shape ``(2, ..., 2)`` with ``d`` dimensions).
    """
    try:
        kind_text, shape_text = spec.split(":", 1)
        kind_text = kind_text.strip().lower()
        shape = tuple(int(part) for part in shape_text.split(",") if part.strip())
        if kind_text == "ring":
            (size,) = shape
            return make_graph(GraphKind.TORUS, (size,))
        if kind_text == "line":
            (size,) = shape
            return make_graph(GraphKind.MESH, (size,))
        if kind_text == "hypercube":
            (dimension,) = shape
            return make_graph(GraphKind.TORUS, (2,) * dimension)
        return make_graph(GraphKind(kind_text), shape)
    except Exception as error:
        raise argparse.ArgumentTypeError(
            f"could not parse graph spec {spec!r}: expected e.g. 'torus:4,6' ({error})"
        ) from error


def _load_cache(args: argparse.Namespace):
    """The construction cache named by ``--cache``, or ``None``."""
    if getattr(args, "cache", None) is None:
        return None
    return ConstructionCache.load(args.cache)


def _save_cache(args: argparse.Namespace, cache) -> None:
    """Persist a ``--cache`` store for the next invocation."""
    if cache is None:
        return
    cache.save(args.cache)
    print(
        f"construction cache: {cache.construction_count} constructions "
        f"({cache.hits} hits this run) -> {args.cache}"
    )


def _cmd_embed(args: argparse.Namespace) -> int:
    guest = parse_graph(args.guest)
    host = parse_graph(args.host)
    with use_context(backend=args.method):
        embedding = embed(guest, host)
        report = evaluate_embedding(embedding, with_congestion=args.congestion)
    print(format_table([report.as_row()], title="Embedding report"))
    if args.grid and host.dimension <= 3:
        print()
        print(render_embedding_grid(embedding, title=f"Guest ranks inside {host!r}:"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name == "fig4":
        base = (4, 2, 3)
        naturals = natural_sequence(base)
        print(
            render_sequence_table(
                24,
                {"P (natural)": lambda x: naturals[x], "P' (= f_L)": lambda x: f_value(base, x)},
                title="Figure 4: sequences P and P' for L = (4, 2, 3)",
            )
        )
    elif name == "fig9":
        base = (4, 2, 3)
        print(
            render_sequence_table(
                24,
                {
                    "f_L": lambda x: f_value(base, x),
                    "g_L": lambda x: g_value(base, x),
                    "h_L": lambda x: h_value(base, x),
                },
                title="Figure 9: embedding functions f, g, h for L = (4, 2, 3)",
            )
        )
    elif name == "fig10":
        host = Mesh((4, 2, 3))
        from .core.basic import line_in_graph_embedding, ring_in_graph_embedding

        print(render_embedding_grid(line_in_graph_embedding(host), title="Figure 10(d): line via f"))
        print()
        print(render_embedding_grid(ring_in_graph_embedding(host), title="Figure 10(f): ring via h"))
    elif name == "fig11":
        factor = ExpansionFactor(((2, 2), (2, 3)))
        from .core.increasing import F_value, G_value, H_value

        guest_base = (4, 6)
        naturals = natural_sequence(guest_base)
        print(
            render_sequence_table(
                24,
                {
                    "F_V": lambda x: F_value(factor, naturals[x]),
                    "G_V": lambda x: G_value(factor, naturals[x]),
                    "H_V": lambda x: H_value(factor, naturals[x]),
                },
                title="Figure 11: F_V, G_V, H_V for L = (4, 6), V = ((2,2),(2,3))",
            )
        )
    elif name == "fig12":
        guest = Mesh((3, 3, 6))
        host = Mesh((6, 9))
        embedding = embed_lowering_general(guest, host)
        print(render_embedding_grid(embedding, title="Figure 12: (3,3,6)-mesh in a (6,9)-mesh"))
        print(f"dilation = {embedding.dilation()} (paper: 3)")
    else:
        print(f"unknown figure {args.name!r}; choose from fig4, fig9, fig10, fig11, fig12", file=sys.stderr)
        return 2
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    guest = parse_graph(args.guest)
    host = parse_graph(args.host)
    link_weights = (
        LinkWeightSpec.from_token(args.link_weights) if args.link_weights else None
    )
    faults = FaultSpec.from_token(args.faults).apply(host) if args.faults else None
    network = HostNetwork(
        host,
        CostModel(alpha=args.alpha, bandwidth=args.bandwidth),
        link_weights=link_weights,
    )
    cache = _load_cache(args)
    with use_context(backend=args.method, cache=cache):
        traffic = traffic_pattern(args.traffic, guest, message_size=args.message_size)
        rows = []
        for name in strategy_names():
            if name == "random" and args.seed != 0:
                # A non-default seed is a one-off variant: build it directly
                # so the memo cache only ever holds the canonical seed-0 entry.
                embedding = random_embedding(guest, host, seed=args.seed)
            else:
                embedding = build_strategy(name, guest, host)
            if faults is not None:
                embedding = repair_embedding(embedding, faults)
            result = simulate_phase(network, embedding, traffic, faults=faults)
            row = {"strategy": name, "dilation": embedding.dilation()}
            row.update(result.as_row())
            rows.append(row)
    title = f"{traffic.name} of {guest!r} on {host!r}"
    if faults is not None:
        title += f" with faults {faults.spec.token}"
    print(format_table(rows, title=title))
    _save_cache(args, cache)
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    if args.smoke:
        # Deterministic sequential CI mode: the tiny `smoke` suite by
        # default, or the explicitly chosen suite run on one worker (e.g.
        # `repro survey --suite simulation --smoke`).
        suite = args.suite if args.suite != "exhaustive" else "smoke"
        workers: Optional[int] = 1
    else:
        suite = args.suite
        workers = args.workers
    scenarios = scenarios_for_suite(suite, max_nodes=args.max_nodes)
    if args.limit is not None:
        scenarios = scenarios[: args.limit]
    if not scenarios:
        print("no scenarios selected (raise --max-nodes?)", file=sys.stderr)
        return 2
    options = SurveyOptions(
        workers=workers,
        shard_size=args.shard_size,
        shard_dir=args.shard_dir,
        with_congestion=args.congestion,
        resume=not args.no_resume,
    )
    cache = _load_cache(args)
    with use_context(backend=args.method, cache=cache, batch=not args.no_batch):
        report = run_survey(scenarios, options)
    _save_cache(args, cache)
    if report.reused_shard_indices:
        print(
            f"resumed {len(report.reused_shard_indices)} finished shard(s) "
            f"from {args.shard_dir}"
        )
    if args.output:
        path = write_records(report.records, args.output)
        print(f"wrote {len(report.records)} records to {path}")
    rows = report.summary_rows()
    if rows:
        print(format_table(rows, title=f"Survey '{suite}': measured strategies"))
    print(
        f"{len(report.records)} pairs "
        f"({len(report.ok)} measured, {len(report.unsupported)} unsupported, "
        f"{len(report.failed)} failed) in {report.elapsed_seconds:.2f}s "
        f"on {report.workers} worker(s)"
    )
    if report.cache_entries:
        print(f"construction cache: {report.cache_entries} memoized constructions")
    if report.failed:
        for record in report.failed[:5]:
            print(f"  FAILED {record.scenario_id}: {record.error}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="torus-mesh-embed",
        description="Embeddings among toruses and meshes (Ma & Tao, ICPP 1987) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_embed = subparsers.add_parser("embed", help="embed a guest graph in a host graph")
    p_embed.add_argument("--guest", required=True, help="guest graph, e.g. torus:4,6")
    p_embed.add_argument("--host", required=True, help="host graph, e.g. mesh:2,2,2,3")
    p_embed.add_argument("--congestion", action="store_true", help="also measure edge congestion")
    p_embed.add_argument("--grid", action="store_true", help="print the mapping as a grid")
    p_embed.add_argument(
        "--method",
        default="auto",
        choices=("auto", "array", "loop"),
        help="runtime backend (array kernels vs per-node loop reference)",
    )
    p_embed.set_defaults(func=_cmd_embed)

    p_figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    p_figure.add_argument("name", help="fig4, fig9, fig10, fig11 or fig12")
    p_figure.set_defaults(func=_cmd_figure)

    p_sim = subparsers.add_parser("simulate", help="simulate a communication phase")
    p_sim.add_argument("--guest", required=True, help="guest task graph, e.g. torus:8,8")
    p_sim.add_argument("--host", required=True, help="host network, e.g. mesh:4,4,4")
    p_sim.add_argument(
        "--traffic",
        default="neighbor-exchange",
        choices=traffic_pattern_names(),
        help="traffic pattern of the simulated phase",
    )
    p_sim.add_argument("--alpha", type=float, default=1.0, help="per-hop latency")
    p_sim.add_argument("--bandwidth", type=float, default=1.0, help="link bandwidth")
    p_sim.add_argument("--message-size", type=float, default=1.0, help="message size")
    p_sim.add_argument("--seed", type=int, default=0, help="seed for the random baseline")
    p_sim.add_argument(
        "--faults",
        default=None,
        help="degrade the host before simulating: a fault token like n1l2s5 "
        "(1 dead node, 2 dead links, seed 5); cut routes take BFS detours",
    )
    p_sim.add_argument(
        "--link-weights",
        default=None,
        help="heterogeneous link latencies: kind[:scale[:seed]] with kind "
        "uniform, dimension or random (e.g. random:0.5:3)",
    )
    p_sim.add_argument(
        "--method",
        default="auto",
        choices=("auto", "array", "loop"),
        help="runtime backend (array kernels vs per-message loop reference)",
    )
    p_sim.add_argument(
        "--cache",
        default=None,
        help="construction-cache file; loaded before and saved after the run, "
        "so repeated invocations skip re-construction",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_survey = subparsers.add_parser(
        "survey", help="run a parallel embedding survey over many shape pairs"
    )
    p_survey.add_argument(
        "--suite",
        default="exhaustive",
        choices=suite_names(),
        help="scenario suite (default: exhaustive same-size sweep)",
    )
    p_survey.add_argument(
        "--max-nodes",
        type=int,
        default=48,
        help="node budget for shape enumeration (default 48)",
    )
    p_survey.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = sequential)",
    )
    p_survey.add_argument(
        "--shard-size", type=int, default=64, help="scenarios per worker shard"
    )
    p_survey.add_argument(
        "--shard-dir",
        default=None,
        help="write per-shard JSON files here (finished shards are reused on rerun)",
    )
    p_survey.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every shard even when --shard-dir holds finished shard files",
    )
    p_survey.add_argument(
        "--output",
        default="survey_results.json",
        help="results file (.json or .csv); empty string disables writing",
    )
    p_survey.add_argument(
        "--limit", type=int, default=None, help="evaluate only the first N scenarios"
    )
    p_survey.add_argument(
        "--congestion", action="store_true", help="also measure edge congestion"
    )
    p_survey.add_argument(
        "--no-batch",
        action="store_true",
        help="evaluate scenarios one at a time (the cross-checked reference) "
        "instead of the batched stacked-kernel path",
    )
    p_survey.add_argument(
        "--method",
        default="auto",
        choices=("auto", "array", "loop"),
        help="runtime backend (vectorized array path vs per-node loop reference)",
    )
    p_survey.add_argument(
        "--cache",
        default=None,
        help="construction-cache file; loaded before and saved after the run, "
        "so repeated surveys skip re-construction",
    )
    p_survey.add_argument(
        "--smoke",
        action="store_true",
        help="tiny deterministic run (suite 'smoke', sequential) for CI",
    )
    p_survey.set_defaults(func=_cmd_survey)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
