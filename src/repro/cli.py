"""Command-line interface.

Subcommands:

``embed``
    Build an embedding between two graphs given as ``kind:shape`` strings
    (for example ``torus:4,6``), print its strategy, predicted and measured
    dilation, and optionally the congestion and a picture of the mapping.

``figure``
    Regenerate one of the paper's worked figures (``fig4``, ``fig9``,
    ``fig10``, ``fig11``, ``fig12``) as text.

``simulate``
    Map a guest task graph onto a host network with the paper's embedding
    and with the baselines, and report the simulated communication time of
    one phase of the chosen traffic pattern (neighbour exchange, transpose
    or all-to-all within groups).

``survey``
    Run a parallel embedding survey — every same-size guest/host shape pair
    up to a node budget, or a named suite mirroring the paper's tables, or
    the ``simulation`` suite that sweeps strategy × traffic pairs through
    the store-and-forward simulator — and write the results to JSON/CSV.

``optimize``
    Search for a low-cost embedding of one pair with the population-based
    optimizer (:mod:`repro.optimize`): seeded from the paper's construction
    and the baselines, scored generation-by-generation by the stacked batch
    kernels, persisting the best embedding found through ``--cache``.

``serve``
    Run the long-lived embedding service: one warm construction cache and
    resident graph arrays, answering embed/simulate queries over HTTP with
    async request coalescing (see :mod:`repro.service`).

``invoke``
    Query a running ``repro serve`` daemon — one embed/simulate request, or
    the ``/stats`` counters — through the thin client SDK.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Optional, Sequence

from .analysis.metrics import evaluate_embedding
from .analysis.report import format_table
from .baselines import random_embedding
from .core import (
    ExpansionFactor,
    embed,
    embed_lowering_general,
    f_value,
    g_value,
    h_value,
)
from .analysis.fault_tolerance import repair_embedding
from .exceptions import UnsupportedEmbeddingError
from .graphs.base import CartesianGraph, Mesh, make_graph
from .graphs.faults import FaultSpec
from .netsim import (
    CostModel,
    HostNetwork,
    LinkWeightSpec,
    simulate_phase,
    traffic_pattern,
    traffic_pattern_names,
)
from .numbering.graycode import natural_sequence
from .runtime import (
    BACKENDS,
    ConstructionCache,
    build_strategy,
    strategy_names,
    use_context,
)
from .survey import (
    SurveyOptions,
    run_survey,
    scenarios_for_suite,
    suite_names,
    write_records,
)
from .types import GraphKind
from .viz.ascii import render_embedding_grid, render_sequence_table

__all__ = ["main", "parse_graph"]


def parse_graph(spec: str) -> CartesianGraph:
    """Parse ``kind:shape`` strings such as ``torus:4,6`` or ``mesh:2,2,2,3``.

    The 1-dimensional and hypercube conveniences of the paper are accepted as
    well: ``ring:<n>`` (a 1-D torus), ``line:<n>`` (a 1-D mesh) and
    ``hypercube:<d>`` (shape ``(2, ..., 2)`` with ``d`` dimensions).  The
    parse itself is the service protocol's (one grammar for CLI and wire).
    """
    from .service.protocol import ProtocolError, parse_graph_spec

    try:
        kind, shape = parse_graph_spec(spec)
        return make_graph(GraphKind(kind), shape)
    except Exception as error:
        message = (
            str(error)
            if isinstance(error, ProtocolError)
            else f"could not parse graph spec {spec!r}: expected e.g. 'torus:4,6' ({error})"
        )
        raise argparse.ArgumentTypeError(message) from error


def _load_cache(args: argparse.Namespace):
    """The construction cache named by ``--cache``, or ``None``."""
    if getattr(args, "cache", None) is None:
        return None
    return ConstructionCache.load(args.cache)


def _save_cache(args: argparse.Namespace, cache) -> None:
    """Persist a ``--cache`` store for the next invocation."""
    if cache is None:
        return
    cache.save(args.cache)
    optima = f", {cache.optimum_count} optima" if cache.optimum_count else ""
    print(
        f"construction cache: {cache.construction_count} constructions"
        f"{optima} ({cache.hits} hits this run) -> {args.cache}"
    )


def _package_version() -> str:
    """The installed distribution's version, or the source tree's fallback.

    ``importlib.metadata`` answers for pip-installed environments; a source
    checkout run via ``PYTHONPATH=src`` has no distribution metadata, so the
    package's own ``__version__`` is the fallback.
    """
    try:
        from importlib.metadata import version

        return version("repro-torus-mesh-embeddings")
    except Exception:
        from . import __version__

        return __version__


def _cmd_embed(args: argparse.Namespace) -> int:
    guest = parse_graph(args.guest)
    host = parse_graph(args.host)
    with use_context(backend=args.method):
        embedding = embed(guest, host)
        report = evaluate_embedding(embedding, with_congestion=args.congestion)
    print(format_table([report.as_row()], title="Embedding report"))
    if args.grid and host.dimension <= 3:
        print()
        print(render_embedding_grid(embedding, title=f"Guest ranks inside {host!r}:"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name == "fig4":
        base = (4, 2, 3)
        naturals = natural_sequence(base)
        print(
            render_sequence_table(
                24,
                {"P (natural)": lambda x: naturals[x], "P' (= f_L)": lambda x: f_value(base, x)},
                title="Figure 4: sequences P and P' for L = (4, 2, 3)",
            )
        )
    elif name == "fig9":
        base = (4, 2, 3)
        print(
            render_sequence_table(
                24,
                {
                    "f_L": lambda x: f_value(base, x),
                    "g_L": lambda x: g_value(base, x),
                    "h_L": lambda x: h_value(base, x),
                },
                title="Figure 9: embedding functions f, g, h for L = (4, 2, 3)",
            )
        )
    elif name == "fig10":
        host = Mesh((4, 2, 3))
        from .core.basic import line_in_graph_embedding, ring_in_graph_embedding

        print(render_embedding_grid(line_in_graph_embedding(host), title="Figure 10(d): line via f"))
        print()
        print(render_embedding_grid(ring_in_graph_embedding(host), title="Figure 10(f): ring via h"))
    elif name == "fig11":
        factor = ExpansionFactor(((2, 2), (2, 3)))
        from .core.increasing import F_value, G_value, H_value

        guest_base = (4, 6)
        naturals = natural_sequence(guest_base)
        print(
            render_sequence_table(
                24,
                {
                    "F_V": lambda x: F_value(factor, naturals[x]),
                    "G_V": lambda x: G_value(factor, naturals[x]),
                    "H_V": lambda x: H_value(factor, naturals[x]),
                },
                title="Figure 11: F_V, G_V, H_V for L = (4, 6), V = ((2,2),(2,3))",
            )
        )
    elif name == "fig12":
        guest = Mesh((3, 3, 6))
        host = Mesh((6, 9))
        embedding = embed_lowering_general(guest, host)
        print(render_embedding_grid(embedding, title="Figure 12: (3,3,6)-mesh in a (6,9)-mesh"))
        print(f"dilation = {embedding.dilation()} (paper: 3)")
    else:
        print(f"unknown figure {args.name!r}; choose from fig4, fig9, fig10, fig11, fig12", file=sys.stderr)
        return 2
    return 0


@contextmanager
def _profiled(enabled: bool, output_path: Optional[str] = None):
    """Optionally run the body under cProfile (the ``--profile`` flag).

    On exit the top-20 functions by cumulative time are printed and the raw
    stats are dumped to ``profile.pstats`` — next to ``output_path`` when the
    command writes an output file, in the working directory otherwise — for
    ``snakeviz``/``pstats`` digging.
    """
    if not enabled:
        yield
        return
    import cProfile
    import io
    import os
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        print(stream.getvalue(), end="")
        if output_path is not None:
            directory = os.path.dirname(os.path.abspath(output_path))
            target = os.path.join(directory, "profile.pstats")
        else:
            target = "profile.pstats"
        stats.dump_stats(target)
        print(f"profile written to {target}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    guest = parse_graph(args.guest)
    host = parse_graph(args.host)
    link_weights = (
        LinkWeightSpec.from_token(args.link_weights) if args.link_weights else None
    )
    faults = FaultSpec.from_token(args.faults).apply(host) if args.faults else None
    network = HostNetwork(
        host,
        CostModel(alpha=args.alpha, bandwidth=args.bandwidth),
        link_weights=link_weights,
    )
    cache = _load_cache(args)
    with _profiled(args.profile), use_context(backend=args.method, cache=cache):
        traffic = traffic_pattern(args.traffic, guest, message_size=args.message_size)
        rows = []
        for name in strategy_names():
            if name == "random" and args.seed != 0:
                # A non-default seed is a one-off variant: build it directly
                # so the memo cache only ever holds the canonical seed-0 entry.
                embedding = random_embedding(guest, host, seed=args.seed)
            else:
                embedding = build_strategy(name, guest, host)
            if faults is not None:
                embedding = repair_embedding(embedding, faults)
            result = simulate_phase(network, embedding, traffic, faults=faults)
            row = {"strategy": name, "dilation": embedding.dilation()}
            row.update(result.as_row())
            rows.append(row)
    title = f"{traffic.name} of {guest!r} on {host!r}"
    if faults is not None:
        title += f" with faults {faults.spec.token}"
    print(format_table(rows, title=title))
    _save_cache(args, cache)
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    if args.smoke:
        # Deterministic sequential CI mode: the tiny `smoke` suite by
        # default, or the explicitly chosen suite run on one worker (e.g.
        # `repro survey --suite simulation --smoke`).
        suite = args.suite if args.suite != "exhaustive" else "smoke"
        workers: Optional[int] = 1
    else:
        suite = args.suite
        workers = args.workers
    scenarios = scenarios_for_suite(suite, max_nodes=args.max_nodes)
    if args.limit is not None:
        scenarios = scenarios[: args.limit]
    if not scenarios:
        print("no scenarios selected (raise --max-nodes?)", file=sys.stderr)
        return 2
    options = SurveyOptions(
        workers=workers,
        shard_size=args.shard_size,
        shard_dir=args.shard_dir,
        with_congestion=args.congestion,
        resume=not args.no_resume,
    )
    cache = _load_cache(args)
    with _profiled(args.profile, args.output), use_context(
        backend=args.method, cache=cache, batch=not args.no_batch, chaos=args.chaos
    ):
        report = run_survey(scenarios, options)
    _save_cache(args, cache)
    if report.reused_shard_indices:
        print(
            f"resumed {len(report.reused_shard_indices)} finished shard(s) "
            f"from {args.shard_dir}"
        )
    if args.output:
        path = write_records(report.records, args.output)
        print(f"wrote {len(report.records)} records to {path}")
    rows = report.summary_rows()
    if rows:
        print(format_table(rows, title=f"Survey '{suite}': measured strategies"))
    print(
        f"{len(report.records)} pairs "
        f"({len(report.ok)} measured, {len(report.unsupported)} unsupported, "
        f"{len(report.failed)} failed) in {report.elapsed_seconds:.2f}s "
        f"on {report.workers} worker(s)"
    )
    if report.cache_entries:
        print(f"construction cache: {report.cache_entries} memoized constructions")
    if report.retries or report.crash_recoveries or report.quarantined:
        print(
            f"recovery: {report.retries} shard retr"
            f"{'y' if report.retries == 1 else 'ies'}, "
            f"{report.crash_recoveries} crash recover"
            f"{'y' if report.crash_recoveries == 1 else 'ies'}, "
            f"{report.quarantined} quarantined shard(s)"
        )
    if report.chaos_faults:
        fired = ", ".join(
            f"{label} x{count}" for label, count in sorted(report.chaos_faults.items())
        )
        print(f"chaos faults fired: {fired}")
    if report.failed:
        for record in report.failed[:5]:
            print(f"  FAILED {record.scenario_id}: {record.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from .optimize import OptimizeOptions, optimize_embedding

    guest = parse_graph(args.guest)
    host = parse_graph(args.host)
    options = OptimizeOptions(
        objective=args.objective,
        budget=args.budget,
        population=args.population,
        seed=args.seed,
        schedule=args.schedule,
    )
    cache = _load_cache(args)
    try:
        with use_context(backend=args.method, cache=cache):
            result = optimize_embedding(guest, host, options)
    except UnsupportedEmbeddingError as error:
        print(f"cannot search this pair: {error}", file=sys.stderr)
        return 2
    row = {
        "guest": repr(guest),
        "host": repr(host),
        "objective": args.objective,
        "value": result.objective,
        "dilation": result.dilation,
        "congestion": "-" if result.congestion is None else result.congestion,
        "steps": result.steps,
        "evaluations": result.evaluations,
        "seeded from": result.provenance,
        "improved": "yes" if result.improved else "no",
    }
    print(format_table([row], title="Embedding search"))
    if result.improved:
        print(
            f"search beat its best seed: objective {result.objective} "
            f"< {result.baseline_objective}"
        )
    else:
        print(
            f"search matched its best seed (objective {result.objective}; "
            "the constructions look tight on this pair)"
        )
    _save_cache(args, cache)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .optimize import register_optimized_strategy
    from .service import ReproService, serve

    # Long-lived daemon: let clients request `strategy="optimized"` simulate
    # runs; the searches warm-start from (and persist to) the service cache.
    register_optimized_strategy()
    service = ReproService(
        backend=args.method,
        cache_path=args.cache,
        window=args.window / 1000.0,
        max_batch=args.max_batch,
        snapshot_interval=args.snapshot_interval,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout if args.request_timeout > 0 else None,
        chaos=args.chaos,
    )
    server = serve(service, args.host, args.port)
    bound_host, bound_port = server.server_address[:2]
    chaos_note = ""
    if service.context.chaos is not None:
        chaos_note = f", chaos {service.context.chaos.token}"
    print(
        f"repro service listening on http://{bound_host}:{bound_port} "
        f"(backend {service.context.resolved_backend()}, "
        f"window {args.window:g}ms, max batch {args.max_batch}, "
        f"cache {args.cache or 'in-memory'}{chaos_note})",
        flush=True,
    )

    # SIGTERM (supervisors, `kill`) drains gracefully: new requests get 503
    # + Retry-After, in-flight batches finish, the cache snapshots once
    # more.  Daemons launched from non-interactive shells with `&` start
    # with SIGINT *ignored* (POSIX job control), so SIGTERM is the only
    # reliable way to stop them cleanly.
    def _request_shutdown(signum, frame):
        service.begin_drain()
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _request_shutdown)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining: refusing new requests, finishing in-flight batches",
              file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        service.begin_drain()
        server.server_close()
        service.close()
        recovery = service.stats_snapshot()["recovery"]
        print(f"shutdown complete (recovery counters: {recovery})", file=sys.stderr)
    return 0


def _cmd_invoke(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.op == "health":
            print(json.dumps(client.health(), indent=1))
            return 0
        if args.op == "stats":
            print(json.dumps(client.stats(), indent=1))
            return 0
        for name in ("guest", "host"):
            if getattr(args, name) is None:
                print(f"invoke {args.op} requires --{name}", file=sys.stderr)
                return 2
        if args.op == "embed":
            response = client.embed(args.guest, args.host, congestion=args.congestion)
        else:
            response = client.simulate(
                args.guest, args.host, strategy=args.strategy, traffic=args.traffic
            )
    except ServiceError as error:
        print(f"service error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"could not reach the service at {args.url} ({error}); "
            "is `repro serve` running?",
            file=sys.stderr,
        )
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(response, indent=1))
        return 0
    record = response["record"]
    row = {
        key: value
        for key, value in record.items()
        if value is not None and key not in ("scenario_id", "error")
    }
    meta = response["meta"]
    print(format_table([row], title=f"{args.op}: {record['scenario_id']}"))
    print(
        f"answered in a batch of {meta['batch_size']} "
        f"(coalesced: {meta['coalesced']})"
    )
    return 0 if record["status"] == "ok" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="torus-mesh-embed",
        description="Embeddings among toruses and meshes (Ma & Tao, ICPP 1987) — reproduction CLI",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_embed = subparsers.add_parser("embed", help="embed a guest graph in a host graph")
    p_embed.add_argument("--guest", required=True, help="guest graph, e.g. torus:4,6")
    p_embed.add_argument("--host", required=True, help="host graph, e.g. mesh:2,2,2,3")
    p_embed.add_argument("--congestion", action="store_true", help="also measure edge congestion")
    p_embed.add_argument("--grid", action="store_true", help="print the mapping as a grid")
    p_embed.add_argument(
        "--method",
        default="auto",
        choices=BACKENDS,
        help=(
            "runtime backend: array kernels, per-node loop reference, or "
            "compiled JIT kernels for the hot loops"
        ),
    )
    p_embed.set_defaults(func=_cmd_embed)

    p_figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    p_figure.add_argument("name", help="fig4, fig9, fig10, fig11 or fig12")
    p_figure.set_defaults(func=_cmd_figure)

    p_sim = subparsers.add_parser("simulate", help="simulate a communication phase")
    p_sim.add_argument("--guest", required=True, help="guest task graph, e.g. torus:8,8")
    p_sim.add_argument("--host", required=True, help="host network, e.g. mesh:4,4,4")
    p_sim.add_argument(
        "--traffic",
        default="neighbor-exchange",
        choices=traffic_pattern_names(),
        help="traffic pattern of the simulated phase",
    )
    p_sim.add_argument("--alpha", type=float, default=1.0, help="per-hop latency")
    p_sim.add_argument("--bandwidth", type=float, default=1.0, help="link bandwidth")
    p_sim.add_argument("--message-size", type=float, default=1.0, help="message size")
    p_sim.add_argument("--seed", type=int, default=0, help="seed for the random baseline")
    p_sim.add_argument(
        "--faults",
        default=None,
        help="degrade the host before simulating: a fault token like n1l2s5 "
        "(1 dead node, 2 dead links, seed 5); cut routes take BFS detours",
    )
    p_sim.add_argument(
        "--link-weights",
        default=None,
        help="heterogeneous link latencies: kind[:scale[:seed]] with kind "
        "uniform, dimension or random (e.g. random:0.5:3)",
    )
    p_sim.add_argument(
        "--method",
        default="auto",
        choices=BACKENDS,
        help="runtime backend (array kernels vs per-message loop reference)",
    )
    p_sim.add_argument(
        "--cache",
        default=None,
        help="construction-cache file; loaded before and saved after the run, "
        "so repeated invocations skip re-construction",
    )
    p_sim.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile: print the top-20 cumulative functions and "
        "write profile.pstats",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_survey = subparsers.add_parser(
        "survey", help="run a parallel embedding survey over many shape pairs"
    )
    p_survey.add_argument(
        "--suite",
        default="exhaustive",
        choices=suite_names(),
        help="scenario suite (default: exhaustive same-size sweep)",
    )
    p_survey.add_argument(
        "--max-nodes",
        type=int,
        default=48,
        help="node budget for shape enumeration (default 48)",
    )
    p_survey.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = sequential)",
    )
    p_survey.add_argument(
        "--shard-size", type=int, default=64, help="scenarios per worker shard"
    )
    p_survey.add_argument(
        "--shard-dir",
        default=None,
        help="write per-shard JSON files here (finished shards are reused on rerun)",
    )
    p_survey.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every shard even when --shard-dir holds finished shard files",
    )
    p_survey.add_argument(
        "--output",
        default="survey_results.json",
        help="results file (.json or .csv); empty string disables writing",
    )
    p_survey.add_argument(
        "--limit", type=int, default=None, help="evaluate only the first N scenarios"
    )
    p_survey.add_argument(
        "--congestion", action="store_true", help="also measure edge congestion"
    )
    p_survey.add_argument(
        "--no-batch",
        action="store_true",
        help="evaluate scenarios one at a time (the cross-checked reference) "
        "instead of the batched stacked-kernel path",
    )
    p_survey.add_argument(
        "--method",
        default="auto",
        choices=BACKENDS,
        help="runtime backend (vectorized array path vs per-node loop reference)",
    )
    p_survey.add_argument(
        "--cache",
        default=None,
        help="construction-cache file; loaded before and saved after the run, "
        "so repeated surveys skip re-construction",
    )
    p_survey.add_argument(
        "--smoke",
        action="store_true",
        help="tiny deterministic run (suite 'smoke', sequential) for CI",
    )
    p_survey.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile: print the top-20 cumulative functions and "
        "write profile.pstats next to --output",
    )
    p_survey.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. 'worker_crash:0.02,"
        "slow_io:0.05x200ms,seed=7' (see docs/ARCHITECTURE.md, Failure model)",
    )
    p_survey.set_defaults(func=_cmd_survey)

    p_opt = subparsers.add_parser(
        "optimize",
        help="search for a low-cost embedding with the population optimizer",
    )
    p_opt.add_argument("--guest", required=True, help="guest graph, e.g. torus:8x8")
    p_opt.add_argument("--host", required=True, help="host graph, e.g. mesh:8x8")
    p_opt.add_argument(
        "--objective",
        default="combined",
        choices=("dilation", "congestion", "combined"),
        help="cost to minimize (default: combined dilation + congestion)",
    )
    p_opt.add_argument(
        "--budget",
        type=int,
        default=2000,
        help="candidate-evaluation budget (default 2000)",
    )
    p_opt.add_argument(
        "--population",
        type=int,
        default=16,
        help="target population size (default 16)",
    )
    p_opt.add_argument("--seed", type=int, default=0, help="search RNG seed")
    p_opt.add_argument(
        "--schedule",
        default="anneal",
        choices=("anneal", "greedy"),
        help="acceptance schedule: simulated annealing or greedy hill-climb",
    )
    p_opt.add_argument(
        "--method",
        default="auto",
        choices=BACKENDS,
        help="runtime backend (stacked-kernel search vs pure-Python reference)",
    )
    p_opt.add_argument(
        "--cache",
        default=None,
        help="construction-cache file; a stored optimum warm-starts the "
        "search and the best embedding found is persisted back",
    )
    p_opt.set_defaults(func=_cmd_optimize)

    p_serve = subparsers.add_parser(
        "serve",
        help="run the long-lived embedding service (HTTP, request coalescing)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (default 8642; 0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--window",
        type=float,
        default=5.0,
        help="request-coalescing window in milliseconds (default 5)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="hard cap on coalesced batch size (default 256)",
    )
    p_serve.add_argument(
        "--method",
        default="auto",
        choices=BACKENDS,
        help="runtime backend of the resident execution context",
    )
    p_serve.add_argument(
        "--cache",
        default=None,
        help="construction-cache file; warm-started on boot and snapshotted "
        "atomically while serving",
    )
    p_serve.add_argument(
        "--snapshot-interval",
        type=float,
        default=30.0,
        help="minimum seconds between periodic cache snapshots (default 30)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission-queue bound; beyond it requests are shed with "
        "503 + Retry-After (default 1024)",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds, answered with 504 on a miss "
        "(default 30; 0 disables)",
    )
    p_serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. 'request_error:0.05,"
        "slow_io:0.1x50ms,seed=7' (see docs/ARCHITECTURE.md, Failure model)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_invoke = subparsers.add_parser(
        "invoke", help="query a running `repro serve` daemon"
    )
    p_invoke.add_argument(
        "op",
        choices=("embed", "simulate", "stats", "health"),
        help="request to send",
    )
    p_invoke.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="service URL (default http://127.0.0.1:8642)",
    )
    p_invoke.add_argument("--guest", default=None, help="guest graph, e.g. torus:4,6")
    p_invoke.add_argument("--host", default=None, help="host graph, e.g. mesh:2,2,2,3")
    p_invoke.add_argument(
        "--strategy",
        default="paper",
        help="embedding strategy for simulate (default: the paper dispatcher)",
    )
    p_invoke.add_argument(
        "--traffic",
        default="neighbor-exchange",
        help="traffic pattern for simulate (default neighbor-exchange)",
    )
    p_invoke.add_argument(
        "--congestion", action="store_true", help="also measure edge congestion"
    )
    p_invoke.add_argument(
        "--timeout", type=float, default=60.0, help="request timeout in seconds"
    )
    p_invoke.add_argument(
        "--json", action="store_true", help="print the raw JSON response"
    )
    p_invoke.set_defaults(func=_cmd_invoke)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C during a sharded survey used to traceback and could leave
        # pool workers running; the runner cancels its queued shards on the
        # way out, and the conventional 128+SIGINT exit code is returned.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
