"""Cost measures for embeddings.

The paper's sole optimization measure is the dilation cost (Definition 1);
the companion measures provided here (average dilation, edge congestion,
expansion cost) are standard in the embedding literature and are reported by
the experiment harness so that the paper's constructions can be compared
against baselines on more than one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.embedding import Embedding
from ..runtime.context import accepts_deprecated_method

__all__ = [
    "dilation_cost",
    "average_dilation_cost",
    "edge_congestion_cost",
    "expansion_cost",
    "EmbeddingReport",
    "evaluate_embedding",
]


@accepts_deprecated_method
def dilation_cost(embedding: Embedding) -> int:
    """The measured dilation cost (maximum host distance over guest edges).

    The implementation is resolved from the ambient execution context: the
    array backend runs the vectorized path, ``use_context(backend="loop")``
    forces the historical per-edge Python loop (the cross-checked fallback).
    """
    return embedding.dilation()


@accepts_deprecated_method
def average_dilation_cost(embedding: Embedding) -> float:
    """The mean host distance over guest edges."""
    return embedding.average_dilation()


@accepts_deprecated_method
def edge_congestion_cost(embedding: Embedding) -> int:
    """Maximum number of guest edges routed through one host edge."""
    return embedding.edge_congestion()


def expansion_cost(embedding: Embedding) -> float:
    """``|V_H| / |V_G|`` (always 1 for the paper's same-size embeddings)."""
    return embedding.expansion_cost()


@dataclass(frozen=True)
class EmbeddingReport:
    """A bundle of measured costs for one embedding, ready for tabulation."""

    guest: str
    host: str
    strategy: str
    predicted_dilation: Optional[int]
    dilation: int
    average_dilation: float
    congestion: Optional[int]
    valid: bool

    def as_row(self) -> Dict[str, object]:
        """Dictionary form used by :class:`repro.analysis.report.Table`."""
        return {
            "guest": self.guest,
            "host": self.host,
            "strategy": self.strategy,
            "predicted": "-" if self.predicted_dilation is None else self.predicted_dilation,
            "dilation": self.dilation,
            "avg dilation": round(self.average_dilation, 3),
            "congestion": "-" if self.congestion is None else self.congestion,
            "valid": "yes" if self.valid else "NO",
        }


@accepts_deprecated_method
def evaluate_embedding(
    embedding: Embedding, *, with_congestion: bool = False
) -> EmbeddingReport:
    """Measure an embedding and package the results.

    Congestion routes every guest edge and is therefore optional; with the
    vectorized path it is an O(E + |V_H|)-per-dimension difference-array
    computation rather than an explicit walk of every routed path.
    """
    return EmbeddingReport(
        guest=repr(embedding.guest),
        host=repr(embedding.host),
        strategy=embedding.strategy,
        predicted_dilation=embedding.predicted_dilation,
        dilation=embedding.dilation(),
        average_dilation=embedding.average_dilation(),
        congestion=embedding.edge_congestion() if with_congestion else None,
        valid=embedding.is_valid(),
    )
