"""Cost measures for embeddings.

The paper's sole optimization measure is the dilation cost (Definition 1);
the companion measures provided here (average dilation, edge congestion,
expansion cost) are standard in the embedding literature and are reported by
the experiment harness so that the paper's constructions can be compared
against baselines on more than one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..compiled.dispatch import active_kernels
from ..core.embedding import Embedding
from ..numbering.arrays import (
    compact_index_dtype,
    require_numpy,
    stacked_edge_congestion,
)
from ..runtime.context import accepts_deprecated_method

__all__ = [
    "dilation_cost",
    "average_dilation_cost",
    "edge_congestion_cost",
    "expansion_cost",
    "EmbeddingReport",
    "evaluate_embedding",
    "stack_host_index_arrays",
    "stacked_edge_dilations",
    "stacked_dilation_summary",
    "stacked_congestion",
    "stacked_objective_components",
]


@accepts_deprecated_method
def dilation_cost(embedding: Embedding) -> int:
    """The measured dilation cost (maximum host distance over guest edges).

    The implementation is resolved from the ambient execution context: the
    array backend runs the vectorized path, ``use_context(backend="loop")``
    forces the historical per-edge Python loop (the cross-checked fallback).
    """
    return embedding.dilation()


@accepts_deprecated_method
def average_dilation_cost(embedding: Embedding) -> float:
    """The mean host distance over guest edges."""
    return embedding.average_dilation()


@accepts_deprecated_method
def edge_congestion_cost(embedding: Embedding) -> int:
    """Maximum number of guest edges routed through one host edge."""
    return embedding.edge_congestion()


def expansion_cost(embedding: Embedding) -> float:
    """``|V_H| / |V_G|`` (always 1 for the paper's same-size embeddings)."""
    return embedding.expansion_cost()


@dataclass(frozen=True)
class EmbeddingReport:
    """A bundle of measured costs for one embedding, ready for tabulation."""

    guest: str
    host: str
    strategy: str
    predicted_dilation: Optional[int]
    dilation: int
    average_dilation: float
    congestion: Optional[int]
    valid: bool

    def as_row(self) -> Dict[str, object]:
        """Dictionary form used by :class:`repro.analysis.report.Table`."""
        return {
            "guest": self.guest,
            "host": self.host,
            "strategy": self.strategy,
            "predicted": "-" if self.predicted_dilation is None else self.predicted_dilation,
            "dilation": self.dilation,
            "avg dilation": round(self.average_dilation, 3),
            "congestion": "-" if self.congestion is None else self.congestion,
            "valid": "yes" if self.valid else "NO",
        }


@accepts_deprecated_method
def evaluate_embedding(
    embedding: Embedding, *, with_congestion: bool = False
) -> EmbeddingReport:
    """Measure an embedding and package the results.

    Congestion routes every guest edge and is therefore optional; with the
    vectorized path it is an O(E + |V_H|)-per-dimension difference-array
    computation rather than an explicit walk of every routed path.
    """
    return EmbeddingReport(
        guest=repr(embedding.guest),
        host=repr(embedding.host),
        strategy=embedding.strategy,
        predicted_dilation=embedding.predicted_dilation,
        dilation=embedding.dilation(),
        average_dilation=embedding.average_dilation(),
        congestion=embedding.edge_congestion() if with_congestion else None,
        valid=embedding.is_valid(),
    )


# --------------------------------------------------------------------- #
# Stacked metric kernels (batched survey evaluation)
# --------------------------------------------------------------------- #
def stack_host_index_arrays(embeddings, host):
    """Stack the host-index arrays of same-signature embeddings.

    All embeddings must target ``host`` (and share one guest signature); the
    result is a ``(batch, size)`` matrix in the smallest sufficient integer
    dtype (``int32`` whenever the host has fewer than ``2**31`` nodes —
    :func:`repro.numbering.arrays.compact_index_dtype` is the overflow
    guard).  Requires NumPy.
    """
    np = require_numpy()
    dtype = compact_index_dtype(max(host.size - 1, 0))
    return np.stack(
        [
            np.asarray(embedding.host_index_array(), dtype=dtype)
            for embedding in embeddings
        ]
    )


def stacked_edge_dilations(host, edge_u, edge_v, images):
    """Per-edge host distances for a whole stack of embeddings at once.

    ``images`` is the ``(batch, size)`` stack of host-index rows and
    ``edge_u`` / ``edge_v`` the shared guest edge-endpoint ranks; the result
    is the ``(batch, E)`` ``int64`` distance matrix — row ``b`` equals
    ``Embedding.edge_dilation_array`` of the ``b``-th embedding exactly.
    """
    np = require_numpy()
    images = np.asarray(images)
    return host.distance_indices(images[:, edge_u], images[:, edge_v])


def stacked_dilation_summary(host, edge_u, edge_v, images):
    """``(dilation, average_dilation)`` columns for a stack of embeddings.

    One fused pass over the shared edge-index arrays: the ``(batch,)``
    ``int64`` maxima and ``(batch,)`` ``float64`` means of the stacked
    per-edge distances.  Both reductions run over the contiguous rows of the
    distance matrix, so each row's result is bit-for-bit the per-embedding
    ``dilation()`` / ``average_dilation()`` value.
    """
    np = require_numpy()
    images = np.asarray(images)
    batch = images.shape[0]
    edge_u = np.asarray(edge_u)
    if edge_u.size == 0:
        return (
            np.zeros(batch, dtype=np.int64),
            np.zeros(batch, dtype=np.float64),
        )
    kernels = active_kernels()
    if kernels is not None:
        dil_max, dil_sum, _ = kernels.score_rows(
            images, edge_u, edge_v, host.shape, host.is_torus, with_congestion=False
        )
        # The distances are small integers, so NumPy's pairwise float mean
        # equals the exact integer sum divided by the count — bit for bit.
        return dil_max, dil_sum / float(edge_u.size)
    dilations = stacked_edge_dilations(host, edge_u, edge_v, images)
    return dilations.max(axis=1), dilations.mean(axis=1)


def stacked_objective_components(host, edge_u, edge_v, images, *, with_congestion):
    """Objective columns for a stack of embeddings, in one fused pass.

    Returns ``(dilation_max, dilation_total, congestion)`` — three ``(batch,)``
    ``int64`` columns (``congestion`` is ``None`` unless requested).  This is
    the scoring kernel of the embedding optimizer
    (:mod:`repro.optimize.search`): the whole candidate population is priced
    by one pass over the shared edge-index arrays, with no per-candidate
    Python.  Each row's values are bit-for-bit the per-embedding
    ``dilation()`` / ``sum(edge dilations)`` / ``edge_congestion()``.
    """
    np = require_numpy()
    images = np.asarray(images)
    batch = images.shape[0]
    edge_u = np.asarray(edge_u)
    if edge_u.size == 0:
        zeros = np.zeros(batch, dtype=np.int64)
        return zeros, zeros.copy(), (zeros.copy() if with_congestion else None)
    kernels = active_kernels()
    if kernels is not None:
        # Compiled backend: dilation max/sum and congestion in one fused
        # JIT pass per row — all-integer, identical to the array kernels.
        return kernels.score_rows(
            images,
            edge_u,
            edge_v,
            host.shape,
            host.is_torus,
            with_congestion=with_congestion,
        )
    dilations = stacked_edge_dilations(host, edge_u, edge_v, images)
    congestion = (
        stacked_congestion(host, edge_u, edge_v, images) if with_congestion else None
    )
    return dilations.max(axis=1), dilations.sum(axis=1), congestion


def stacked_congestion(host, edge_u, edge_v, images):
    """Edge congestion column for a stack of embeddings (``(batch,)`` ints).

    The survey-facing wrapper of
    :func:`repro.numbering.arrays.stacked_edge_congestion`.
    """
    return stacked_edge_congestion(
        images, edge_u, edge_v, host.shape, torus=host.is_torus
    )
