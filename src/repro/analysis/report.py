"""Plain-text tables for experiment reports.

The paper presents its quantitative content as worked figures and
theorem-backed cost formulas rather than numbered tables; the benchmark
harness regenerates the corresponding rows and prints them with this
formatter so that paper-vs-measured comparisons are easy to eyeball and to
record in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Table", "format_table"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_stringify(row.get(col, "")) for col in columns]
        rendered_rows.append(rendered)
        for col, cell in zip(columns, rendered):
            widths[col] = max(widths[col], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines.append(header)
    lines.append(separator)
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[col]) for col, cell in zip(columns, rendered)))
    return "\n".join(lines)


@dataclass
class Table:
    """An incrementally built report table."""

    title: Optional[str] = None
    columns: Optional[List[str]] = None
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **cells: object) -> None:
        self.rows.append(dict(cells))

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.rows.append(dict(row))

    def render(self) -> str:
        return format_table(self.rows, columns=self.columns, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
