"""Embedding verification and cost analysis.

``metrics``
    Cost measures of an embedding: dilation (Definition 1), average
    dilation, edge congestion under dimension-ordered routing, expansion
    cost, plus an :class:`~repro.analysis.metrics.EmbeddingReport` bundling
    them for experiment tables.
``fault_tolerance``
    Degraded-host measures: deterministic re-embedding around dead host
    nodes and dilation over surviving-graph BFS distances.
``verify``
    Independent checks: injectivity, adjacency-by-adjacency dilation audit,
    spread verification of sequences, and comparison against theorem
    predictions.
``report``
    Plain-text table rendering used by the benchmark harnesses, the examples
    and the CLI (the paper's "tables" are regenerated in this format).
"""

from .fault_tolerance import fault_dilation_summary, repair_embedding
from .metrics import (
    EmbeddingReport,
    average_dilation_cost,
    dilation_cost,
    edge_congestion_cost,
    evaluate_embedding,
)
from .verify import (
    audit_dilation,
    verify_embedding,
    verify_prediction,
    verify_sequence_spread,
)
from .report import Table, format_table

__all__ = [
    "EmbeddingReport",
    "repair_embedding",
    "fault_dilation_summary",
    "dilation_cost",
    "average_dilation_cost",
    "edge_congestion_cost",
    "evaluate_embedding",
    "verify_embedding",
    "verify_prediction",
    "audit_dilation",
    "verify_sequence_spread",
    "Table",
    "format_table",
]
