"""Re-embedding around host faults and cost measures on degraded hosts.

Two operations close the loop for the ``faults`` survey suite:

``repair_embedding``
    Takes an embedding built for the pristine host and a materialized
    :class:`~repro.graphs.faults.Faults`, and re-places every guest node
    whose image died onto the nearest surviving *free* host node (pristine
    host distance, ties broken by rank — fully deterministic, so both
    backends derive the identical repaired placement).  Embeddings touched
    by repair are never construction-cached: the cache keys pristine
    constructions only.

``fault_dilation_summary``
    Dilation and average dilation measured with *surviving-graph* BFS
    distances instead of the closed-form pristine distances — the actual
    path lengths messages must travel once links are gone.  Distances are
    canonical, so the vectorized path (masked level-synchronous BFS) and
    the loop path agree exactly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.embedding import Embedding
from ..exceptions import SimulationError, UnsupportedEmbeddingError
from ..graphs.faults import Faults
from ..numbering.arrays import require_numpy
from ..runtime.context import use_array_path

__all__ = ["repair_embedding", "fault_dilation_summary"]


def repair_embedding(embedding: Embedding, faults: Faults) -> Embedding:
    """Re-place guest nodes whose host image died; injectivity is preserved.

    Returns the embedding unchanged when no image is on a dead node (link
    faults alone never invalidate a placement).  Raises
    :class:`~repro.exceptions.UnsupportedEmbeddingError` when the surviving
    host cannot hold the guest.
    """
    host = embedding.host
    if faults.graph != host:
        raise SimulationError(
            f"faults were materialized for {faults.graph!r}, not {host!r}"
        )
    guest = embedding.guest
    images = [host.node_index(embedding.map_index(rank)) for rank in range(guest.size)]
    broken = [rank for rank, image in enumerate(images) if image in faults.dead_nodes]
    if not broken:
        return embedding
    used = set(images)
    free = [rank for rank in faults.surviving_ranks() if rank not in used]
    if len(broken) > len(free):
        raise UnsupportedEmbeddingError(
            f"host has only {len(faults.surviving_ranks())} surviving nodes for "
            f"{guest.size} guest nodes; cannot re-embed around the faults"
        )
    for rank in broken:
        origin = host.index_node(images[rank])
        chosen = min(
            free, key=lambda candidate: (host.distance(origin, host.index_node(candidate)), candidate)
        )
        free.remove(chosen)
        images[rank] = chosen

    strategy = f"{embedding.strategy}+repair"
    notes = dict(embedding.notes)
    notes["fault_repairs"] = len(broken)
    if faults.spec is not None:
        notes["faults"] = faults.spec.token
    if use_array_path():
        np = require_numpy()
        return Embedding.from_index_array(
            guest,
            host,
            np.asarray(images, dtype=np.int64),
            strategy=strategy,
            predicted_dilation=embedding.predicted_dilation,
            notes=notes,
        )
    mapping = {
        guest.index_node(rank): host.index_node(image)
        for rank, image in enumerate(images)
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy=strategy,
        predicted_dilation=embedding.predicted_dilation,
        notes=notes,
    )


def fault_dilation_summary(embedding: Embedding, faults: Faults) -> Tuple[int, float]:
    """(dilation, average dilation) over surviving-graph BFS distances.

    Raises :class:`~repro.exceptions.SimulationError` when an image sits on
    a dead node (repair first) or the faults disconnect two images that a
    guest edge must join.
    """
    guest = embedding.guest
    host = embedding.host
    if faults.graph != host:
        raise SimulationError(
            f"faults were materialized for {faults.graph!r}, not {host!r}"
        )
    num_edges = guest.num_edges()
    if num_edges == 0:
        return 0, 0.0

    if use_array_path():
        np = require_numpy()
        images = embedding.host_index_array()
        if faults.dead_nodes and bool(
            np.isin(images, np.asarray(sorted(faults.dead_nodes))).any()
        ):
            raise SimulationError(
                "an embedding image sits on a dead host node; repair the embedding first"
            )
        edge_u, edge_v = guest.edge_index_arrays()
        source_images = images[edge_u]
        target_images = images[edge_v]
        rows = {}
        for source in np.unique(source_images):
            rows[int(source)] = faults.bfs_distance_row(int(source))
        distances = np.empty(num_edges, dtype=np.int64)
        for index in range(num_edges):
            distances[index] = rows[int(source_images[index])][target_images[index]]
        if bool((distances < 0).any()):
            raise SimulationError(
                "the faults disconnect two embedding images joined by a guest edge"
            )
        return int(distances.max()), int(distances.sum()) / num_edges

    cache: Dict[int, Dict[int, int]] = {}
    worst = 0
    total = 0
    for a, b in guest.edges():
        source = host.node_index(embedding[a])
        target = host.node_index(embedding[b])
        if source in faults.dead_nodes or target in faults.dead_nodes:
            raise SimulationError(
                "an embedding image sits on a dead host node; repair the embedding first"
            )
        if source not in cache:
            cache[source] = faults.bfs_distances(source)
        distance = cache[source].get(target)
        if distance is None:
            raise SimulationError(
                "the faults disconnect two embedding images joined by a guest edge"
            )
        worst = max(worst, distance)
        total += distance
    return worst, total / num_edges
