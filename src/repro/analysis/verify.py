"""Independent verification of embeddings and sequences.

Every constructive claim of the paper is double-checked in two ways by the
reproduction: (a) the constructors attach the theorem's predicted dilation to
the :class:`~repro.core.embedding.Embedding`, and (b) the functions here
re-measure the embedding from scratch (injectivity plus an edge-by-edge
distance audit) so tests and experiment reports never rely on the prediction
alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.embedding import Embedding
from ..exceptions import InvalidEmbeddingError
from ..numbering.sequences import cyclic_spread, is_bijective_sequence, sequence_spread
from ..types import Node

__all__ = [
    "DilationAudit",
    "verify_embedding",
    "verify_prediction",
    "audit_dilation",
    "verify_sequence_spread",
]


@dataclass(frozen=True)
class DilationAudit:
    """Result of an edge-by-edge dilation audit."""

    dilation: int
    worst_edges: Tuple[Tuple[Node, Node], ...]
    num_edges: int

    @property
    def worst_edge(self) -> Optional[Tuple[Node, Node]]:
        return self.worst_edges[0] if self.worst_edges else None


def verify_embedding(embedding: Embedding) -> None:
    """Raise :class:`InvalidEmbeddingError` unless the embedding is a valid injection."""
    embedding.validate()


def audit_dilation(embedding: Embedding, *, max_worst: int = 5) -> DilationAudit:
    """Measure the dilation and record the guest edges achieving it."""
    worst = 0
    worst_edges: List[Tuple[Node, Node]] = []
    count = 0
    for a, b in embedding.guest.edges():
        count += 1
        distance = embedding.host.distance(embedding[a], embedding[b])
        if distance > worst:
            worst = distance
            worst_edges = [(a, b)]
        elif distance == worst and len(worst_edges) < max_worst:
            worst_edges.append((a, b))
    return DilationAudit(dilation=worst, worst_edges=tuple(worst_edges[:max_worst]), num_edges=count)


def verify_prediction(embedding: Embedding) -> bool:
    """Check the measured dilation against the recorded theorem prediction.

    Exact predictions must match exactly; predictions flagged as upper
    bounds only need to dominate the measurement.  An embedding without a
    prediction passes vacuously.  Invalid embeddings always fail.
    """
    if not embedding.is_valid():
        return False
    return embedding.matches_prediction()


def verify_sequence_spread(
    sequence: Sequence[Node],
    *,
    universe_size: int,
    metric: str = "mesh",
    shape: Optional[Sequence[int]] = None,
    cyclic: bool = False,
    expected_spread: int = 1,
) -> None:
    """Assert that a sequence is a bijection with the expected spread.

    Used by tests and benchmarks to certify the Gray-code properties of
    ``f_L`` (Lemmas 10–12), ``g_L`` (Lemma 16), ``r_L`` (Lemmas 21, 26) and
    ``h_L`` (Lemmas 23, 27).
    """
    if not is_bijective_sequence(sequence, universe_size):
        raise InvalidEmbeddingError(
            f"sequence of length {len(sequence)} is not a bijection onto a universe "
            f"of size {universe_size}"
        )
    spread_fn = cyclic_spread if cyclic else sequence_spread
    spread = spread_fn(sequence, metric=metric, shape=shape)
    if spread != expected_spread:
        raise InvalidEmbeddingError(
            f"sequence has {'cyclic ' if cyclic else ''}{metric} spread {spread}, "
            f"expected {expected_spread}"
        )
