"""Result store for embedding surveys: records, JSON/CSV persistence, shards.

A :class:`SurveyRecord` is one measured guest/host pair, flat enough to be a
CSV row and loss-free as JSON.  The two formats round-trip through
:func:`write_records` / :func:`read_records` (dispatched on file extension);
:func:`merge_shards` combines the per-worker shard files written by the
parallel runner into one deterministic record list.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..utils.atomicio import atomic_write

__all__ = [
    "SurveyRecord",
    "write_json",
    "read_json",
    "write_csv",
    "read_csv",
    "write_records",
    "read_records",
    "merge_shards",
]

PathLike = Union[str, Path]

#: Column order of the CSV format (also the canonical JSON key order).  The
#: ``traffic`` .. ``makespan`` block is only populated by simulation
#: scenarios; embedding scenarios leave it ``None`` (empty CSV cells).
FIELDS = (
    "scenario_id",
    "guest",
    "host",
    "nodes",
    "guest_edges",
    "status",
    "strategy",
    "predicted_dilation",
    "dilation",
    "average_dilation",
    "congestion",
    "matches_prediction",
    "traffic",
    "messages",
    "max_hops",
    "max_link_load",
    "estimated_time",
    "makespan",
    "elapsed_seconds",
    "error",
    # Appended by the fault/expansion axes; records written before these
    # columns existed load with them as None (`from_dict` uses .get()).
    "faults",
    "guest_size",
    # Appended by the optimizer suite: the encoded search objective, the
    # generations run, and whether search beat the seeded construction.
    "search_objective",
    "search_steps",
    "improved",
)


@dataclass(frozen=True)
class SurveyRecord:
    """One measured guest/host pair of a survey.

    ``status`` is ``"ok"`` for measured embeddings, ``"unsupported"`` when
    the paper offers no construction for the pair (the dispatcher raised
    :class:`~repro.exceptions.UnsupportedEmbeddingError`) and ``"error"``
    for unexpected failures; the cost columns are ``None`` in the latter two
    cases and ``error`` carries the message.

    Simulation scenarios additionally fill the ``traffic`` .. ``makespan``
    block (pattern name, message count, per-phase hop/link statistics and
    the simulated completion time); embedding scenarios leave it ``None``.
    """

    scenario_id: str
    guest: str
    host: str
    nodes: int
    guest_edges: int
    status: str
    strategy: Optional[str] = None
    predicted_dilation: Optional[int] = None
    dilation: Optional[int] = None
    average_dilation: Optional[float] = None
    congestion: Optional[int] = None
    matches_prediction: Optional[bool] = None
    traffic: Optional[str] = None
    messages: Optional[int] = None
    max_hops: Optional[int] = None
    max_link_load: Optional[int] = None
    estimated_time: Optional[float] = None
    makespan: Optional[float] = None
    elapsed_seconds: float = 0.0
    error: Optional[str] = None
    faults: Optional[str] = None
    guest_size: Optional[int] = None
    search_objective: Optional[int] = None
    search_steps: Optional[int] = None
    improved: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form in canonical key order (JSON object / CSV row)."""
        data = asdict(self)
        return {key: data[key] for key in FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SurveyRecord":
        return cls(**{key: data.get(key) for key in FIELDS})  # type: ignore[arg-type]


def write_json(records: Sequence[SurveyRecord], path: PathLike) -> Path:
    """Write records as a JSON document (list of objects plus a count header).

    The write is atomic (temp file + ``os.replace``): a kill mid-write leaves
    the previous document intact instead of a torn shard that silently fails
    the resume check and costs a full recompute.
    """
    path = Path(path)
    payload = {
        "format": "repro-survey/1",
        "count": len(records),
        "records": [record.as_dict() for record in records],
    }
    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return path


def read_json(path: PathLike) -> List[SurveyRecord]:
    """Read records written by :func:`write_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    rows = payload["records"] if isinstance(payload, dict) else payload
    return [SurveyRecord.from_dict(row) for row in rows]


def _csv_cell(value: object) -> object:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return value


def _parse_bool_cell(text: str) -> bool:
    """Parse a CSV boolean cell case-insensitively.

    The writer emits lowercase ``true``/``false``, but legacy files and
    hand-edited spreadsheets carry ``True``/``FALSE`` etc.; treating anything
    but exactly ``"true"`` as ``False`` silently flipped those records.
    Unrecognized text raises instead of guessing.
    """
    lowered = text.strip().lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    raise ValueError(f"unrecognized boolean cell {text!r}; expected true/false")


_CSV_PARSERS = {
    "nodes": int,
    "guest_edges": int,
    "guest_size": int,
    "predicted_dilation": int,
    "dilation": int,
    "congestion": int,
    "messages": int,
    "max_hops": int,
    "max_link_load": int,
    "average_dilation": float,
    "estimated_time": float,
    "makespan": float,
    "elapsed_seconds": float,
    "matches_prediction": _parse_bool_cell,
    "search_objective": int,
    "search_steps": int,
    "improved": _parse_bool_cell,
}


def write_csv(records: Sequence[SurveyRecord], path: PathLike) -> Path:
    """Write records as a CSV table with the :data:`FIELDS` columns.

    Atomic like :func:`write_json`: the table appears all at once or not at
    all, never truncated mid-row.
    """
    path = Path(path)
    with atomic_write(path, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(FIELDS))
        writer.writeheader()
        for record in records:
            writer.writerow(
                {key: _csv_cell(value) for key, value in record.as_dict().items()}
            )
    return path


def read_csv(path: PathLike) -> List[SurveyRecord]:
    """Read records written by :func:`write_csv` (inverse, None <-> empty cell)."""
    records: List[SurveyRecord] = []
    with Path(path).open("r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            data: Dict[str, object] = {}
            for key in FIELDS:
                text = row.get(key)
                if text is None or text == "":
                    data[key] = None
                elif key in _CSV_PARSERS:
                    data[key] = _CSV_PARSERS[key](text)
                else:
                    data[key] = text
            if data["elapsed_seconds"] is None:
                data["elapsed_seconds"] = 0.0
            records.append(SurveyRecord.from_dict(data))
    return records


def write_records(records: Sequence[SurveyRecord], path: PathLike) -> Path:
    """Write records in the format implied by the file extension (.json/.csv)."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return write_csv(records, path)
    return write_json(records, path)


def read_records(path: PathLike) -> List[SurveyRecord]:
    """Read records in the format implied by the file extension (.json/.csv)."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return read_csv(path)
    return read_json(path)


def merge_shards(paths: Iterable[PathLike]) -> List[SurveyRecord]:
    """Merge per-worker shard files into one deterministic record list.

    Records are de-duplicated by ``scenario_id`` (last shard wins, which only
    matters when a shard was retried) and sorted by id, so the merge result
    is independent of worker scheduling order.
    """
    by_id: Dict[str, SurveyRecord] = {}
    for path in paths:
        for record in read_records(path):
            by_id[record.scenario_id] = record
    return [by_id[key] for key in sorted(by_id)]
