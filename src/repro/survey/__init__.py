"""Parallel embedding surveys — the scale-out layer of the reproduction.

The paper's tables cover a handful of hand-picked shape pairs; the survey
subsystem turns that into a batch workload: enumerate every guest/host shape
pair up to a node budget (or a named suite mirroring the paper's tables),
embed each pair with the dispatcher, measure the vectorized costs, and
persist the results.

``scenarios``
    :class:`~repro.survey.scenarios.Scenario` and the deterministic
    generators (:func:`~repro.survey.scenarios.shapes_up_to`,
    :func:`~repro.survey.scenarios.all_pairs`, named suites).
``runner``
    The :func:`~repro.survey.runner.run_survey` engine —
    ``concurrent.futures`` workers over scenario shards, with optional
    per-shard JSON spills for crash-safe long sweeps.
``batch``
    The batched shard evaluator — scenarios grouped by signature, stacked
    host-index matrices through fused metric kernels and one vectorized
    event loop per shard.  The default path (``use_context(batch=False)``
    forces the per-scenario reference).
``store``
    :class:`~repro.survey.store.SurveyRecord` and the JSON/CSV result store
    (round-trippable, shard-mergeable).

The ``repro survey`` CLI subcommand (:mod:`repro.cli`) fronts the engine.
"""

from .batch import evaluate_shard_batched
from .scenarios import Scenario, all_pairs, scenarios_for_suite, shapes_up_to, suite_names
from .runner import SurveyOptions, SurveyReport, run_survey
from .store import (
    SurveyRecord,
    merge_shards,
    read_csv,
    read_json,
    read_records,
    write_csv,
    write_json,
    write_records,
)

__all__ = [
    "Scenario",
    "shapes_up_to",
    "all_pairs",
    "scenarios_for_suite",
    "suite_names",
    "SurveyOptions",
    "SurveyReport",
    "run_survey",
    "evaluate_shard_batched",
    "SurveyRecord",
    "write_json",
    "read_json",
    "write_csv",
    "read_csv",
    "write_records",
    "read_records",
    "merge_shards",
]
