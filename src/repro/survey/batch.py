"""Batched survey shard evaluation — no per-scenario Python in the hot loop.

:func:`repro.survey.runner.run_survey` used to pay full Python overhead per
scenario: one ``embed`` call, one ``evaluate_embedding`` call and a fresh
``edge_index_arrays`` derivation per record, plus a per-message traffic
rebuild and one event loop per simulation scenario.  This module evaluates a
whole *shard* at once instead:

* scenarios are grouped by their ``(guest kind+shape, host kind+shape)``
  signature; each signature materializes its graphs once, derives (or fetches
  from the runtime :class:`~repro.runtime.cache.ConstructionCache`) one
  shared edge-index array, and stacks the signature's host-index arrays into
  a single ``(batch, size)`` matrix in the smallest sufficient dtype;
* dilation, average dilation and (optionally) congestion are computed for
  the whole stack in fused NumPy passes
  (:mod:`repro.analysis.metrics` stacked kernels) — bit-for-bit the
  per-scenario values;
* simulation scenarios share one memoized traffic pattern per
  ``(pattern, guest signature)`` and one
  :class:`~repro.netsim.network.HostNetwork` per host signature, and all of
  a shard's phases advance together through one round-based vectorized event
  loop (:func:`repro.netsim.simulator.simulate_endpoint_phases`);
* records are assembled column-wise from the stacked results, in scenario
  order.

The per-scenario path (:func:`repro.survey.runner.evaluate_scenario`) stays
as the cross-checked reference — ``use_context(batch=False)`` forces it, and
the differential suite ``tests/test_survey_batch.py`` pins the two paths'
records byte-identical (``elapsed_seconds`` timings aside).  Any signature
group or simulation phase the batched kernels cannot handle falls back to
the reference path for exactly the affected scenarios, so failure semantics
(one bad pair must not kill a sweep) are preserved record for record.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import (
    stack_host_index_arrays,
    stacked_congestion,
    stacked_dilation_summary,
)
from ..exceptions import UnsupportedEmbeddingError
from ..graphs.base import CartesianGraph, make_graph
from ..netsim import (
    HostNetwork,
    simulate_endpoint_phases,
    traffic_pattern,
    traffic_rank_arrays,
)
from ..runtime.context import current
from ..runtime.registry import build_strategy
from ..types import GraphKind
from .scenarios import Scenario
from .store import SurveyRecord

__all__ = ["evaluate_shard_batched"]

#: A graph identity: (kind value, shape) — the unit of graph/traffic sharing.
GraphSpec = Tuple[str, Tuple[int, ...]]


def _shared_edge_arrays(guest: CartesianGraph, cache):
    """The guest's ``(u, v)`` edge ranks, via the context memo when present."""
    if cache is not None:
        arrays = cache.fetch_edge_arrays(guest)
        if arrays is not None:
            return arrays
    arrays = guest.edge_index_arrays()
    if cache is not None:
        cache.store_edge_arrays(guest, arrays)
    return arrays


class _ShardState:
    """Per-shard memo of graphs, networks, traffic patterns and builds."""

    def __init__(self):
        self.context = current()
        self.cache = self.context.cache
        self.graphs: Dict[GraphSpec, CartesianGraph] = {}
        self.networks: Dict[GraphSpec, HostNetwork] = {}
        self.patterns: Dict[Tuple[str, GraphSpec], Tuple[str, object]] = {}
        self.builds: Dict[Tuple[str, GraphSpec, GraphSpec], Tuple[str, object]] = {}

    def graph(self, kind: str, shape) -> CartesianGraph:
        spec = (kind, tuple(shape))
        graph = self.graphs.get(spec)
        if graph is None:
            graph = make_graph(GraphKind(kind), spec[1])
            self.graphs[spec] = graph
        return graph

    def network(self, host: CartesianGraph) -> HostNetwork:
        spec = (host.kind.value, host.shape)
        network = self.networks.get(spec)
        if network is None:
            network = HostNetwork(host)
            self.networks[spec] = network
        return network

    def endpoints(self, name: str, guest: CartesianGraph) -> Tuple[str, object]:
        """``("ok", (source_ranks, target_ranks, sizes))`` or ``("error", msg)``.

        Memoized per ``(pattern, guest signature)``.  The three built-in
        patterns come from the vectorized rank generators
        (:func:`repro.netsim.traffic.traffic_rank_arrays` — no ``Message``
        tuples); plugin patterns fall back to building the pattern once and
        converting it, and unknown names memoize the same error message the
        reference path records.
        """
        key = (name, (guest.kind.value, guest.shape))
        entry = self.patterns.get(key)
        if entry is None:
            try:
                arrays = traffic_rank_arrays(name, guest)
                if arrays is None:
                    arrays = traffic_pattern(name, guest).endpoint_rank_arrays(
                        guest.shape
                    )
                entry = ("ok", arrays)
            except Exception as error:  # noqa: BLE001 - mirrored as an error record
                entry = ("error", f"{type(error).__name__}: {error}")
            self.patterns[key] = entry
        return entry

    def embedding(
        self, strategy: str, guest: CartesianGraph, host: CartesianGraph
    ) -> Tuple[str, object]:
        """``("ok", embedding)``, ``("unsupported", msg)`` or ``("error", msg)``.

        Memoized per ``(strategy, guest, host)`` signature; the underlying
        builder already memoizes through the context cache when one is
        installed, so the local dict only removes repeated Python dispatch
        within the shard.
        """
        key = (strategy, (guest.kind.value, guest.shape), (host.kind.value, host.shape))
        entry = self.builds.get(key)
        if entry is None:
            try:
                entry = ("ok", build_strategy(strategy, guest, host))
            except UnsupportedEmbeddingError as error:
                entry = ("unsupported", str(error))
            except Exception as error:  # noqa: BLE001 - mirrored as an error record
                entry = ("error", f"{type(error).__name__}: {error}")
            self.builds[key] = entry
        return entry


def _group_metrics(state: _ShardState, guest, host, embeddings, with_congestion):
    """Stacked ``strategy row -> (dilation, average, congestion)`` columns.

    ``embeddings`` is the signature group's ``row key -> Embedding`` dict (in
    insertion order).  One fused pass over the shared edge-index arrays per
    group; raises only if the stacked kernels themselves fail, in which case
    the caller falls back to the per-scenario reference for the group.
    """
    rows = list(embeddings)
    edge_u, edge_v = _shared_edge_arrays(guest, state.cache)
    images = stack_host_index_arrays([embeddings[row] for row in rows], host)
    dilation, average = stacked_dilation_summary(host, edge_u, edge_v, images)
    congestion = (
        stacked_congestion(host, edge_u, edge_v, images) if with_congestion else None
    )
    return {
        row: (
            int(dilation[offset]),
            float(average[offset]),
            int(congestion[offset]) if congestion is not None else None,
        )
        for offset, row in enumerate(rows)
    }


def evaluate_shard_batched(
    scenarios: Sequence[Scenario], options
) -> List[SurveyRecord]:
    """Evaluate one shard through the batched kernels (array backend only).

    Returns records in scenario order, byte-identical to
    ``[evaluate_scenario(s, options) for s in scenarios]`` up to the
    ``elapsed_seconds`` timing column (batched records carry the per-record
    share of the shard's wall time).
    """
    from .runner import _evaluate_scenario, _record_base  # lazy: runner imports us

    started = time.perf_counter()
    state = _ShardState()
    records: List[Optional[SurveyRecord]] = [None] * len(scenarios)

    # ---------------------------------------------------------------- #
    # Pass 1: resolve graphs and constructions, group by signature.
    # ---------------------------------------------------------------- #
    groups: Dict[Tuple[GraphSpec, GraphSpec], Dict] = {}
    sim_jobs: List[Dict] = []
    for position, scenario in enumerate(scenarios):
        if scenario.faults or scenario.strategy == "optimize":
            # Degraded-host scenarios repair around a per-scenario fault
            # mask — nothing to share across the shard — so they take the
            # reference path wholesale (its record, byte for byte).  Search
            # scenarios likewise: the optimizer *is* the batched computation
            # (its population already rides the stacked kernels), so the
            # shard-level grouping has nothing further to fuse.
            records[position] = _evaluate_scenario(scenario, options)
            continue
        guest = state.graph(scenario.guest_kind, scenario.guest_shape)
        host = state.graph(scenario.host_kind, scenario.host_shape)
        base = _record_base(scenario, guest, host)
        # Embedding scenarios always measure the paper dispatcher's
        # construction (the reference path calls `embed` directly, which is
        # the registry's "paper" builder); simulation scenarios build the
        # strategy they name.
        strategy = scenario.strategy if scenario.traffic else "paper"
        status, payload = state.embedding(strategy, guest, host)
        if status != "ok":
            records[position] = SurveyRecord(status=status, error=payload, **base)
            continue
        signature = ((guest.kind.value, guest.shape), (host.kind.value, host.shape))
        group = groups.setdefault(
            signature, {"guest": guest, "host": host, "rows": {}, "uses": []}
        )
        group["rows"].setdefault(strategy, payload)
        group["uses"].append((position, strategy, scenario, base))
        if scenario.traffic:
            sim_jobs.append(
                {
                    "position": position,
                    "signature": signature,
                    "strategy": strategy,
                    "scenario": scenario,
                    "base": base,
                    "embedding": payload,
                    "network": state.network(host),
                }
            )

    # ---------------------------------------------------------------- #
    # Pass 2: stacked metric kernels, one fused pass per signature.
    # ---------------------------------------------------------------- #
    metrics: Dict[Tuple[Tuple[GraphSpec, GraphSpec], str], Tuple] = {}
    for signature, group in groups.items():
        try:
            columns = _group_metrics(
                state, group["guest"], group["host"], group["rows"], options.with_congestion
            )
        except Exception:  # noqa: BLE001 - group falls back to the reference path
            continue
        for row, values in columns.items():
            metrics[(signature, row)] = values

    # ---------------------------------------------------------------- #
    # Pass 3: all simulation phases through one vectorized event loop.
    # ---------------------------------------------------------------- #
    outcomes: Dict[int, object] = {}  # position -> SimulationResult | Exception
    ready_jobs = []
    for job in sim_jobs:
        if (job["signature"], job["strategy"]) not in metrics:
            # The group's stacked metrics already fell back: pass 4 hands
            # the whole scenario to the reference evaluator, which runs its
            # own simulation — don't advance the phase twice.
            continue
        status, payload = state.endpoints(
            job["scenario"].traffic, groups[job["signature"]]["guest"]
        )
        if status != "ok":
            records[job["position"]] = SurveyRecord(
                status="error", error=payload, **job["base"]
            )
        else:
            job["endpoints"] = payload
            ready_jobs.append(job)
    if ready_jobs:
        triples = [
            (job["network"], job["embedding"], job["endpoints"]) for job in ready_jobs
        ]
        try:
            results = simulate_endpoint_phases(triples)
        except Exception:  # noqa: BLE001 - isolate the failing phase(s)
            results = []
            for triple in triples:
                try:
                    results.append(simulate_endpoint_phases([triple])[0])
                except Exception as error:  # noqa: BLE001
                    results.append(error)
        for job, result in zip(ready_jobs, results):
            outcomes[job["position"]] = result

    # ---------------------------------------------------------------- #
    # Pass 4: assemble records column-wise, in scenario order.
    # ---------------------------------------------------------------- #
    for signature, group in groups.items():
        for position, strategy, scenario, base in group["uses"]:
            if records[position] is not None:
                continue
            values = metrics.get((signature, strategy))
            if values is None:
                # Stacked kernels declined this group: reference path.
                records[position] = _evaluate_scenario(scenario, options)
                continue
            dilation, average, congestion = values
            embedding = group["rows"][strategy]
            if not scenario.traffic:
                records[position] = SurveyRecord(
                    status="ok",
                    strategy=embedding.strategy,
                    predicted_dilation=embedding.predicted_dilation,
                    dilation=dilation,
                    average_dilation=average,
                    congestion=congestion,
                    matches_prediction=embedding.matches_prediction(measured=dilation),
                    **base,
                )
                continue
            outcome = outcomes.get(position)
            if outcome is None or isinstance(outcome, Exception):
                if isinstance(outcome, UnsupportedEmbeddingError):
                    records[position] = SurveyRecord(
                        status="unsupported", error=str(outcome), **base
                    )
                elif isinstance(outcome, Exception):
                    records[position] = SurveyRecord(
                        status="error",
                        error=f"{type(outcome).__name__}: {outcome}",
                        **base,
                    )
                else:  # no outcome recorded at all: reference path
                    records[position] = _evaluate_scenario(scenario, options)
                continue
            statistics = outcome.statistics
            records[position] = SurveyRecord(
                status="ok",
                strategy=scenario.strategy,
                predicted_dilation=embedding.predicted_dilation,
                dilation=dilation,
                average_dilation=average,
                congestion=congestion,
                matches_prediction=embedding.matches_prediction(measured=dilation),
                traffic=scenario.traffic,
                messages=statistics.num_messages,
                max_hops=statistics.max_hops,
                max_link_load=statistics.max_link_load_messages,
                estimated_time=statistics.estimated_completion_time,
                makespan=outcome.makespan,
                **base,
            )

    share = (time.perf_counter() - started) / max(len(scenarios), 1)
    return [
        record
        if record.elapsed_seconds
        else dataclasses.replace(record, elapsed_seconds=share)
        for record in records
    ]
