"""Scenario generation for embedding surveys.

A :class:`Scenario` names one guest/host pair by kind and shape — plain
strings and integer tuples so that scenarios pickle cheaply across worker
processes and serialize to JSON/CSV without adapters.

Two generation modes:

* :func:`all_pairs` — the exhaustive sweep: every ordered pair of shapes
  with the same node count up to a budget, crossed with every
  (guest kind, host kind) combination.  The paper studies same-size
  embeddings only (Definition 1 plus the bijectivity of ``u_L``), so pairs
  are grouped by node count.
* :func:`scenarios_for_suite` — named suites mirroring the paper's result
  tables (Section 3 basic embeddings, the Section 5 square chains, the
  worked figures) plus a tiny deterministic ``smoke`` suite for CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graphs.base import CartesianGraph, make_graph
from ..graphs.faults import FaultSpec
from ..types import GraphKind, Shape

__all__ = [
    "Scenario",
    "shapes_up_to",
    "all_pairs",
    "scenarios_for_suite",
    "suite_names",
    "SIMULATION_STRATEGIES",
    "SIMULATION_TRAFFIC",
    "FAULT_STRATEGIES",
]

_KIND_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("torus", "torus"),
    ("torus", "mesh"),
    ("mesh", "torus"),
    ("mesh", "mesh"),
)


@dataclass(frozen=True, order=True)
class Scenario:
    """One guest/host pair of a survey, identified by kinds and shapes.

    Three scenario flavours share the type:

    * *embedding scenarios* (``traffic == ""``, the default) — embed with the
      paper's dispatcher and measure the vectorized costs.  The guest may be
      strictly smaller than the host (an *expansion* pair): the dispatcher
      then produces an injective sub-embedding;
    * *simulation scenarios* (``traffic`` names a pattern of
      :func:`repro.netsim.traffic.traffic_pattern`) — build the embedding
      named by ``strategy`` (the paper's dispatcher or a baseline), place the
      traffic on the host network and run the store-and-forward simulation;
    * *fault scenarios* (``faults`` carries a
      :class:`~repro.graphs.faults.FaultSpec` token like ``n1l2s5``) — build
      the strategy on the pristine host, knock out the spec's nodes/links,
      repair the embedding around the dead images and measure the degraded
      dilation over surviving routes; with ``traffic`` also set, the phase
      simulation runs fault-aware (BFS detours around cut routes).
    """

    guest_kind: str
    guest_shape: Shape
    host_kind: str
    host_shape: Shape
    strategy: str = "paper"
    traffic: str = ""
    faults: str = ""

    @property
    def scenario_id(self) -> str:
        """Canonical id (stable sort key), e.g. ``torus:4,6->mesh:2,2,2,3``;
        simulation scenarios append ``|<strategy>|<traffic>`` and fault
        scenarios ``|<strategy>|<traffic>|<faults>`` (traffic may be empty).
        Any non-default strategy — e.g. the ``optimize`` search scenarios —
        also appends the ``|<strategy>|<traffic>`` block (with an empty
        traffic cell), so ids never collide with the plain embedding form."""
        guest = ",".join(str(length) for length in self.guest_shape)
        host = ",".join(str(length) for length in self.host_shape)
        base = f"{self.guest_kind}:{guest}->{self.host_kind}:{host}"
        if self.faults:
            return f"{base}|{self.strategy}|{self.traffic}|{self.faults}"
        if self.traffic or self.strategy != "paper":
            return f"{base}|{self.strategy}|{self.traffic}"
        return base

    @property
    def nodes(self) -> int:
        """Node count of the guest (== host for same-size pairs)."""
        return math.prod(self.guest_shape)

    def guest_graph(self) -> CartesianGraph:
        return make_graph(GraphKind(self.guest_kind), self.guest_shape)

    def host_graph(self) -> CartesianGraph:
        return make_graph(GraphKind(self.host_kind), self.host_shape)

    def fault_spec(self) -> Optional[FaultSpec]:
        """The parsed :class:`FaultSpec`, or ``None`` for pristine scenarios."""
        return FaultSpec.from_token(self.faults) if self.faults else None

    @classmethod
    def from_id(cls, scenario_id: str) -> "Scenario":
        """Parse the :attr:`scenario_id` format back into a Scenario."""
        strategy, traffic, faults = "paper", "", ""
        if "|" in scenario_id:
            parts = scenario_id.split("|")
            if len(parts) == 4:
                scenario_id, strategy, traffic, faults = parts
            else:
                scenario_id, strategy, traffic = parts
        guest_text, host_text = scenario_id.split("->", 1)
        guest_kind, guest_shape = guest_text.split(":", 1)
        host_kind, host_shape = host_text.split(":", 1)
        return cls(
            guest_kind=guest_kind,
            guest_shape=tuple(int(p) for p in guest_shape.split(",")),
            host_kind=host_kind,
            host_shape=tuple(int(p) for p in host_shape.split(",")),
            strategy=strategy,
            traffic=traffic,
            faults=faults,
        )


def shapes_up_to(
    max_nodes: int, *, min_len: int = 2, max_dim: int = 4, min_nodes: int = 4
) -> List[Shape]:
    """All shapes with ``min_nodes <= Π l_i <= max_nodes`` in deterministic order.

    Every dimension length is at least ``min_len`` (the radix-base
    requirement ``l_j > 1``) and at most ``max_dim`` dimensions are used.
    Shapes are ordered by node count, then dimension, then lexicographically,
    so two runs over the same budget enumerate identical scenario lists.
    """
    if max_nodes < min_nodes:
        return []
    found: List[Shape] = []

    def extend(prefix: Tuple[int, ...], product: int) -> None:
        if prefix and product >= min_nodes:
            found.append(prefix)
        if len(prefix) == max_dim:
            return
        length = min_len
        while product * length <= max_nodes:
            extend(prefix + (length,), product * length)
            length += 1

    extend((), 1)
    found.sort(key=lambda shape: (math.prod(shape), len(shape), shape))
    return found


def all_pairs(
    max_nodes: int,
    *,
    min_len: int = 2,
    max_dim: int = 4,
    min_nodes: int = 4,
    include_identical: bool = False,
) -> List[Scenario]:
    """The exhaustive same-size sweep up to a node budget.

    Every ordered pair of same-product shapes is crossed with the four
    (guest kind, host kind) combinations.  ``include_identical`` keeps the
    pairs where guest and host are the same kind *and* shape (the identity
    embedding); they are excluded by default as trivial.
    """
    by_size: Dict[int, List[Shape]] = {}
    for shape in shapes_up_to(max_nodes, min_len=min_len, max_dim=max_dim, min_nodes=min_nodes):
        by_size.setdefault(math.prod(shape), []).append(shape)
    scenarios: List[Scenario] = []
    for size in sorted(by_size):
        group = by_size[size]
        for guest_shape in group:
            for host_shape in group:
                for guest_kind, host_kind in _KIND_PAIRS:
                    if (
                        not include_identical
                        and guest_kind == host_kind
                        and guest_shape == host_shape
                    ):
                        continue
                    scenarios.append(
                        Scenario(guest_kind, guest_shape, host_kind, host_shape)
                    )
    return scenarios


# --------------------------------------------------------------------- #
# Named suites
# --------------------------------------------------------------------- #
def _suite_smoke() -> List[Scenario]:
    """A tiny deterministic suite for CI: a few pairs per strategy family."""
    pairs = [
        ("torus", (4, 6), "mesh", (2, 2, 2, 3)),      # increasing (Theorem 32)
        ("mesh", (4, 6), "torus", (24,)),             # lowering to a ring
        ("torus", (3, 4), "mesh", (3, 4)),            # same-shape T_L (Lemma 36)
        ("mesh", (2, 3, 4), "mesh", (4, 3, 2)),       # permute dimensions
        ("mesh", (24,), "torus", (2, 3, 4)),          # line via f_L (Section 3)
        ("torus", (24,), "mesh", (4, 6)),             # ring via h_L (Section 3)
        ("mesh", (3, 3, 6), "mesh", (6, 9)),          # lowering-general (Figure 12)
        ("torus", (4, 4), "torus", (2, 2, 2, 2)),     # square chain / expansion
    ]
    return [Scenario(gk, gs, hk, hs) for gk, gs, hk, hs in pairs]


def _suite_basic(max_nodes: int) -> List[Scenario]:
    """Section 3's table: lines and rings into every shape up to the budget."""
    scenarios: List[Scenario] = []
    for shape in shapes_up_to(max_nodes, min_nodes=4):
        if len(shape) == 1:
            continue
        size = math.prod(shape)
        for host_kind in ("mesh", "torus"):
            scenarios.append(Scenario("mesh", (size,), host_kind, shape))
            scenarios.append(Scenario("torus", (size,), host_kind, shape))
    return scenarios


def _suite_squares(max_nodes: int) -> List[Scenario]:
    """The Section 5 square chains: ``l^k`` guests into ``m^j`` hosts."""
    squares: List[Shape] = []
    for length in range(2, max_nodes + 1):
        for dim in range(1, 13):
            if length**dim > max_nodes:
                break
            squares.append((length,) * dim)
    scenarios: List[Scenario] = []
    for guest_shape in squares:
        for host_shape in squares:
            if guest_shape == host_shape:
                continue
            if math.prod(guest_shape) != math.prod(host_shape):
                continue
            for guest_kind, host_kind in _KIND_PAIRS:
                scenarios.append(Scenario(guest_kind, guest_shape, host_kind, host_shape))
    return scenarios


#: Embedding strategies crossed into the simulation suite (resolved by the
#: runtime's plugin registry, :mod:`repro.runtime.registry`: the paper's
#: dispatcher plus the baselines).
SIMULATION_STRATEGIES: Tuple[str, ...] = ("paper", "lexicographic", "bfs", "random")

#: Traffic patterns crossed into the simulation suite (resolved by
#: :func:`repro.netsim.traffic.traffic_pattern`).
SIMULATION_TRAFFIC: Tuple[str, ...] = (
    "neighbor-exchange",
    "transpose",
    "all-to-all-groups",
    "random-permutation",
    "hotspot",
    "bursty",
)

#: Strategies crossed into the degraded-host suite — the paper's dispatcher
#: against the re-mapping baselines, all repaired around the same faults.
FAULT_STRATEGIES: Tuple[str, ...] = ("paper", "bfs", "random")


def _suite_simulation(max_nodes: int) -> List[Scenario]:
    """The end-to-end pipeline sweep: embed → place → route → simulate.

    Known-good guest/host pairs (every strategy applies, every guest is
    multi-dimensional so no pattern degenerates) crossed with each embedding
    strategy and each traffic pattern.  Pairs above the node budget are
    dropped, so ``--max-nodes 48`` (the CLI default) keeps a CI-friendly
    sweep while larger budgets add the paper's task-mapping scenarios.
    """
    pairs = [
        ("torus", (4, 6), "mesh", (2, 2, 2, 3)),
        ("mesh", (4, 6), "torus", (24,)),
        ("torus", (3, 4), "mesh", (3, 4)),
        ("torus", (4, 4), "mesh", (2, 2, 2, 2)),
        ("torus", (8, 8), "mesh", (4, 4, 4)),
        ("mesh", (16, 4), "torus", (4, 4, 4)),
        ("torus", (4, 4, 4), "mesh", (8, 8)),
        # Table-scale task-mapping pairs (the paper's result tables reach
        # thousands of nodes); included only when the node budget allows.
        ("torus", (16, 16), "mesh", (4, 4, 4, 4)),
        ("mesh", (16, 16), "torus", (4, 4, 4, 4)),
        ("torus", (4, 4, 4, 4), "mesh", (16, 16)),
    ]
    scenarios: List[Scenario] = []
    for guest_kind, guest_shape, host_kind, host_shape in pairs:
        if math.prod(guest_shape) > max_nodes:
            continue
        for strategy in SIMULATION_STRATEGIES:
            for traffic in SIMULATION_TRAFFIC:
                scenarios.append(
                    Scenario(
                        guest_kind,
                        guest_shape,
                        host_kind,
                        host_shape,
                        strategy=strategy,
                        traffic=traffic,
                    )
                )
    return scenarios


def _suite_expansion() -> List[Scenario]:
    """Unequal-size pairs: a smaller guest sub-embedded into a larger host.

    Every supported pair routes through the dispatcher's ``subshape``
    strategy (componentwise sub-box plus an inner same-size embed); the two
    no-sub-box pairs stay in the suite to pin the graceful ``unsupported``
    record.
    """
    pairs = [
        ("torus", (2, 3), "mesh", (3, 4)),     # 6 tasks on 12 processors
        ("mesh", (4,), "torus", (3, 3)),       # line into a larger torus
        ("torus", (2, 2, 2), "mesh", (4, 4)),  # cube into a square
        ("mesh", (3, 3), "torus", (4, 3)),     # same-width sub-box
        ("torus", (4, 4), "mesh", (4, 5)),     # one spare column
        ("torus", (6,), "mesh", (3, 3)),       # ring via h_L in a sub-box
        ("mesh", (8,), "mesh", (3, 4)),        # line in a 4x2 sub-box
        ("mesh", (2, 6), "mesh", (4, 4)),      # no sub-box: unsupported
        ("mesh", (24,), "mesh", (5, 5)),       # no sub-box: unsupported
    ]
    return [Scenario(gk, gs, hk, hs) for gk, gs, hk, hs in pairs]


def _suite_faults() -> List[Scenario]:
    """Degraded hosts: seeded node/link knockouts, repair and re-measurement.

    Same-size pairs use link-only faults (no free processors to repair onto);
    expansion pairs add node faults, exercised against every re-mapping
    strategy.  One traffic scenario runs the fault-aware store-and-forward
    simulation end to end.
    """
    entries = [
        # (pair, fault token): link-only on the same-size pair, node+link on
        # the expansion pairs (their free processors absorb repairs).
        (("torus", (3, 4), "mesh", (3, 4)), "n0l2s7"),
        (("torus", (2, 3), "mesh", (3, 4)), "n1l1s5"),
        (("mesh", (8,), "mesh", (3, 4)), "n2l0s3"),
    ]
    scenarios = [
        Scenario(gk, gs, hk, hs, strategy=strategy, faults=token)
        for (gk, gs, hk, hs), token in entries
        for strategy in FAULT_STRATEGIES
    ]
    scenarios.append(
        Scenario(
            "torus",
            (2, 3),
            "mesh",
            (3, 4),
            strategy="paper",
            traffic="neighbor-exchange",
            faults="n1l1s5",
        )
    )
    return scenarios


def _suite_optima() -> List[Scenario]:
    """The search suite: can the optimizer beat (or match) the constructions?

    Same-size pairs run through :func:`repro.optimize.optimize_embedding`
    under the fixed :data:`repro.optimize.SUITE_OPTIONS` configuration, so
    the records — including the ``search_objective`` / ``search_steps`` /
    ``improved`` columns — are deterministic and golden-pinned.  The
    ``torus:8,8->mesh:8,8`` pair is the acceptance-pinned one: the paper's
    dilation-2 folding is in the seed population, so the searched objective
    is never worse than the construction's.
    """
    pairs = [
        ("torus", (8, 8), "mesh", (8, 8)),   # the pinned pair (T_L folding)
        ("torus", (4, 4), "mesh", (4, 4)),   # small same-shape torus drop
        ("mesh", (4, 4), "torus", (4, 4)),   # dilation-1 identity: search ties
        ("mesh", (2, 12), "torus", (4, 6)),  # no paper construction: search improves
        ("torus", (3, 8), "mesh", (6, 4)),   # no paper construction: baseline seeds
    ]
    return [Scenario(gk, gs, hk, hs, strategy="optimize") for gk, gs, hk, hs in pairs]


def _suite_figures() -> List[Scenario]:
    """The worked figures of the paper (Figures 10-12 plus the abstract pair)."""
    pairs = [
        ("mesh", (24,), "mesh", (4, 2, 3)),
        ("torus", (24,), "mesh", (4, 2, 3)),
        ("torus", (4, 6), "mesh", (2, 2, 2, 3)),
        ("mesh", (3, 3, 6), "mesh", (6, 9)),
    ]
    return [Scenario(gk, gs, hk, hs) for gk, gs, hk, hs in pairs]


def scenarios_for_suite(suite: str, *, max_nodes: int = 64) -> List[Scenario]:
    """Scenarios of a named suite (see :func:`suite_names`).

    ``exhaustive`` is the :func:`all_pairs` sweep over ``max_nodes``; the
    other suites mirror the paper's tables and figures.
    """
    if suite == "exhaustive":
        return all_pairs(max_nodes)
    if suite == "smoke":
        return _suite_smoke()
    if suite == "basic":
        return _suite_basic(max_nodes)
    if suite == "squares":
        return _suite_squares(max_nodes)
    if suite == "figures":
        return _suite_figures()
    if suite == "simulation":
        return _suite_simulation(max_nodes)
    if suite == "expansion":
        return _suite_expansion()
    if suite == "faults":
        return _suite_faults()
    if suite == "optima":
        return _suite_optima()
    raise ValueError(f"unknown suite {suite!r}; choose from {', '.join(suite_names())}")


def suite_names() -> List[str]:
    """The named suites accepted by :func:`scenarios_for_suite`."""
    return [
        "exhaustive",
        "smoke",
        "basic",
        "squares",
        "figures",
        "simulation",
        "expansion",
        "faults",
        "optima",
    ]
