"""The parallel survey engine.

:func:`run_survey` evaluates a list of scenarios — embed with the paper's
dispatcher (array-first construction), measure the vectorized costs — across
a pool of worker processes.  The scenario list is split into contiguous
*shards*; each worker evaluates one shard at a time and (optionally) spills
it to a JSON shard file.  On the next run over the same scenario list with
the same ``shard_dir``, finished shard files are loaded instead of
recomputed (crash resume); the result merge is deterministic regardless of
scheduling order either way.

The engine runs under the ambient execution context
(:mod:`repro.runtime.context`): the context supplies the backend, the
default worker count and shard size, and — when it carries a
:class:`~repro.runtime.cache.ConstructionCache` — the construction memo.
The whole context (cache included, as the warm start) is installed once in
every worker process; each finished shard ships its newly memoized entries
back so the parent's cache keeps growing across shards and invocations.

``workers <= 1`` (or a single shard) runs inline in the calling process —
the mode used by tests and ``repro survey --smoke``.

**Failure model.**  A shard attempt that raises (a crashed worker, a torn
shard write, an injected chaos fault) is retried with capped exponential
backoff and deterministic jitter (:class:`~repro.utils.backoff.BackoffPolicy`)
up to ``SurveyOptions.max_shard_attempts``; a shard that keeps failing is
*quarantined* — its scenarios are recorded with status ``"failed"`` and the
sweep keeps going.  A worker process dying outright (``os._exit``, OOM,
SIGKILL) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`;
the runner respawns the pool and resubmits **only the unfinished shards**
(the same frontier crash-resume uses), charging one attempt to each shard
that was in flight when the pool broke.  ``SurveyOptions.shard_timeout``
adds a per-shard deadline: a shard still running past it is treated like a
crash (pool recycled, attempt charged).  All recovery traffic — retries,
pool respawns, quarantines, injected faults — is reported on
:class:`SurveyReport`.  The chaos plane (:mod:`repro.runtime.chaos`)
injects ``worker_crash``/``slow_io`` faults at the ``survey.shard`` site,
keyed by ``(shard, attempt)`` so a seeded schedule replays identically and
the retry of a crashed shard draws a fresh decision.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fault_tolerance import fault_dilation_summary, repair_embedding
from ..analysis.metrics import evaluate_embedding
from ..core.dispatch import embed
from ..exceptions import UnsupportedEmbeddingError
from ..netsim import HostNetwork, simulate_phase, traffic_pattern
from ..runtime.chaos import (
    InjectedFault,
    chaos_counters,
    inject,
    merge_chaos_counters,
)
from ..runtime.context import (
    ExecutionContext,
    current,
    set_default_context,
    use_context,
)
from ..runtime.registry import build_strategy
from ..utils.backoff import BackoffPolicy
from ..utils.rng import SplitMix64
from .scenarios import Scenario
from .store import SurveyRecord, read_json, write_json

__all__ = [
    "SurveyOptions",
    "SurveyReport",
    "run_survey",
    "evaluate_scenario",
    "evaluate_shard",
]

#: Default per-shard retry policy: three attempts, 50ms → 2s capped
#: exponential backoff with half jitter.  One policy instance — the
#: dataclass is frozen — shared by every :class:`SurveyOptions` default.
DEFAULT_SHARD_BACKOFF = BackoffPolicy(
    max_attempts=3, base_delay=0.05, max_delay=2.0, factor=4.0, jitter=0.5
)


@dataclass(frozen=True)
class SurveyOptions:
    """Knobs of a survey run.

    Attributes
    ----------
    workers:
        Worker process count; ``None`` defers to the execution context
        (whose own default is ``os.cpu_count()``), ``0``/``1`` runs
        sequentially in-process.
    shard_size:
        Scenarios per shard (the unit of work handed to a worker); ``None``
        defers to the execution context.
    shard_dir:
        When set, each finished shard is written there as
        ``shard-<k>.json`` before the merged result is assembled.
    with_congestion:
        Also measure edge congestion (vectorized; moderately more work).
    method:
        Deprecated backend override — prefer wrapping the run in
        ``use_context(backend=...)``.  When set, the whole run (workers
        included) executes under that backend.
    resume:
        When set (the default) and ``shard_dir`` holds a finished shard file
        whose records match the shard's scenario ids and these options
        (congestion measured iff requested), the file is loaded instead of
        recomputing the shard — crash resume for long sweeps.
    retry:
        The per-shard retry policy: ``retry.max_attempts`` total tries per
        shard (the quarantine threshold), with the policy's capped jittered
        exponential backoff between them.
    shard_timeout:
        Per-shard deadline in seconds (pooled runs only): a shard still
        running past it is treated like a worker crash — the pool is
        recycled, the shard is charged an attempt and retried.  ``None``
        (the default) disables the deadline.
    """

    workers: Optional[int] = None
    shard_size: Optional[int] = None
    shard_dir: Optional[str] = None
    with_congestion: bool = False
    method: Optional[str] = None  # stays 5th: positional callers predate it
    resume: bool = True
    retry: BackoffPolicy = DEFAULT_SHARD_BACKOFF
    shard_timeout: Optional[float] = None


@dataclass
class SurveyReport:
    """Outcome of :func:`run_survey`: merged records plus run metadata.

    The recovery counters report the run's fault traffic: ``retries`` is
    every shard attempt after the first, ``crash_recoveries`` every pool
    respawn after a broken worker (or a shard deadline), ``quarantined``
    the shards abandoned after exhausting their attempts (their scenarios
    carry status ``"failed"``), and ``chaos_faults`` the injected-fault
    tally (``site:kind`` → count) when a chaos plan was active.
    """

    records: List[SurveyRecord]
    elapsed_seconds: float
    workers: int
    shard_paths: List[str] = field(default_factory=list)
    reused_shard_indices: List[int] = field(default_factory=list)
    cache_entries: int = 0  # memoized constructions in the context cache
    retries: int = 0
    crash_recoveries: int = 0
    quarantined: int = 0
    chaos_faults: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> List[SurveyRecord]:
        return [record for record in self.records if record.status == "ok"]

    @property
    def unsupported(self) -> List[SurveyRecord]:
        return [record for record in self.records if record.status == "unsupported"]

    @property
    def failed(self) -> List[SurveyRecord]:
        """Records that did not produce a measurement: unexpected errors
        (status ``"error"``) and quarantined scenarios (status ``"failed"``)."""
        return [record for record in self.records if record.status in ("error", "failed")]

    def strategy_histogram(self) -> Dict[str, int]:
        """Measured-record count per strategy name, alphabetically."""
        histogram: Dict[str, int] = {}
        for record in self.ok:
            histogram[record.strategy or "?"] = histogram.get(record.strategy or "?", 0) + 1
        return dict(sorted(histogram.items()))

    def summary_rows(self) -> List[Dict[str, object]]:
        """Tabular summary used by the CLI (one row per strategy).

        When the report contains simulation records a ``mean makespan``
        column is appended (averaged over each strategy's simulated phases).
        """
        with_makespan = any(r.makespan is not None for r in self.ok)
        rows: List[Dict[str, object]] = []
        for strategy, count in self.strategy_histogram().items():
            group = [r for r in self.ok if r.strategy == strategy]
            row: Dict[str, object] = {
                "strategy": strategy,
                "pairs": count,
                "max dilation": max(r.dilation for r in group),
                "mean avg-dilation": round(
                    sum(r.average_dilation for r in group) / count, 3
                ),
                "prediction holds": sum(1 for r in group if r.matches_prediction),
            }
            if with_makespan:
                simulated = [r.makespan for r in group if r.makespan is not None]
                row["mean makespan"] = (
                    round(sum(simulated) / len(simulated), 1) if simulated else "-"
                )
            rows.append(row)
        return rows


def _options_backend_override(options: SurveyOptions):
    """The deprecated ``SurveyOptions.method`` shim: a scoped backend override."""
    if options.method is None:
        return use_context()  # no-op scope: keeps the call sites uniform
    warnings.warn(
        "SurveyOptions(method=...) is deprecated and will be removed in "
        "repro 2.0; wrap run_survey in repro.runtime.use_context(backend=...) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return use_context(backend=options.method)


def evaluate_scenario(scenario: Scenario, options: SurveyOptions) -> SurveyRecord:
    """Embed and measure one scenario, capturing failures as record status.

    Embedding scenarios measure the vectorized costs; simulation scenarios
    (``scenario.traffic`` set) additionally place the named traffic pattern
    on the host network and run the store-and-forward phase simulation.  The
    backend and the construction memo come from the ambient context.
    """
    with _options_backend_override(options):
        return _evaluate_scenario(scenario, options)


def _record_base(scenario: Scenario, guest, host) -> Dict[str, object]:
    """The identification columns shared by every record of a scenario.

    One definition for both evaluation paths: the per-scenario reference
    below and the batched shard evaluator (:mod:`repro.survey.batch`), whose
    byte-identity contract would silently break if the two drifted.
    """
    return dict(
        scenario_id=scenario.scenario_id,
        guest=repr(guest),
        host=repr(host),
        nodes=host.size,
        guest_edges=guest.num_edges(),
        guest_size=guest.size,
        faults=scenario.faults or None,
    )


def _evaluate_fault_scenario(
    scenario: Scenario, guest, host, base, options: SurveyOptions, started: float
) -> SurveyRecord:
    """Build on the pristine host, degrade, repair, re-measure.

    The named strategy is constructed (and cached) for the *pristine* host;
    the scenario's fault spec then knocks out nodes/links, the embedding is
    repaired around the dead images and the dilation columns report distances
    over the *surviving* links — the paper-construction decay measurement.
    ``congestion`` and ``matches_prediction`` stay ``None``: neither is
    defined on a degraded host.  With ``traffic`` set, the store-and-forward
    simulation runs fault-aware on the repaired embedding.
    """
    embedding = build_strategy(scenario.strategy, guest, host)
    faults = scenario.fault_spec().apply(host)
    repaired = repair_embedding(embedding, faults)
    dilation, average_dilation = fault_dilation_summary(repaired, faults)
    columns: Dict[str, object] = {}
    if scenario.traffic:
        pattern = traffic_pattern(scenario.traffic, guest)
        result = simulate_phase(HostNetwork(host), repaired, pattern, faults=faults)
        statistics = result.statistics
        columns = dict(
            traffic=scenario.traffic,
            messages=statistics.num_messages,
            max_hops=statistics.max_hops,
            max_link_load=statistics.max_link_load_messages,
            estimated_time=statistics.estimated_completion_time,
            makespan=result.makespan,
        )
    return SurveyRecord(
        status="ok",
        strategy=scenario.strategy,
        predicted_dilation=embedding.predicted_dilation,
        dilation=dilation,
        average_dilation=average_dilation,
        congestion=None,
        matches_prediction=None,
        elapsed_seconds=time.perf_counter() - started,
        **columns,
        **base,
    )


def _evaluate_optimize_scenario(
    scenario: Scenario, guest, host, base, options: SurveyOptions, started: float
) -> SurveyRecord:
    """Run the embedding search and report what it found.

    The search configuration is the fixed
    :data:`repro.optimize.SUITE_OPTIONS` (pinned by the golden tables); the
    ambient construction cache — when the context carries one — both
    warm-starts the population with the stored optimum and persists the
    search's best, so a prior ``repro optimize`` run is reused here and vice
    versa.  ``search_objective`` is the encoded integer objective,
    ``improved`` whether search beat the construction it was seeded from.
    """
    from ..optimize import SUITE_OPTIONS, optimize_embedding

    result = optimize_embedding(guest, host, SUITE_OPTIONS)
    guest_edges = base["guest_edges"]
    return SurveyRecord(
        status="ok",
        strategy=scenario.strategy,
        predicted_dilation=None,
        dilation=result.dilation,
        average_dilation=result.dilation_total / guest_edges if guest_edges else 0.0,
        congestion=result.congestion if options.with_congestion else None,
        matches_prediction=None,
        search_objective=result.objective,
        search_steps=result.steps,
        improved=result.improved,
        elapsed_seconds=time.perf_counter() - started,
        **base,
    )


def _evaluate_scenario(scenario: Scenario, options: SurveyOptions) -> SurveyRecord:
    guest = scenario.guest_graph()
    host = scenario.host_graph()
    base = _record_base(scenario, guest, host)
    started = time.perf_counter()
    try:
        if scenario.faults:
            return _evaluate_fault_scenario(
                scenario, guest, host, base, options, started
            )
        if scenario.strategy == "optimize" and not scenario.traffic:
            return _evaluate_optimize_scenario(
                scenario, guest, host, base, options, started
            )
        if scenario.traffic:
            embedding = build_strategy(scenario.strategy, guest, host)
            pattern = traffic_pattern(scenario.traffic, guest)
            result = simulate_phase(HostNetwork(host), embedding, pattern)
            statistics = result.statistics
            dilation = embedding.dilation()
            return SurveyRecord(
                status="ok",
                strategy=scenario.strategy,
                predicted_dilation=embedding.predicted_dilation,
                dilation=dilation,
                average_dilation=embedding.average_dilation(),
                congestion=(
                    embedding.edge_congestion() if options.with_congestion else None
                ),
                matches_prediction=embedding.matches_prediction(measured=dilation),
                traffic=scenario.traffic,
                messages=statistics.num_messages,
                max_hops=statistics.max_hops,
                max_link_load=statistics.max_link_load_messages,
                estimated_time=statistics.estimated_completion_time,
                makespan=result.makespan,
                elapsed_seconds=time.perf_counter() - started,
                **base,
            )
        embedding = embed(guest, host)
        report = evaluate_embedding(embedding, with_congestion=options.with_congestion)
        return SurveyRecord(
            status="ok",
            strategy=embedding.strategy,
            predicted_dilation=embedding.predicted_dilation,
            dilation=report.dilation,
            average_dilation=report.average_dilation,
            congestion=report.congestion,
            matches_prediction=embedding.matches_prediction(measured=report.dilation),
            elapsed_seconds=time.perf_counter() - started,
            **base,
        )
    except UnsupportedEmbeddingError as error:
        return SurveyRecord(
            status="unsupported",
            error=str(error),
            elapsed_seconds=time.perf_counter() - started,
            **base,
        )
    except Exception as error:  # noqa: BLE001 - one bad pair must not kill a sweep
        return SurveyRecord(
            status="error",
            error=f"{type(error).__name__}: {error}",
            elapsed_seconds=time.perf_counter() - started,
            **base,
        )


#: True inside a survey pool worker process (set by the pool initializer).
#: An injected ``worker_crash`` kills the *process* there — the real fault,
#: exercising ``BrokenProcessPool`` recovery — but only raises inline.
_IN_POOL_WORKER = False


def _install_worker_context(context: ExecutionContext) -> None:
    """Pool initializer: adopt the parent's context (cache = warm start)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    set_default_context(context)


def evaluate_shard(
    scenarios: Sequence[Scenario], options: SurveyOptions
) -> List[SurveyRecord]:
    """Evaluate one shard, batched by default.

    The ambient context routes the shard: ``batch=True`` (the default) with
    an array-capable backend goes through the stacked kernels of
    :mod:`repro.survey.batch`; ``use_context(batch=False)`` — or a resolved
    loop backend — runs the retained per-scenario reference.  Both produce
    identical records (``elapsed_seconds`` aside), which the differential
    suite ``tests/test_survey_batch.py`` pins.

    Public because the service layer (:mod:`repro.service`) answers whole
    coalesced request batches through exactly this routing.
    """
    context = current()
    if context.batch and context.use_array():
        from .batch import evaluate_shard_batched

        return evaluate_shard_batched(scenarios, options)
    return [_evaluate_scenario(scenario, options) for scenario in scenarios]


def _run_shard(
    shard_index: int,
    scenarios: Sequence[Scenario],
    options: SurveyOptions,
    attempt: int = 0,
) -> Tuple[int, List[SurveyRecord], Dict, Tuple[int, int], Dict[str, int]]:
    """Worker entry point: evaluate one shard under the ambient context.

    Returns the shard's records plus the construction-cache entries this
    shard added (relative to the shard start), so the parent can merge the
    delta and keep one growing memo across shards and invocations, the
    shard's (hits, misses) so pooled runs report true cache traffic, and
    the injected-fault tally delta so chaos counters survive the pool.

    ``attempt`` keys the chaos plane's ``survey.shard`` injection point: a
    seeded plan decides crash-or-not as a pure function of
    ``(shard, attempt)``, so the schedule replays identically whatever the
    pool scheduling, and a retried shard draws a *fresh* decision.
    """
    fault = inject(
        "survey.shard",
        key=("shard", shard_index, attempt),
        kinds=("worker_crash", "slow_io"),
    )
    if fault is not None:
        if _IN_POOL_WORKER:
            os._exit(1)  # a real crash: no cleanup, no result, broken pool
        raise InjectedFault(fault.kind, "survey.shard")
    chaos_before = chaos_counters()
    cache = current().cache
    records: List[SurveyRecord]
    delta: Dict = {}
    if cache is None:
        records = evaluate_shard(scenarios, options)
        counters = (0, 0)
    else:
        known = set(cache.data)
        hits, misses = cache.hits, cache.misses
        records = evaluate_shard(scenarios, options)
        delta = {key: cache.data[key] for key in cache.data.keys() - known}
        counters = (cache.hits - hits, cache.misses - misses)
    if options.shard_dir is not None:
        shard_path = Path(options.shard_dir) / f"shard-{shard_index:04d}.json"
        write_json(records, shard_path)
    chaos_delta = {
        label: count - chaos_before.get(label, 0)
        for label, count in chaos_counters().items()
        if count != chaos_before.get(label, 0)
    }
    return shard_index, records, delta, counters, chaos_delta


def _shards(scenarios: Sequence[Scenario], shard_size: int) -> List[Sequence[Scenario]]:
    size = max(1, shard_size)
    return [scenarios[start : start + size] for start in range(0, len(scenarios), size)]


def _load_finished_shard(
    path: Path, shard: Sequence[Scenario], options: SurveyOptions
) -> Optional[List[SurveyRecord]]:
    """Records of a previously finished shard file, or ``None``.

    A shard file is only reused when it parses, its record ids match the
    shard's scenario ids one-for-one (same sweep, same sharding) and its
    measured columns match the requested options (a shard written without
    congestion must not satisfy a ``with_congestion`` rerun, and vice
    versa); anything else — missing file, torn write, different scenario
    list or options — recomputes.  The backend is deliberately not
    fingerprinted: array and loop produce identical records by the
    differential contract.
    """
    if not path.is_file():
        return None
    try:
        records = read_json(path)
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if [record.scenario_id for record in records] != [
        scenario.scenario_id for scenario in shard
    ]:
        return None
    if any(
        (record.congestion is not None) != options.with_congestion
        for record in records
        if record.status == "ok"
    ):
        return None
    return records


def run_survey(
    scenarios: Sequence[Scenario], options: Optional[SurveyOptions] = None
) -> SurveyReport:
    """Evaluate every scenario and return the merged, deterministic report.

    Records are returned in the input scenario order whatever the worker
    scheduling; two runs over the same scenario list produce identical
    records (modulo the ``elapsed_seconds`` timings).  Parallelism policy
    resolves ``options`` first, then the ambient execution context; worker
    processes inherit the full context — backend, cache warm start and all.
    """
    options = options or SurveyOptions()
    with _options_backend_override(options):
        return _run_survey(scenarios, options)


@dataclass
class _Recovery:
    """Mutable recovery tally of one run (folded into the report)."""

    retries: int = 0
    crash_recoveries: int = 0
    quarantined: int = 0


def _quarantine_records(
    shard: Sequence[Scenario], error: BaseException
) -> List[SurveyRecord]:
    """Status-``"failed"`` records for a shard abandoned after N attempts.

    The identification columns are filled from the scenarios themselves
    (building the small graph objects is cheap and cannot crash a worker —
    it runs in the parent); the measurement columns stay ``None``.
    """
    message = f"quarantined after repeated shard failures: {type(error).__name__}: {error}"
    records = []
    for scenario in shard:
        try:
            guest = scenario.guest_graph()
            host = scenario.host_graph()
            base = _record_base(scenario, guest, host)
        except Exception:  # noqa: BLE001 - a poison scenario must still record
            base = dict(
                scenario_id=scenario.scenario_id,
                guest=f"{scenario.guest_kind}:{scenario.guest_shape}",
                host=f"{scenario.host_kind}:{scenario.host_shape}",
                nodes=0,
                guest_edges=0,
                guest_size=0,
                faults=scenario.faults or None,
            )
        records.append(SurveyRecord(status="failed", error=message, **base))
    return records


def _merge_worker_result(result, results, context) -> None:
    """Fold one finished shard into the parent: records, cache, chaos tally."""
    index, records, delta, (hits, misses), chaos_delta = result
    results[index] = records
    if context.cache is not None:
        # Fold the worker's memo traffic back into the parent: new entries
        # keep the cache growing across shards, and the counters keep
        # `--cache` reporting truthful.
        context.cache.merge(delta)
        context.cache.hits += hits
        context.cache.misses += misses
    if chaos_delta:
        merge_chaos_counters(chaos_delta)


def _run_inline(pending, options, results, recovery, rng) -> None:
    """Sequential path: evaluate shards in-process with the same retry and
    quarantine semantics as the pooled path (injected crashes raise here)."""
    for index, shard in pending:
        attempt = 0
        while True:
            try:
                results[index] = _run_shard(index, shard, options, attempt)[1]
                break
            except Exception as error:  # noqa: BLE001 - retry any shard failure
                attempt += 1
                if attempt >= options.retry.max_attempts:
                    recovery.quarantined += 1
                    results[index] = _quarantine_records(shard, error)
                    break
                recovery.retries += 1
                time.sleep(options.retry.delay(attempt - 1, rng))


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool whose shard blew its deadline: cancel the queue and
    kill the worker processes (there is no portable way to stop one task)."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass


def _run_pooled(pending, options, context, workers, results, recovery, rng) -> None:
    """Pooled path: one pool per *round*; a broken pool (crashed worker) or
    a blown shard deadline ends the round, charges an attempt to every
    shard that was in flight, and the next round resubmits only the
    unfinished frontier on a fresh pool.  Shards out of attempts are
    quarantined between rounds; plain (non-crash) shard failures retry
    within the round after their backoff delay.
    """
    queue: Dict[int, Sequence[Scenario]] = dict(pending)
    attempts: Dict[int, int] = {index: 0 for index, _ in pending}
    errors: Dict[int, BaseException] = {}

    def _charge(index: int, error: BaseException) -> bool:
        """One failed attempt; True when the shard is out of attempts."""
        errors[index] = error
        attempts[index] += 1
        return attempts[index] >= options.retry.max_attempts

    while queue:
        # Quarantine anything out of attempts before spending a fresh pool.
        for index in [
            i for i in sorted(queue) if attempts[i] >= options.retry.max_attempts
        ]:
            recovery.quarantined += 1
            results[index] = _quarantine_records(queue.pop(index), errors[index])
        if not queue:
            break
        round_broke = False
        pool_workers = min(workers, len(queue))
        with ProcessPoolExecutor(
            max_workers=pool_workers,
            initializer=_install_worker_context,
            initargs=(context,),
        ) as pool:
            # Windowed submission: at most `pool_workers` shards in flight,
            # so every submitted future is (about to be) running — which
            # makes both the crash blast radius (who gets charged an
            # attempt) and the per-shard deadline accurate.
            unsubmitted: List[int] = sorted(queue)
            futures: Dict[object, int] = {}
            started_at: Dict[object, float] = {}
            retry_at: List[Tuple[float, int]] = []  # (due time, shard index)

            def _submit(index: int) -> None:
                future = pool.submit(
                    _run_shard, index, queue[index], options, attempts[index]
                )
                futures[future] = index
                started_at[future] = time.monotonic()

            try:
                while futures or retry_at or unsubmitted:
                    now = time.monotonic()
                    while retry_at and retry_at[0][0] <= now:
                        unsubmitted.append(retry_at.pop(0)[1])
                    while unsubmitted and len(futures) < pool_workers:
                        _submit(unsubmitted.pop(0))
                    if not futures:
                        # Only backoff timers left: sleep until the next one.
                        time.sleep(max(0.0, retry_at[0][0] - time.monotonic()))
                        continue
                    timeout = 0.05
                    if options.shard_timeout is not None:
                        next_deadline = min(started_at.values()) + options.shard_timeout
                        timeout = min(timeout, max(0.0, next_deadline - now))
                    done, _ = wait(
                        futures, timeout=timeout, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index = futures.pop(future)
                        started_at.pop(future)
                        try:
                            _merge_worker_result(future.result(), results, context)
                            queue.pop(index, None)
                        except BrokenProcessPool as error:
                            # Every in-flight shard is a casualty of the same
                            # crash; charge them all (the crasher is among
                            # them, and charging is what guarantees a poison
                            # shard eventually quarantines) and respawn.
                            _charge(index, error)
                            for casualty in futures.values():
                                _charge(casualty, error)
                            round_broke = True
                            break
                        except Exception as error:  # noqa: BLE001 - shard failure
                            if _charge(index, error):
                                recovery.quarantined += 1
                                results[index] = _quarantine_records(
                                    queue.pop(index), error
                                )
                                continue
                            recovery.retries += 1
                            delay = options.retry.delay(attempts[index] - 1, rng)
                            retry_at.append((time.monotonic() + delay, index))
                            retry_at.sort()
                    if round_broke:
                        recovery.crash_recoveries += 1
                        break
                    if options.shard_timeout is not None and futures:
                        now = time.monotonic()
                        overdue = [
                            futures[future]
                            for future, since in started_at.items()
                            if now - since > options.shard_timeout
                        ]
                        if overdue:
                            # A wedged shard: there is no way to stop one
                            # task, so kill the pool, charge every in-flight
                            # shard and retry the frontier on a fresh pool.
                            error = TimeoutError(
                                f"shard exceeded its "
                                f"{options.shard_timeout:g}s deadline"
                            )
                            for index in futures.values():
                                _charge(index, error)
                            recovery.crash_recoveries += 1
                            _terminate_pool(pool)
                            round_broke = True
                            break
            except KeyboardInterrupt:
                # Ctrl-C mid-sweep: drop the queued shards and stop handing
                # work to the pool, so the interpreter isn't left waiting on
                # workers for scenarios nobody will read.  Finished shard
                # files (if any) make the next run a resume, not a restart.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        if round_broke and queue:
            retried = [
                index
                for index in queue
                if attempts[index] < options.retry.max_attempts
            ]
            if retried:
                recovery.retries += len(retried)
                worst = max(attempts[index] for index in retried)
                time.sleep(options.retry.delay(worst - 1, rng))


def _run_survey(scenarios: Sequence[Scenario], options: SurveyOptions) -> SurveyReport:
    context = current()
    scenarios = list(scenarios)
    workers = (
        options.workers if options.workers is not None else context.resolved_workers()
    )
    shard_size = (
        options.shard_size if options.shard_size is not None else context.shard_size
    )
    started = time.perf_counter()
    chaos_before = chaos_counters()
    recovery = _Recovery()
    # Deterministic backoff jitter: seeded by the chaos plan when present so
    # a replayed fault schedule replays its recovery delays too.
    rng = SplitMix64(context.chaos.seed if context.chaos is not None else 0)
    shards = _shards(scenarios, shard_size)
    results: Dict[int, List[SurveyRecord]] = {}
    shard_paths: List[str] = []
    reused: List[int] = []
    if options.shard_dir is not None and options.resume:
        for index, shard in enumerate(shards):
            cached = _load_finished_shard(
                Path(options.shard_dir) / f"shard-{index:04d}.json", shard, options
            )
            if cached is not None:
                results[index] = cached
                reused.append(index)
    pending = [(index, shard) for index, shard in enumerate(shards) if index not in results]
    if workers <= 1 or len(pending) <= 1:
        workers = 1
        _run_inline(pending, options, results, recovery, rng)
    else:
        workers = min(workers, len(pending))
        _run_pooled(pending, options, context, workers, results, recovery, rng)
    if options.shard_dir is not None:
        shard_paths = [
            str(Path(options.shard_dir) / f"shard-{index:04d}.json")
            for index in sorted(results)
        ]
    chaos_after = chaos_counters()
    chaos_faults = {
        label: count - chaos_before.get(label, 0)
        for label, count in chaos_after.items()
        if count != chaos_before.get(label, 0)
    }
    merged: List[SurveyRecord] = []
    for index in sorted(results):
        merged.extend(results[index])
    return SurveyReport(
        records=merged,
        elapsed_seconds=time.perf_counter() - started,
        workers=workers,
        shard_paths=shard_paths,
        reused_shard_indices=reused,
        cache_entries=(
            context.cache.construction_count if context.cache is not None else 0
        ),
        retries=recovery.retries,
        crash_recoveries=recovery.crash_recoveries,
        quarantined=recovery.quarantined,
        chaos_faults=chaos_faults,
    )
