"""The parallel survey engine.

:func:`run_survey` evaluates a list of scenarios — embed with the paper's
dispatcher (array-first construction), measure the vectorized costs — across
a pool of worker processes.  The scenario list is split into contiguous
*shards*; each worker evaluates one shard at a time and (optionally) spills
it to a JSON shard file.  On the next run over the same scenario list with
the same ``shard_dir``, finished shard files are loaded instead of
recomputed (crash resume); the result merge is deterministic regardless of
scheduling order either way.

``workers <= 1`` (or a single shard) runs inline in the calling process —
the mode used by tests and ``repro survey --smoke``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import evaluate_embedding
from ..baselines import bfs_order_embedding, lexicographic_embedding, random_embedding
from ..core.dispatch import embed
from ..exceptions import UnsupportedEmbeddingError
from ..netsim import HostNetwork, simulate_phase, traffic_pattern
from .scenarios import Scenario
from .store import SurveyRecord, read_json, write_json

__all__ = [
    "SurveyOptions",
    "SurveyReport",
    "run_survey",
    "evaluate_scenario",
    "STRATEGY_BUILDERS",
]

#: Embedding builders the simulation scenarios select by name: the paper's
#: dispatcher (which honours the construction ``method``) plus the baselines.
#: Shared with ``experiments/simulation_tables.py`` so the survey suite and
#: the SIM-MAP experiment compare exactly the same competitors.
STRATEGY_BUILDERS = {
    "paper": lambda guest, host, method: embed(guest, host, method=method),
    "lexicographic": lambda guest, host, method: lexicographic_embedding(guest, host),
    "bfs": lambda guest, host, method: bfs_order_embedding(guest, host),
    "random": lambda guest, host, method: random_embedding(guest, host, seed=0),
}


@dataclass(frozen=True)
class SurveyOptions:
    """Knobs of a survey run.

    Attributes
    ----------
    workers:
        Worker process count; ``None`` uses ``os.cpu_count()``, ``0``/``1``
        runs sequentially in-process.
    shard_size:
        Scenarios per shard (the unit of work handed to a worker).
    shard_dir:
        When set, each finished shard is written there as
        ``shard-<k>.json`` before the merged result is assembled.
    with_congestion:
        Also measure edge congestion (vectorized; moderately more work).
    method:
        Construction and cost implementation: ``"auto"`` (vectorized when
        NumPy is present), ``"array"`` or ``"loop"`` — passed to both
        :func:`repro.core.dispatch.embed` and the cost measures.
    resume:
        When set (the default) and ``shard_dir`` holds a finished shard file
        whose records match the shard's scenario ids and these options
        (congestion measured iff requested), the file is loaded instead of
        recomputing the shard — crash resume for long sweeps.
    """

    workers: Optional[int] = None
    shard_size: int = 64
    shard_dir: Optional[str] = None
    with_congestion: bool = False
    method: str = "auto"
    resume: bool = True


@dataclass
class SurveyReport:
    """Outcome of :func:`run_survey`: merged records plus run metadata."""

    records: List[SurveyRecord]
    elapsed_seconds: float
    workers: int
    shard_paths: List[str] = field(default_factory=list)
    reused_shard_indices: List[int] = field(default_factory=list)

    @property
    def ok(self) -> List[SurveyRecord]:
        return [record for record in self.records if record.status == "ok"]

    @property
    def unsupported(self) -> List[SurveyRecord]:
        return [record for record in self.records if record.status == "unsupported"]

    @property
    def failed(self) -> List[SurveyRecord]:
        return [record for record in self.records if record.status == "error"]

    def strategy_histogram(self) -> Dict[str, int]:
        """Measured-record count per strategy name, alphabetically."""
        histogram: Dict[str, int] = {}
        for record in self.ok:
            histogram[record.strategy or "?"] = histogram.get(record.strategy or "?", 0) + 1
        return dict(sorted(histogram.items()))

    def summary_rows(self) -> List[Dict[str, object]]:
        """Tabular summary used by the CLI (one row per strategy).

        When the report contains simulation records a ``mean makespan``
        column is appended (averaged over each strategy's simulated phases).
        """
        with_makespan = any(r.makespan is not None for r in self.ok)
        rows: List[Dict[str, object]] = []
        for strategy, count in self.strategy_histogram().items():
            group = [r for r in self.ok if r.strategy == strategy]
            row: Dict[str, object] = {
                "strategy": strategy,
                "pairs": count,
                "max dilation": max(r.dilation for r in group),
                "mean avg-dilation": round(
                    sum(r.average_dilation for r in group) / count, 3
                ),
                "prediction holds": sum(1 for r in group if r.matches_prediction),
            }
            if with_makespan:
                simulated = [r.makespan for r in group if r.makespan is not None]
                row["mean makespan"] = (
                    round(sum(simulated) / len(simulated), 1) if simulated else "-"
                )
            rows.append(row)
        return rows


def evaluate_scenario(scenario: Scenario, options: SurveyOptions) -> SurveyRecord:
    """Embed and measure one scenario, capturing failures as record status.

    Embedding scenarios measure the vectorized costs; simulation scenarios
    (``scenario.traffic`` set) additionally place the named traffic pattern
    on the host network and run the store-and-forward phase simulation, all
    under the same ``method`` switch.
    """
    guest = scenario.guest_graph()
    host = scenario.host_graph()
    base = dict(
        scenario_id=scenario.scenario_id,
        guest=repr(guest),
        host=repr(host),
        nodes=guest.size,
        guest_edges=guest.num_edges(),
    )
    started = time.perf_counter()
    try:
        if scenario.traffic:
            builder = STRATEGY_BUILDERS[scenario.strategy]
            embedding = builder(guest, host, options.method)
            pattern = traffic_pattern(scenario.traffic, guest)
            result = simulate_phase(
                HostNetwork(host), embedding, pattern, method=options.method
            )
            statistics = result.statistics
            dilation = embedding.dilation(method=options.method)
            return SurveyRecord(
                status="ok",
                strategy=scenario.strategy,
                predicted_dilation=embedding.predicted_dilation,
                dilation=dilation,
                average_dilation=embedding.average_dilation(method=options.method),
                congestion=(
                    embedding.edge_congestion(method=options.method)
                    if options.with_congestion
                    else None
                ),
                matches_prediction=embedding.matches_prediction(measured=dilation),
                traffic=scenario.traffic,
                messages=statistics.num_messages,
                max_hops=statistics.max_hops,
                max_link_load=statistics.max_link_load_messages,
                estimated_time=statistics.estimated_completion_time,
                makespan=result.makespan,
                elapsed_seconds=time.perf_counter() - started,
                **base,
            )
        embedding = embed(guest, host, method=options.method)
        report = evaluate_embedding(
            embedding, with_congestion=options.with_congestion, method=options.method
        )
        return SurveyRecord(
            status="ok",
            strategy=embedding.strategy,
            predicted_dilation=embedding.predicted_dilation,
            dilation=report.dilation,
            average_dilation=report.average_dilation,
            congestion=report.congestion,
            matches_prediction=embedding.matches_prediction(measured=report.dilation),
            elapsed_seconds=time.perf_counter() - started,
            **base,
        )
    except UnsupportedEmbeddingError as error:
        return SurveyRecord(
            status="unsupported",
            error=str(error),
            elapsed_seconds=time.perf_counter() - started,
            **base,
        )
    except Exception as error:  # noqa: BLE001 - one bad pair must not kill a sweep
        return SurveyRecord(
            status="error",
            error=f"{type(error).__name__}: {error}",
            elapsed_seconds=time.perf_counter() - started,
            **base,
        )


def _run_shard(
    shard_index: int, scenarios: Sequence[Scenario], options: SurveyOptions
) -> Tuple[int, List[SurveyRecord]]:
    """Worker entry point: evaluate one shard, optionally spill it to disk."""
    records = [evaluate_scenario(scenario, options) for scenario in scenarios]
    if options.shard_dir is not None:
        shard_path = Path(options.shard_dir) / f"shard-{shard_index:04d}.json"
        write_json(records, shard_path)
    return shard_index, records


def _shards(scenarios: Sequence[Scenario], shard_size: int) -> List[Sequence[Scenario]]:
    size = max(1, shard_size)
    return [scenarios[start : start + size] for start in range(0, len(scenarios), size)]


def _load_finished_shard(
    path: Path, shard: Sequence[Scenario], options: SurveyOptions
) -> Optional[List[SurveyRecord]]:
    """Records of a previously finished shard file, or ``None``.

    A shard file is only reused when it parses, its record ids match the
    shard's scenario ids one-for-one (same sweep, same sharding) and its
    measured columns match the requested options (a shard written without
    congestion must not satisfy a ``with_congestion`` rerun, and vice
    versa); anything else — missing file, torn write, different scenario
    list or options — recomputes.  The ``method`` option is deliberately
    not fingerprinted: array and loop produce identical records by the
    differential contract.
    """
    if not path.is_file():
        return None
    try:
        records = read_json(path)
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if [record.scenario_id for record in records] != [
        scenario.scenario_id for scenario in shard
    ]:
        return None
    if any(
        (record.congestion is not None) != options.with_congestion
        for record in records
        if record.status == "ok"
    ):
        return None
    return records


def run_survey(
    scenarios: Sequence[Scenario], options: Optional[SurveyOptions] = None
) -> SurveyReport:
    """Evaluate every scenario and return the merged, deterministic report.

    Records are returned in the input scenario order whatever the worker
    scheduling; two runs over the same scenario list produce identical
    records (modulo the ``elapsed_seconds`` timings).
    """
    options = options or SurveyOptions()
    scenarios = list(scenarios)
    workers = options.workers if options.workers is not None else (os.cpu_count() or 1)
    started = time.perf_counter()
    shards = _shards(scenarios, options.shard_size)
    results: Dict[int, List[SurveyRecord]] = {}
    shard_paths: List[str] = []
    reused: List[int] = []
    if options.shard_dir is not None and options.resume:
        for index, shard in enumerate(shards):
            cached = _load_finished_shard(
                Path(options.shard_dir) / f"shard-{index:04d}.json", shard, options
            )
            if cached is not None:
                results[index] = cached
                reused.append(index)
    pending = [(index, shard) for index, shard in enumerate(shards) if index not in results]
    if workers <= 1 or len(pending) <= 1:
        workers = 1
        for index, shard in pending:
            results[index] = _run_shard(index, shard, options)[1]
    else:
        workers = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_shard, index, shard, options)
                for index, shard in pending
            ]
            for future in as_completed(futures):
                index, records = future.result()
                results[index] = records
    if options.shard_dir is not None:
        shard_paths = [
            str(Path(options.shard_dir) / f"shard-{index:04d}.json")
            for index in sorted(results)
        ]
    merged: List[SurveyRecord] = []
    for index in sorted(results):
        merged.extend(results[index])
    return SurveyReport(
        records=merged,
        elapsed_seconds=time.perf_counter() - started,
        workers=workers,
        shard_paths=shard_paths,
        reused_shard_indices=reused,
    )
