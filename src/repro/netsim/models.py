"""Communication cost model for the network simulator.

The classic latency/bandwidth ("alpha-beta") model for store-and-forward
networks: forwarding a message of ``s`` bytes across one link costs
``alpha + s / bandwidth`` time units, and a link transfers one message at a
time.  The defaults give per-hop latency 1 and bandwidth 1 byte per time
unit, so with unit-size messages the analytic completion time reduces to hop
counts and link loads — i.e. precisely the quantities the paper's dilation
and congestion measures control.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth parameters of every link in the host network.

    Attributes
    ----------
    alpha:
        Fixed per-hop startup latency (time units).
    bandwidth:
        Bytes transferred per time unit once a message occupies a link.
    """

    alpha: float = 1.0
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def link_occupancy(self, message_size: float) -> float:
        """Time a single message of the given size occupies one link."""
        return self.alpha + message_size / self.bandwidth

    def uncontended_time(self, message_size: float, hops: int) -> float:
        """Store-and-forward time of one message over ``hops`` links with no contention."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        return hops * self.link_occupancy(message_size)
