"""Vectorized network-simulation kernels: batched routing and link loads.

The per-message reference path (:func:`repro.netsim.routing.route_message`)
builds node-tuple paths one hop at a time; at survey scale that per-hop
Python dominates the whole simulation layer.  This module rebuilds the hot
path on flat ``int64`` arrays:

* :class:`LinkIndexSpace` — a flat index space for the *directed* links of a
  torus/mesh: link ``(dimension j, direction ±1, source rank r)`` gets the id
  ``(2 j + [direction < 0]) · n + r``, so per-link accumulators are plain
  arrays instead of dicts keyed by ``(node, node)`` tuples;
* :func:`expand_routes` — batched dimension-ordered routing: per-dimension
  signed offsets (:func:`repro.numbering.arrays.signed_offset_digits`, torus
  wraparound included) expanded into a CSR-style array of per-hop link ids,
  with no per-hop Python;
* :func:`accumulate_link_loads` — message counts, byte volume and busy time
  per directed link via ``np.bincount`` scatter-adds over the expanded hops.

Everything here reproduces the loop reference *exactly* — same hop order,
same tie-breaks, bit-for-bit equal link statistics — which the differential
tests in ``tests/test_netsim_kernels.py`` assert node-for-node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..graphs.base import CartesianGraph
from ..numbering.arrays import (
    digit_weights,
    indices_to_digits,
    require_numpy,
    signed_offset_digits,
)
from ..types import Node

__all__ = [
    "LinkIndexSpace",
    "RouteArrays",
    "expand_routes",
    "accumulate_link_loads",
]


class LinkIndexSpace:
    """Flat ids for the directed links of a torus/mesh.

    A directed link is identified by its *source* node rank, the dimension it
    travels along and its direction; the id layout is::

        id = (2 * dimension + (1 if direction < 0 else 0)) * n + source_rank

    giving ``2 d n`` slots.  Slots that no physical link occupies (mesh
    boundary steps, and the ``-`` direction of length-2 torus dimensions,
    which routing never takes) simply stay at zero load — the accumulators
    are dense arrays, not per-link records.
    """

    def __init__(self, topology: CartesianGraph):
        np = require_numpy()
        self.topology = topology
        self.shape = topology.shape
        self.is_torus = topology.is_torus
        self.num_nodes = topology.size
        self.dimension = topology.dimension
        self.lengths = np.asarray(self.shape, dtype=np.int64)
        self.weights = digit_weights(self.shape)

    @property
    def num_slots(self) -> int:
        """Total directed-link id slots: ``2 * dimension * num_nodes``."""
        return 2 * self.dimension * self.num_nodes

    def decode(self, link_ids):
        """Source and destination node ranks of each link id (vectorized).

        Only meaningful for ids actually produced by routing (mesh boundary
        slots would decode to out-of-range coordinates).
        """
        np = require_numpy()
        ids = np.asarray(link_ids, dtype=np.int64)
        channel, source = np.divmod(ids, self.num_nodes)
        dim, negative = np.divmod(channel, 2)
        delta = np.where(negative == 1, -1, 1)
        weight = self.weights[dim]
        length = self.lengths[dim]
        coord = (source // weight) % length
        moved = coord + delta
        if self.is_torus:
            moved %= length
        return source, source + (moved - coord) * weight

    def link_tuples(self, link_ids) -> List[Tuple[Node, Node]]:
        """The ``(source, destination)`` node-tuple form of each link id."""
        sources, targets = self.decode(link_ids)
        source_digits = indices_to_digits(sources, self.shape)
        target_digits = indices_to_digits(targets, self.shape)
        return [
            (tuple(source), tuple(target))
            for source, target in zip(source_digits.tolist(), target_digits.tolist())
        ]


@dataclass(frozen=True)
class RouteArrays:
    """CSR-style batch of dimension-ordered routes.

    ``link_ids[starts[i]:starts[i + 1]]`` are the directed-link ids message
    ``i`` traverses, in hop order (dimension 0 corrected first, exactly the
    order of :func:`repro.graphs.paths.dimension_order_path`).  ``offsets``
    holds the per-dimension signed step counts and ``hops`` their absolute
    row sums (the route lengths, equal to the host graph distance).
    """

    offsets: "object"
    hops: "object"
    starts: "object"
    link_ids: "object"

    @property
    def num_messages(self) -> int:
        return len(self.hops)

    @property
    def total_hops(self) -> int:
        return len(self.link_ids)


def expand_routes(space: LinkIndexSpace, src_digits, dst_digits) -> RouteArrays:
    """Batched dimension-ordered routing over mixed-radix coordinates.

    ``src_digits`` / ``dst_digits`` are ``(m, d)`` digit rows of placed
    message endpoints in the host base.  The expansion works per run (one
    run = one message × one dimension): while dimension ``j`` is being
    corrected, dimensions ``< j`` already sit at the target digits and
    dimensions ``>= j`` still at the source digits, so the ``k``-th hop of
    the run leaves the node whose dimension-``j`` coordinate is
    ``a_j + direction · k`` (mod ``l_j`` on a torus) on the fixed axis line
    through that position.  All of it is ``repeat``/``cumsum`` arithmetic —
    no per-hop Python.
    """
    np = require_numpy()
    src_digits = np.asarray(src_digits, dtype=np.int64)
    dst_digits = np.asarray(dst_digits, dtype=np.int64)
    m, d = src_digits.shape
    shape = space.shape
    weights = space.weights

    offsets = signed_offset_digits(src_digits, dst_digits, shape, torus=space.is_torus)
    runs = np.abs(offsets)
    hops = runs.sum(axis=1)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(hops, out=starts[1:])

    run_lengths = runs.ravel()
    total = int(run_lengths.sum())
    if total == 0:
        return RouteArrays(
            offsets=offsets,
            hops=hops,
            starts=starts,
            link_ids=np.zeros(0, dtype=np.int64),
        )

    # Flat host rank of the position from which the dimension-j run departs:
    # dims < j at the target, dims >= j at the source.
    delta_flat = (dst_digits - src_digits) * weights
    prefix = np.zeros((m, d), dtype=np.int64)
    np.cumsum(delta_flat[:, :-1], axis=1, out=prefix[:, 1:])
    flat_at_run = (src_digits @ weights)[:, None] + prefix
    # Axis-line base: the run position with its dimension-j coordinate zeroed.
    line_base = (flat_at_run - src_digits * weights).ravel()

    directions = np.sign(offsets).ravel()
    start_coords = src_digits.ravel()
    run_starts = np.cumsum(run_lengths) - run_lengths
    run_of_hop = np.repeat(np.arange(run_lengths.size, dtype=np.int64), run_lengths)
    step = np.arange(total, dtype=np.int64) - run_starts[run_of_hop]

    lengths_per_run = np.broadcast_to(space.lengths, (m, d)).ravel()
    weights_per_run = np.broadcast_to(weights, (m, d)).ravel()
    dims_per_run = np.broadcast_to(np.arange(d, dtype=np.int64), (m, d)).ravel()

    coord = start_coords[run_of_hop] + directions[run_of_hop] * step
    if space.is_torus:
        coord %= lengths_per_run[run_of_hop]
    source_rank = line_base[run_of_hop] + coord * weights_per_run[run_of_hop]
    channel = 2 * dims_per_run[run_of_hop] + (directions[run_of_hop] < 0)
    link_ids = channel * space.num_nodes + source_rank
    return RouteArrays(offsets=offsets, hops=hops, starts=starts, link_ids=link_ids)


def accumulate_link_loads(space: LinkIndexSpace, routes: RouteArrays, sizes, occupancy):
    """Per-directed-link message counts, volume and busy time.

    ``sizes`` and ``occupancy`` are per-*message* arrays; each is repeated
    over its message's hops and scatter-added onto the flat link id space
    with ``np.bincount`` (additions happen in ``(message, hop)`` order, the
    same order the loop reference accumulates its dicts, so the float sums
    agree bit for bit).  Returns ``(counts, volume, busy)`` arrays of length
    :attr:`LinkIndexSpace.num_slots`.
    """
    np = require_numpy()
    slots = space.num_slots
    counts = np.bincount(routes.link_ids, minlength=slots)
    volume = np.bincount(
        routes.link_ids, weights=np.repeat(sizes, routes.hops), minlength=slots
    )
    busy = np.bincount(
        routes.link_ids, weights=np.repeat(occupancy, routes.hops), minlength=slots
    )
    return counts, volume, busy
