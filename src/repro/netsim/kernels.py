"""Vectorized network-simulation kernels: batched routing and link loads.

The per-message reference path (:func:`repro.netsim.routing.route_message`)
builds node-tuple paths one hop at a time; at survey scale that per-hop
Python dominates the whole simulation layer.  This module rebuilds the hot
path on flat ``int64`` arrays:

* :class:`LinkIndexSpace` — a flat index space for the *directed* links of a
  torus/mesh: link ``(dimension j, direction ±1, source rank r)`` gets the id
  ``(2 j + [direction < 0]) · n + r``, so per-link accumulators are plain
  arrays instead of dicts keyed by ``(node, node)`` tuples;
* :func:`expand_routes` — batched dimension-ordered routing: per-dimension
  signed offsets (:func:`repro.numbering.arrays.signed_offset_digits`, torus
  wraparound included) expanded into a CSR-style array of per-hop link ids,
  with no per-hop Python;
* :func:`accumulate_link_loads` — message counts, byte volume and busy time
  per directed link via ``np.bincount`` scatter-adds over the expanded hops.

Everything here reproduces the loop reference *exactly* — same hop order,
same tie-breaks, bit-for-bit equal link statistics — which the differential
tests in ``tests/test_netsim_kernels.py`` assert node-for-node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..compiled.dispatch import active_kernels
from ..exceptions import SimulationError
from ..graphs.base import CartesianGraph
from ..graphs.faults import Faults
from ..numbering.arrays import (
    digit_weights,
    indices_to_digits,
    require_numpy,
    signed_offset_digits,
)
from ..types import Node

__all__ = [
    "LinkIndexSpace",
    "RouteArrays",
    "expand_routes",
    "accumulate_link_loads",
    "dead_slot_mask",
    "apply_fault_detours",
]


class LinkIndexSpace:
    """Flat ids for the directed links of a torus/mesh.

    A directed link is identified by its *source* node rank, the dimension it
    travels along and its direction; the id layout is::

        id = (2 * dimension + (1 if direction < 0 else 0)) * n + source_rank

    giving ``2 d n`` slots.  Slots that no physical link occupies (mesh
    boundary steps, and the ``-`` direction of length-2 torus dimensions,
    which routing never takes) simply stay at zero load — the accumulators
    are dense arrays, not per-link records.
    """

    def __init__(self, topology: CartesianGraph):
        np = require_numpy()
        self.topology = topology
        self.shape = topology.shape
        self.is_torus = topology.is_torus
        self.num_nodes = topology.size
        self.dimension = topology.dimension
        self.lengths = np.asarray(self.shape, dtype=np.int64)
        self.weights = digit_weights(self.shape)

    @property
    def num_slots(self) -> int:
        """Total directed-link id slots: ``2 * dimension * num_nodes``."""
        return 2 * self.dimension * self.num_nodes

    def decode(self, link_ids):
        """Source and destination node ranks of each link id (vectorized).

        Only meaningful for ids actually produced by routing (mesh boundary
        slots would decode to out-of-range coordinates).
        """
        np = require_numpy()
        ids = np.asarray(link_ids, dtype=np.int64)
        channel, source = np.divmod(ids, self.num_nodes)
        dim, negative = np.divmod(channel, 2)
        delta = np.where(negative == 1, -1, 1)
        weight = self.weights[dim]
        length = self.lengths[dim]
        coord = (source // weight) % length
        moved = coord + delta
        if self.is_torus:
            moved %= length
        return source, source + (moved - coord) * weight

    def link_tuples(self, link_ids) -> List[Tuple[Node, Node]]:
        """The ``(source, destination)`` node-tuple form of each link id."""
        sources, targets = self.decode(link_ids)
        source_digits = indices_to_digits(sources, self.shape)
        target_digits = indices_to_digits(targets, self.shape)
        return [
            (tuple(source), tuple(target))
            for source, target in zip(source_digits.tolist(), target_digits.tolist())
        ]


@dataclass(frozen=True)
class RouteArrays:
    """CSR-style batch of dimension-ordered routes.

    ``link_ids[starts[i]:starts[i + 1]]`` are the directed-link ids message
    ``i`` traverses, in hop order (dimension 0 corrected first, exactly the
    order of :func:`repro.graphs.paths.dimension_order_path`).  ``offsets``
    holds the per-dimension signed step counts and ``hops`` their absolute
    row sums (the route lengths, equal to the host graph distance).
    """

    offsets: "object"
    hops: "object"
    starts: "object"
    link_ids: "object"

    @property
    def num_messages(self) -> int:
        return len(self.hops)

    @property
    def total_hops(self) -> int:
        return len(self.link_ids)


def expand_routes(space: LinkIndexSpace, src_digits, dst_digits) -> RouteArrays:
    """Batched dimension-ordered routing over mixed-radix coordinates.

    ``src_digits`` / ``dst_digits`` are ``(m, d)`` digit rows of placed
    message endpoints in the host base.  The expansion works per run (one
    run = one message × one dimension): while dimension ``j`` is being
    corrected, dimensions ``< j`` already sit at the target digits and
    dimensions ``>= j`` still at the source digits, so the ``k``-th hop of
    the run leaves the node whose dimension-``j`` coordinate is
    ``a_j + direction · k`` (mod ``l_j`` on a torus) on the fixed axis line
    through that position.  All of it is ``repeat``/``cumsum`` arithmetic —
    no per-hop Python.
    """
    np = require_numpy()
    src_digits = np.asarray(src_digits, dtype=np.int64)
    dst_digits = np.asarray(dst_digits, dtype=np.int64)
    m, d = src_digits.shape
    shape = space.shape
    weights = space.weights

    offsets = signed_offset_digits(src_digits, dst_digits, shape, torus=space.is_torus)
    runs = np.abs(offsets)
    hops = runs.sum(axis=1)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(hops, out=starts[1:])

    run_lengths = runs.ravel()
    total = int(run_lengths.sum())
    if total == 0:
        return RouteArrays(
            offsets=offsets,
            hops=hops,
            starts=starts,
            link_ids=np.zeros(0, dtype=np.int64),
        )

    kernels = active_kernels()
    if kernels is not None:
        # Compiled backend: one JIT pass fills the CSR hops directly from the
        # signed offsets (all-integer — identical ids, element for element).
        link_ids = kernels.expand_link_ids(
            src_digits, offsets, starts, shape, space.num_nodes, space.is_torus
        )
        return RouteArrays(
            offsets=offsets, hops=hops, starts=starts, link_ids=link_ids
        )

    # Flat host rank of the position from which the dimension-j run departs:
    # dims < j at the target, dims >= j at the source.
    delta_flat = (dst_digits - src_digits) * weights
    prefix = np.zeros((m, d), dtype=np.int64)
    np.cumsum(delta_flat[:, :-1], axis=1, out=prefix[:, 1:])
    flat_at_run = (src_digits @ weights)[:, None] + prefix
    # Axis-line base: the run position with its dimension-j coordinate zeroed.
    line_base = (flat_at_run - src_digits * weights).ravel()

    directions = np.sign(offsets).ravel()
    start_coords = src_digits.ravel()
    run_starts = np.cumsum(run_lengths) - run_lengths
    run_of_hop = np.repeat(np.arange(run_lengths.size, dtype=np.int64), run_lengths)
    step = np.arange(total, dtype=np.int64) - run_starts[run_of_hop]

    lengths_per_run = np.broadcast_to(space.lengths, (m, d)).ravel()
    weights_per_run = np.broadcast_to(weights, (m, d)).ravel()
    dims_per_run = np.broadcast_to(np.arange(d, dtype=np.int64), (m, d)).ravel()

    coord = start_coords[run_of_hop] + directions[run_of_hop] * step
    if space.is_torus:
        coord %= lengths_per_run[run_of_hop]
    source_rank = line_base[run_of_hop] + coord * weights_per_run[run_of_hop]
    channel = 2 * dims_per_run[run_of_hop] + (directions[run_of_hop] < 0)
    link_ids = channel * space.num_nodes + source_rank
    return RouteArrays(offsets=offsets, hops=hops, starts=starts, link_ids=link_ids)


def accumulate_link_loads(
    space: LinkIndexSpace, routes: RouteArrays, sizes, occupancy, *, hop_occupancy=None
):
    """Per-directed-link message counts, volume and busy time.

    ``sizes`` and ``occupancy`` are per-*message* arrays; each is repeated
    over its message's hops and scatter-added onto the flat link id space
    with ``np.bincount`` (additions happen in ``(message, hop)`` order, the
    same order the loop reference accumulates its dicts, so the float sums
    agree bit for bit).  ``hop_occupancy`` (aligned with ``link_ids``)
    overrides the repeated per-message occupancy for heterogeneous links,
    where each hop's busy time carries its own link weight.  Returns
    ``(counts, volume, busy)`` arrays of length
    :attr:`LinkIndexSpace.num_slots`.
    """
    np = require_numpy()
    slots = space.num_slots
    kernels = active_kernels()
    if kernels is not None:
        # Compiled backend: fused single-pass accumulation, adding in the
        # same (message, hop) order as the bincount scatter-adds.
        return kernels.link_loads(
            slots,
            routes.starts,
            routes.link_ids,
            np.asarray(sizes, dtype=np.float64),
            np.asarray(occupancy, dtype=np.float64),
            hop_occupancy=hop_occupancy,
        )
    counts = np.bincount(routes.link_ids, minlength=slots)
    volume = np.bincount(
        routes.link_ids, weights=np.repeat(sizes, routes.hops), minlength=slots
    )
    if hop_occupancy is None:
        hop_occupancy = np.repeat(occupancy, routes.hops)
    busy = np.bincount(routes.link_ids, weights=hop_occupancy, minlength=slots)
    return counts, volume, busy


def dead_slot_mask(space: LinkIndexSpace, faults: Faults):
    """Boolean mask over the slot space: True where the directed link is dead.

    Both orientations of every dead undirected link are marked, plus every
    link into or out of a dead node.  The fault sets are small, so this is a
    short Python loop over them — the per-hop work stays vectorized in
    :func:`apply_fault_detours`.
    """
    from .weights import directed_slot_id

    np = require_numpy()
    mask = np.zeros(space.num_slots, dtype=bool)
    topology = space.topology
    pairs = set()
    for u, v in faults.dead_links:
        pairs.add((u, v))
        pairs.add((v, u))
    for rank in faults.dead_nodes:
        node = topology.index_node(rank)
        for neighbor in topology.neighbors(node):
            other = topology.node_index(neighbor)
            pairs.add((rank, other))
            pairs.add((other, rank))
    for u, v in pairs:
        mask[directed_slot_id(topology, topology.index_node(u), topology.index_node(v))] = True
    return mask


def apply_fault_detours(
    space: LinkIndexSpace, routes: RouteArrays, faults: Faults, source_ranks, target_ranks
) -> RouteArrays:
    """Replace every route cut by the faults with its surviving BFS detour.

    The batched dimension-ordered expansion stays untouched for unaffected
    messages; cut messages (detected with one mask gather over the expanded
    hops) are re-routed through the *same* deterministic
    :meth:`~repro.graphs.faults.Faults.shortest_detour` the loop backend
    uses, so both backends traverse identical link sequences.  A dead
    endpoint, or a disconnected pair, raises
    :class:`~repro.exceptions.SimulationError`.

    The returned ``offsets`` are carried over unchanged (they describe the
    pristine dimension-ordered plan); ``hops``/``starts``/``link_ids``
    reflect the actual detoured routes.
    """
    np = require_numpy()
    from .weights import directed_slot_id

    if faults.dead_nodes:
        dead = np.zeros(space.num_nodes, dtype=bool)
        dead[list(faults.dead_nodes)] = True
        if bool(dead[source_ranks].any() or dead[target_ranks].any()):
            raise SimulationError("a message endpoint is a dead node")
    if routes.num_messages == 0:
        return routes
    mask = dead_slot_mask(space, faults)
    hop_dead = mask[routes.link_ids]
    if not bool(hop_dead.any()):
        return routes
    m = routes.num_messages
    message_of_hop = np.repeat(np.arange(m, dtype=np.int64), routes.hops)
    cut = np.bincount(message_of_hop, weights=hop_dead, minlength=m) > 0

    topology = space.topology
    pieces = np.split(routes.link_ids, routes.starts[1:-1])
    for index in np.flatnonzero(cut):
        ranks = faults.shortest_detour(
            int(source_ranks[index]), int(target_ranks[index])
        )
        if ranks is None:
            raise SimulationError(
                "no surviving route between two message endpoints; "
                "the faults disconnect them"
            )
        pieces[int(index)] = np.asarray(
            [
                directed_slot_id(
                    topology, topology.index_node(a), topology.index_node(b)
                )
                for a, b in zip(ranks, ranks[1:])
            ],
            dtype=np.int64,
        )
    hops = np.asarray([piece.size for piece in pieces], dtype=np.int64)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(hops, out=starts[1:])
    link_ids = (
        np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
    )
    return RouteArrays(
        offsets=routes.offsets, hops=hops, starts=starts, link_ids=link_ids
    )
