"""Store-and-forward simulation of one communication phase.

Two complementary evaluations of a placed traffic pattern are provided:

* :func:`analytic_phase_estimate` — closed-form statistics: hop counts,
  per-link loads and the standard lower-bound completion-time estimate
  ``max(most loaded link busy time, slowest uncontended message)``;
* :func:`simulate_phase` — a discrete-time store-and-forward simulation in
  which every directed link transfers one message at a time (FIFO per link,
  deterministic tie-breaking), yielding an actual makespan that accounts for
  queueing.

Both place each message on the dimension-ordered route between the images of
its endpoints under the supplied embedding, so the guest-edge hop counts are
bounded by the embedding's dilation — the mechanism by which the paper's
low-dilation embeddings translate into faster communication phases.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.embedding import Embedding
from ..exceptions import SimulationError
from .network import DirectedLink, HostNetwork
from .routing import route_message
from .traffic import TrafficPattern

__all__ = ["PhaseStatistics", "SimulationResult", "analytic_phase_estimate", "simulate_phase"]


@dataclass(frozen=True)
class PhaseStatistics:
    """Analytic statistics of a placed communication phase."""

    num_messages: int
    total_hops: int
    max_hops: int
    mean_hops: float
    max_link_load_messages: int
    max_link_load_volume: float
    max_link_busy_time: float
    max_uncontended_message_time: float
    estimated_completion_time: float

    def as_row(self) -> Dict[str, object]:
        return {
            "messages": self.num_messages,
            "max hops": self.max_hops,
            "mean hops": round(self.mean_hops, 3),
            "max link msgs": self.max_link_load_messages,
            "est. time": round(self.estimated_completion_time, 3),
        }


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of the discrete-time store-and-forward simulation."""

    makespan: float
    statistics: PhaseStatistics
    per_message_completion: Tuple[float, ...]

    def as_row(self) -> Dict[str, object]:
        row = self.statistics.as_row()
        row["makespan"] = round(self.makespan, 3)
        return row


def _routes_for(
    network: HostNetwork, embedding: Embedding, traffic: TrafficPattern
) -> List[Tuple[List[DirectedLink], float]]:
    if embedding.host.shape != network.topology.shape or embedding.host.kind != network.topology.kind:
        raise SimulationError(
            "the embedding's host graph does not match the network topology"
        )
    routes: List[Tuple[List[DirectedLink], float]] = []
    for source, destination, size in traffic.placed(embedding):
        routes.append((route_message(network, source, destination), size))
    return routes


def analytic_phase_estimate(
    network: HostNetwork, embedding: Embedding, traffic: TrafficPattern
) -> PhaseStatistics:
    """Hop counts, link loads and the standard completion-time lower bound."""
    model = network.cost_model
    routes = _routes_for(network, embedding, traffic)
    link_messages: Dict[DirectedLink, int] = {}
    link_volume: Dict[DirectedLink, float] = {}
    link_busy: Dict[DirectedLink, float] = {}
    total_hops = 0
    max_hops = 0
    max_uncontended = 0.0
    for links, size in routes:
        hops = len(links)
        total_hops += hops
        max_hops = max(max_hops, hops)
        max_uncontended = max(max_uncontended, model.uncontended_time(size, hops))
        for link in links:
            link_messages[link] = link_messages.get(link, 0) + 1
            link_volume[link] = link_volume.get(link, 0.0) + size
            link_busy[link] = link_busy.get(link, 0.0) + model.link_occupancy(size)
    num_messages = len(routes)
    max_link_busy = max(link_busy.values(), default=0.0)
    return PhaseStatistics(
        num_messages=num_messages,
        total_hops=total_hops,
        max_hops=max_hops,
        mean_hops=total_hops / num_messages if num_messages else 0.0,
        max_link_load_messages=max(link_messages.values(), default=0),
        max_link_load_volume=max(link_volume.values(), default=0.0),
        max_link_busy_time=max_link_busy,
        max_uncontended_message_time=max_uncontended,
        estimated_completion_time=max(max_link_busy, max_uncontended),
    )


@dataclass(order=True)
class _LinkRequest:
    """A pending hop of a message, ordered for deterministic scheduling."""

    ready_time: float
    message_index: int
    hop_index: int = field(compare=False)


def simulate_phase(
    network: HostNetwork,
    embedding: Embedding,
    traffic: TrafficPattern,
    *,
    max_events: int = 5_000_000,
) -> SimulationResult:
    """Discrete-event store-and-forward simulation of one communication phase.

    Every directed link serves at most one message at a time; a message
    occupies a link for ``alpha + size/bandwidth`` time units per hop and may
    only request its next link after the previous hop completes.  Contention
    is resolved first-come-first-served with ties broken by message index, so
    the simulation is fully deterministic.
    """
    model = network.cost_model
    routes = _routes_for(network, embedding, traffic)
    statistics = analytic_phase_estimate(network, embedding, traffic)

    link_free_at: Dict[DirectedLink, float] = {}
    completion: List[float] = [0.0] * len(routes)

    # Event queue of pending hop requests.
    queue: List[_LinkRequest] = []
    for index, (links, _size) in enumerate(routes):
        if links:
            heapq.heappush(queue, _LinkRequest(0.0, index, 0))
        else:
            completion[index] = 0.0

    events = 0
    while queue:
        events += 1
        if events > max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration is too large"
            )
        request = heapq.heappop(queue)
        links, size = routes[request.message_index]
        link = links[request.hop_index]
        start = max(request.ready_time, link_free_at.get(link, 0.0))
        finish = start + model.link_occupancy(size)
        link_free_at[link] = finish
        if request.hop_index + 1 < len(links):
            heapq.heappush(
                queue,
                _LinkRequest(finish, request.message_index, request.hop_index + 1),
            )
        else:
            completion[request.message_index] = finish

    makespan = max(completion, default=0.0)
    return SimulationResult(
        makespan=makespan,
        statistics=statistics,
        per_message_completion=tuple(completion),
    )
