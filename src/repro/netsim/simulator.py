"""Store-and-forward simulation of one communication phase.

Two complementary evaluations of a placed traffic pattern are provided:

* :func:`analytic_phase_estimate` — closed-form statistics: hop counts,
  per-link loads and the standard lower-bound completion-time estimate
  ``max(most loaded link busy time, slowest uncontended message)``;
* :func:`simulate_phase` — a discrete-time store-and-forward simulation in
  which every directed link transfers one message at a time (FIFO per link,
  deterministic tie-breaking), yielding an actual makespan that accounts for
  queueing.

Both place each message on the dimension-ordered route between the images of
its endpoints under the supplied embedding, so the guest-edge hop counts are
bounded by the embedding's dilation — the mechanism by which the paper's
low-dilation embeddings translate into faster communication phases.

Both evaluations resolve their implementation from the ambient execution
context (:mod:`repro.runtime.context`), the same switch as the construction
builders and cost measures: the array backend batches the routing and the
link-load accumulation over flat directed-link ids
(:mod:`repro.netsim.kernels`) and keys the event loop by link id over
preallocated route arrays; the loop backend is the retained per-message
reference, cross-checked hop-for-hop and float-for-float by the
differential tests.  Force it with ``use_context(backend="loop")``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..compiled.dispatch import active_kernels
from ..core.embedding import Embedding, use_array_path
from ..exceptions import SimulationError
from ..runtime.context import accepts_deprecated_method
from ..numbering.arrays import indices_to_digits, require_numpy
from .kernels import (
    RouteArrays,
    accumulate_link_loads,
    apply_fault_detours,
    expand_routes,
)
from .network import DirectedLink, HostNetwork
from .routing import route_message
from .traffic import TrafficPattern

__all__ = [
    "PhaseStatistics",
    "SimulationResult",
    "analytic_phase_estimate",
    "simulate_phase",
    "simulate_phases",
    "simulate_endpoint_phases",
    "simulate_phases_rounds",
]


@dataclass(frozen=True)
class PhaseStatistics:
    """Analytic statistics of a placed communication phase."""

    num_messages: int
    total_hops: int
    max_hops: int
    mean_hops: float
    max_link_load_messages: int
    max_link_load_volume: float
    max_link_busy_time: float
    max_uncontended_message_time: float
    estimated_completion_time: float

    def as_row(self) -> Dict[str, object]:
        return {
            "messages": self.num_messages,
            "max hops": self.max_hops,
            "mean hops": round(self.mean_hops, 3),
            "max link msgs": self.max_link_load_messages,
            "est. time": round(self.estimated_completion_time, 3),
        }


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of the discrete-time store-and-forward simulation."""

    makespan: float
    statistics: PhaseStatistics
    per_message_completion: Tuple[float, ...]

    def as_row(self) -> Dict[str, object]:
        row = self.statistics.as_row()
        row["makespan"] = round(self.makespan, 3)
        return row


def _check_topology(network: HostNetwork, embedding: Embedding) -> None:
    if embedding.host.shape != network.topology.shape or embedding.host.kind != network.topology.kind:
        raise SimulationError(
            "the embedding's host graph does not match the network topology"
        )


def _routes_for(
    network: HostNetwork, embedding: Embedding, traffic: TrafficPattern, faults=None
) -> List[Tuple[List[DirectedLink], float]]:
    """Per-message loop reference: placed endpoints routed one message at a time.

    Endpoint validation happened in :meth:`TrafficPattern.placed`, so the
    per-message routing trusts the placed endpoints (``validate=False``).
    """
    _check_topology(network, embedding)
    routes: List[Tuple[List[DirectedLink], float]] = []
    for source, destination, size in traffic.placed(embedding):
        routes.append(
            (
                route_message(
                    network, source, destination, validate=False, faults=faults
                ),
                size,
            )
        )
    return routes


def _check_faults(network: HostNetwork, faults) -> None:
    if faults is not None and faults.graph != network.topology:
        raise SimulationError(
            f"faults were materialized for {faults.graph!r}, "
            f"not {network.topology!r}"
        )


def _phase_arrays_from_ranks(
    network: HostNetwork, embedding: Embedding, source_ranks, target_ranks, sizes,
    faults=None,
):
    """Routed and priced phase data from already-placed guest endpoint ranks."""
    np = require_numpy()
    _check_topology(network, embedding)
    _check_faults(network, faults)
    images = embedding.host_index_array()
    host_shape = network.topology.shape
    space = network.link_index_space()
    source_images = images[source_ranks]
    target_images = images[target_ranks]
    routes = expand_routes(
        space,
        indices_to_digits(source_images, host_shape),
        indices_to_digits(target_images, host_shape),
    )
    if faults is not None:
        routes = apply_fault_detours(space, routes, faults, source_images, target_images)
    # CostModel.link_occupancy is pure arithmetic, so it vectorizes as-is:
    # one source of truth for the per-hop cost on both backend paths.
    occupancy = network.cost_model.link_occupancy(sizes)
    weights = network.link_weight_array()
    hop_occupancy = None
    if weights is not None:
        hop_occupancy = np.repeat(occupancy, routes.hops) * weights[routes.link_ids]
    return space, routes, sizes, occupancy, hop_occupancy


def _phase_arrays(
    network: HostNetwork, embedding: Embedding, traffic: TrafficPattern, faults=None
):
    """Placed, routed and priced phase data for the vectorized paths.

    Returns ``(space, routes, sizes, occupancy, hop_occupancy)`` — the
    directed-link id space, the CSR route arrays (fault detours applied),
    the per-message size / link-occupancy arrays, and the per-hop occupancy
    (``None`` for homogeneous links, where the per-message value repeats).
    """
    require_numpy()
    source_ranks, target_ranks, sizes = traffic.endpoint_rank_arrays(embedding.guest.shape)
    return _phase_arrays_from_ranks(
        network, embedding, source_ranks, target_ranks, sizes, faults=faults
    )


def _statistics_from_link_loads(
    routes, occupancy, counts, volume, busy, hop_occupancy=None
) -> PhaseStatistics:
    """Reduce per-link load arrays to a :class:`PhaseStatistics`."""
    num_messages = routes.num_messages
    if num_messages == 0:
        return PhaseStatistics(
            num_messages=0,
            total_hops=0,
            max_hops=0,
            mean_hops=0.0,
            max_link_load_messages=0,
            max_link_load_volume=0.0,
            max_link_busy_time=0.0,
            max_uncontended_message_time=0.0,
            estimated_completion_time=0.0,
        )
    hops = routes.hops
    max_link_busy = float(busy.max())
    if hop_occupancy is None:
        max_uncontended = float((hops * occupancy).max())
    else:
        # Heterogeneous links: a message's uncontended time is the sum of its
        # per-hop occupancies.  bincount adds in hop order, matching the loop
        # reference's sequential accumulation float for float.
        np = require_numpy()
        message_of_hop = np.repeat(np.arange(num_messages, dtype=np.int64), hops)
        max_uncontended = float(
            np.bincount(
                message_of_hop, weights=hop_occupancy, minlength=num_messages
            ).max()
        )
    total_hops = int(hops.sum())
    return PhaseStatistics(
        num_messages=num_messages,
        total_hops=total_hops,
        max_hops=int(hops.max()),
        mean_hops=total_hops / num_messages,
        max_link_load_messages=int(counts.max()),
        max_link_load_volume=float(volume.max()),
        max_link_busy_time=max_link_busy,
        max_uncontended_message_time=max_uncontended,
        estimated_completion_time=max(max_link_busy, max_uncontended),
    )


def _statistics_from_arrays(
    space, routes, sizes, occupancy, hop_occupancy=None
) -> PhaseStatistics:
    """Fully vectorized analytic statistics (no per-message Python)."""
    if routes.num_messages == 0:
        return _statistics_from_link_loads(routes, occupancy, None, None, None)
    counts, volume, busy = accumulate_link_loads(
        space, routes, sizes, occupancy, hop_occupancy=hop_occupancy
    )
    return _statistics_from_link_loads(
        routes, occupancy, counts, volume, busy, hop_occupancy=hop_occupancy
    )


@accepts_deprecated_method
def analytic_phase_estimate(
    network: HostNetwork,
    embedding: Embedding,
    traffic: TrafficPattern,
    *,
    faults=None,
) -> PhaseStatistics:
    """Hop counts, link loads and the standard completion-time lower bound.

    The array backend accumulates every per-link quantity with one
    ``np.bincount`` scatter-add over the flat directed-link id space; the
    loop backend is the retained per-message reference.  Both produce
    identical statistics (the scatter-add visits hops in the same
    ``(message, hop)`` order the loop adds them, so even the float sums
    agree bit for bit).

    With ``faults`` (a materialized :class:`~repro.graphs.faults.Faults` of
    the host topology), cut routes take their BFS detours; heterogeneous
    per-link weights come from the network's ``link_weights`` spec.
    """
    if use_array_path():
        return _statistics_from_arrays(
            *_phase_arrays(network, embedding, traffic, faults=faults)
        )
    _check_faults(network, faults)
    return _statistics_from_routes(
        network.cost_model,
        _routes_for(network, embedding, traffic, faults=faults),
        link_weight=network.link_weight if network.link_weights is not None else None,
    )


def _statistics_from_routes(model, routes, link_weight=None) -> PhaseStatistics:
    """Loop-reference analytic statistics over per-message route lists.

    ``link_weight`` (a ``(source, target) -> float`` callable, or ``None``)
    prices heterogeneous links: each hop's occupancy is the model occupancy
    times its link's weight, and a message's uncontended time accumulates
    hop by hop.
    """
    link_messages: Dict[DirectedLink, int] = {}
    link_volume: Dict[DirectedLink, float] = {}
    link_busy: Dict[DirectedLink, float] = {}
    total_hops = 0
    max_hops = 0
    max_uncontended = 0.0
    for links, size in routes:
        hops = len(links)
        total_hops += hops
        max_hops = max(max_hops, hops)
        if link_weight is None:
            max_uncontended = max(max_uncontended, model.uncontended_time(size, hops))
            for link in links:
                link_messages[link] = link_messages.get(link, 0) + 1
                link_volume[link] = link_volume.get(link, 0.0) + size
                link_busy[link] = link_busy.get(link, 0.0) + model.link_occupancy(size)
        else:
            uncontended = 0.0
            for link in links:
                occupancy = model.link_occupancy(size) * link_weight(*link)
                uncontended += occupancy
                link_messages[link] = link_messages.get(link, 0) + 1
                link_volume[link] = link_volume.get(link, 0.0) + size
                link_busy[link] = link_busy.get(link, 0.0) + occupancy
            max_uncontended = max(max_uncontended, uncontended)
    num_messages = len(routes)
    max_link_busy = max(link_busy.values(), default=0.0)
    return PhaseStatistics(
        num_messages=num_messages,
        total_hops=total_hops,
        max_hops=max_hops,
        mean_hops=total_hops / num_messages if num_messages else 0.0,
        max_link_load_messages=max(link_messages.values(), default=0),
        max_link_load_volume=max(link_volume.values(), default=0.0),
        max_link_busy_time=max_link_busy,
        max_uncontended_message_time=max_uncontended,
        estimated_completion_time=max(max_link_busy, max_uncontended),
    )


def simulate_phases(phase_inputs, *, max_events: int = 5_000_000) -> List[SimulationResult]:
    """Simulate many placed phases, sharing one vectorized event loop.

    ``phase_inputs`` is a sequence of ``(network, embedding, traffic)``
    triples.  Under the array backend every phase is expanded once and all of
    them advance together through :func:`simulate_phases_rounds` (their link
    id blocks are disjoint, so the merged loop is exactly the per-phase
    results — it only amortizes the per-round Python overhead); under the
    loop backend the phases are simulated one by one with the reference
    implementation.  Either way the results equal
    ``[simulate_phase(*p) for p in phase_inputs]`` field for field.
    """
    if not use_array_path():
        return [
            simulate_phase(network, embedding, traffic, max_events=max_events)
            for network, embedding, traffic in phase_inputs
        ]
    expanded = [
        _phase_arrays(network, embedding, traffic)
        for network, embedding, traffic in phase_inputs
    ]
    outcomes = simulate_phases_rounds(
        [
            (space, routes, occupancy, hop_occupancy)
            for space, routes, _sizes, occupancy, hop_occupancy in expanded
        ],
        max_events=max_events,
    )
    return [
        SimulationResult(
            makespan=makespan,
            statistics=_statistics_from_arrays(
                space, routes, sizes, occupancy, hop_occupancy
            ),
            per_message_completion=tuple(completion),
        )
        for (space, routes, sizes, occupancy, hop_occupancy), (
            makespan,
            completion,
        ) in zip(expanded, outcomes)
    ]


def simulate_endpoint_phases(
    phases, *, max_events: int = 5_000_000
) -> List[SimulationResult]:
    """Like :func:`simulate_phases`, but from placed guest endpoint ranks.

    ``phases`` is a sequence of ``(network, embedding, (source_ranks,
    target_ranks, sizes))`` triples — the arrays a
    :meth:`~repro.netsim.traffic.TrafficPattern.endpoint_rank_arrays` call
    (or the vectorized generators of
    :func:`~repro.netsim.traffic.traffic_rank_arrays`) would produce.  This
    is the batched survey path's entry point: no :class:`Message` tuples
    exist at any point, all phases sharing one link-index space expand their
    routes in a single :func:`~repro.netsim.kernels.expand_routes` call
    (``expand_routes`` is row-wise, so a concatenated batch expands to the
    concatenation of the per-phase expansions), and every phase advances
    through one shared round loop.  Array kernels only — the results equal
    ``simulate_phase`` over the equivalent patterns field for field.
    """
    np = require_numpy()
    groups: Dict[int, Dict] = {}  # one entry per distinct link-index space
    priced: List = [None] * len(phases)
    for index, (network, embedding, (source_ranks, target_ranks, sizes)) in enumerate(
        phases
    ):
        _check_topology(network, embedding)
        if network.link_weights is not None:
            raise SimulationError(
                "simulate_endpoint_phases does not support weighted links; "
                "use simulate_phase per phase instead"
            )
        space = network.link_index_space()
        images = embedding.host_index_array()
        group = groups.setdefault(id(space), {"space": space, "items": []})
        group["items"].append((index, images[source_ranks], images[target_ranks]))
        priced[index] = (sizes, network.cost_model.link_occupancy(sizes))
    routes: List = [None] * len(phases)
    statistics: List = [None] * len(phases)
    for group in groups.values():
        space = group["space"]
        items = group["items"]
        shape = space.shape
        merged = expand_routes(
            space,
            indices_to_digits(np.concatenate([src for _, src, _ in items]), shape),
            indices_to_digits(np.concatenate([dst for _, _, dst in items]), shape),
        )
        lower = 0
        for index, src, _dst in items:
            upper = lower + src.size
            hop_lower = int(merged.starts[lower])
            hop_upper = int(merged.starts[upper])
            routes[index] = RouteArrays(
                offsets=merged.offsets[lower:upper],
                hops=merged.hops[lower:upper],
                starts=merged.starts[lower : upper + 1] - hop_lower,
                link_ids=merged.link_ids[hop_lower:hop_upper],
            )
            lower = upper
        # Per-phase link-load statistics from the merged expansion: one
        # scatter-add per quantity for the whole group, phases separated by
        # slot-block offsets.  Each phase's hops are contiguous in the
        # merged arrays and keep their (message, hop) order, so every
        # (phase, link) bin receives exactly the adds — in exactly the order
        # — of the per-phase `accumulate_link_loads` scatter, and the float
        # sums stay bit-for-bit equal.
        slots = space.num_slots
        message_counts = np.asarray([src.size for _, src, _ in items], dtype=np.int64)
        phase_of_hop = np.repeat(
            np.repeat(np.arange(len(items), dtype=np.int64), message_counts),
            merged.hops,
        )
        grouped_ids = merged.link_ids + phase_of_hop * slots
        length = len(items) * slots
        sizes_of_hop = np.repeat(
            np.concatenate([priced[index][0] for index, _s, _d in items]), merged.hops
        )
        occupancy_of_hop = np.repeat(
            np.concatenate([priced[index][1] for index, _s, _d in items]), merged.hops
        )
        counts = np.bincount(grouped_ids, minlength=length).reshape(-1, slots)
        volume = np.bincount(
            grouped_ids, weights=sizes_of_hop, minlength=length
        ).reshape(-1, slots)
        busy = np.bincount(
            grouped_ids, weights=occupancy_of_hop, minlength=length
        ).reshape(-1, slots)
        for position, (index, _src, _dst) in enumerate(items):
            statistics[index] = _statistics_from_link_loads(
                routes[index],
                priced[index][1],
                counts[position],
                volume[position],
                busy[position],
            )
    outcomes = simulate_phases_rounds(
        [
            (network.link_index_space(), phase_routes, occupancy)
            for (network, _e, _t), phase_routes, (_sizes, occupancy) in zip(
                phases, routes, priced
            )
        ],
        max_events=max_events,
    )
    return [
        SimulationResult(
            makespan=makespan,
            statistics=phase_statistics,
            per_message_completion=tuple(completion),
        )
        for phase_statistics, (makespan, completion) in zip(statistics, outcomes)
    ]


@dataclass(order=True)
class _LinkRequest:
    """A pending hop of a message, ordered for deterministic scheduling."""

    ready_time: float
    message_index: int
    hop_index: int = field(compare=False)


def simulate_phases_rounds(phases, *, max_events: int = 5_000_000):
    """Round-based vectorized event loop over one or many expanded phases.

    ``phases`` is a sequence of ``(space, routes, occupancy)`` triples (the
    output of the per-phase route expansion) — or 4-tuples with a trailing
    per-*hop* occupancy array (aligned with ``routes.link_ids``) for
    heterogeneous links; a ``None`` fourth element means homogeneous, where
    each message's occupancy simply repeats over its hops.  The result is one
    ``(makespan, per_message_completion)`` pair per phase.  All phases run in
    a single loop: link ids are offset into disjoint blocks, so the phases
    cannot interact, and merging them only makes each round's batch larger.

    Each round advances *every* ready message at once instead of popping one
    heap event per hop.  Correctness relies on the batch window: with
    ``t_min`` the earliest pending request time and ``occ_min`` the smallest
    pending occupancy, every request with ``ready < t_min + occ_min`` can be
    served this round, because any request spawned by the round finishes at
    ``max(ready, link_free) + occ >= t_min + occ_min`` (float addition is
    monotone) — strictly after every batch member, exactly where the heap
    would order it.  Within the round, requests are lexsorted by
    ``(link, ready, message index)`` — the heap's service order per link —
    and each link's queue is drained one *queue position* per inner step
    (``start = max(ready, link_free)``, the same float ops in the same
    order), so makespans and completion times are bit-for-bit identical to
    the heap loops.  Degenerate cases where the window collapses (zero
    occupancy, or times too large for the sum to round up) fall back to
    serving exactly one request — the global ``(ready, index)`` minimum —
    per round, which is verbatim heap order.

    The ``max_events`` budget is enforced per phase (an event is one served
    hop, as in the heap loops); exceeding it raises
    :class:`~repro.exceptions.SimulationError` for the whole call.
    """
    np = require_numpy()
    makespans = [0.0] * len(phases)
    completions: List[List[float]] = [[] for _ in phases]
    live = [index for index, entry in enumerate(phases) if entry[1].num_messages]
    if not live:
        return list(zip(makespans, completions))

    link_offset = 0
    counts: List[int] = []
    link_parts, first_parts, last_parts, occ_parts = [], [], [], []
    for index in live:
        entry = phases[index]
        space, routes, occupancy = entry[0], entry[1], entry[2]
        hop_part = entry[3] if len(entry) > 3 else None
        counts.append(routes.num_messages)
        link_parts.append(routes.link_ids + link_offset)
        first_parts.append(routes.starts[:-1])
        last_parts.append(routes.starts[1:])
        # The loop works in per-hop occupancy throughout; for homogeneous
        # links the per-message value repeats over its hops, producing the
        # exact same floats the per-message form would gather.
        if hop_part is None:
            hop_part = np.repeat(np.asarray(occupancy, dtype=np.float64), routes.hops)
        occ_parts.append(np.asarray(hop_part, dtype=np.float64))
        link_offset += space.num_slots
    hop_offsets = np.cumsum([0] + [part.size for part in link_parts[:-1]])
    link_ids = np.concatenate(link_parts)
    first_hop = np.concatenate(
        [part + offset for part, offset in zip(first_parts, hop_offsets)]
    )
    last_hop = np.concatenate(
        [part + offset for part, offset in zip(last_parts, hop_offsets)]
    )
    hop_occupancy = np.concatenate(occ_parts)
    phase_of = np.repeat(np.arange(len(live), dtype=np.int64), counts)

    kernels = active_kernels()
    if kernels is not None:
        # Compiled backend: the whole drain is one JIT kernel call over the
        # merged arrays — same heap order, same float ops, bit-for-bit equal
        # completion times (tests/test_compiled_backend.py pins it).
        status, completion, _events = kernels.drain(
            first_hop,
            last_hop,
            link_ids,
            hop_occupancy,
            phase_of,
            link_offset,
            len(live),
            max_events,
        )
        if status != 0:
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration "
                "is too large"
            )
        return _split_completions(makespans, completions, completion, live, counts)

    completion = np.zeros(first_hop.size, dtype=np.float64)
    link_free = np.zeros(link_offset, dtype=np.float64)
    events = np.zeros(len(live), dtype=np.int64)

    # The working set, as *aligned* arrays: the global index, ready time,
    # occupancy and hop pointers of every message with hops left.  All
    # per-round work happens on these compact arrays (no gathers through the
    # full message space); completed entries are parked at ready = +inf and
    # physically compacted once a quarter of the set is dead.  The batch
    # window uses the one-time global occupancy minimum: messages only ever
    # leave the working set, so the true pending minimum can only grow, and
    # a smaller-than-necessary window stays correct — it just splits work
    # across more rounds.
    ids = np.flatnonzero(first_hop < last_hop)
    ready_a = np.zeros(ids.size, dtype=np.float64)
    hop_a = first_hop[ids]
    last_a = last_hop[ids]
    occ_floor = hop_occupancy.min() if hop_occupancy.size else 0.0
    alive = ids.size
    dead = 0
    while alive:
        t_min = ready_a.min()
        window = t_min + occ_floor
        if window > t_min:
            mask = ready_a < window
        else:
            # Degenerate window: serve the single (ready, index)-minimal
            # request this round — verbatim heap semantics, never fast but
            # always exact.
            mask = np.zeros(ids.size, dtype=bool)
            mask[np.flatnonzero(ready_a == t_min)[:1]] = True
        batch_ids = ids[mask]
        events += np.bincount(phase_of[batch_ids], minlength=len(live))
        if (events > max_events).any():
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration is too large"
            )
        hop_b = hop_a[mask]
        links = link_ids[hop_b]
        r_b = ready_a[mask]
        o_b = hop_occupancy[hop_b]
        # The heap serves a link's requests by (ready_time, message index);
        # the batch is ascending by index and the sorts are stable, so the
        # link id (plus the ready time, when the round spans several ready
        # times) is the whole key.  One stable integer sort covers the
        # common uniform-occupancy survey case, where every ready time in
        # the window equals t_min.
        if r_b.size and r_b.max() == t_min:
            order = np.argsort(links, kind="stable")
        else:
            order = np.lexsort((r_b, links))
        s_links = links[order]
        s_ready = r_b[order]
        s_occ = o_b[order]
        positions = np.arange(s_links.size, dtype=np.int64)
        boundary = np.empty(s_links.size, dtype=bool)
        boundary[0] = True
        np.not_equal(s_links[1:], s_links[:-1], out=boundary[1:])
        rank = positions - np.maximum.accumulate(np.where(boundary, positions, 0))
        # Serve queue position p of every link in lockstep: position 0 may
        # wait for the link (start = max(ready, link_free)), deeper positions
        # chain off the freshly updated link_free — the loop's arithmetic,
        # one vectorized step per queue depth instead of one event per hop.
        by_rank = np.argsort(rank, kind="stable")
        rank_counts = np.bincount(rank)
        bounds = np.concatenate([[0], np.cumsum(rank_counts)])
        finish = np.empty(s_links.size, dtype=np.float64)
        for position in range(rank_counts.size):
            sel = by_rank[bounds[position] : bounds[position + 1]]
            chosen = s_links[sel]
            started = np.maximum(s_ready[sel], link_free[chosen])
            ended = started + s_occ[sel]
            link_free[chosen] = ended
            finish[sel] = ended
        finish_b = np.empty(s_links.size, dtype=np.float64)
        finish_b[order] = finish
        hop_b += 1
        hop_a[mask] = hop_b
        finished = hop_b == last_a[mask]
        if finished.any():
            completion[batch_ids[finished]] = finish_b[finished]
            finish_b[finished] = np.inf  # park: never batched again
            done = int(finished.sum())
            alive -= done
            dead += done
        ready_a[mask] = finish_b
        if dead * 4 >= ids.size and alive:
            keep = hop_a < last_a
            ids = ids[keep]
            ready_a = ready_a[keep]
            hop_a = hop_a[keep]
            last_a = last_a[keep]
            dead = 0

    return _split_completions(makespans, completions, completion, live, counts)


def _split_completions(makespans, completions, completion, live, counts):
    """Slice the merged completion array back into per-phase results."""
    offset = 0
    for position, index in enumerate(live):
        phase_completion = completion[offset : offset + counts[position]]
        makespans[index] = float(phase_completion.max()) if counts[position] else 0.0
        completions[index] = phase_completion.tolist()
        offset += counts[position]
    return list(zip(makespans, completions))


def _simulate_arrays(
    space, routes, occupancy, max_events: int, hop_occupancy=None
) -> Tuple[float, List[float]]:
    """Heap event loop keyed by directed-link ids over preallocated routes.

    The cross-checked single-phase reference for
    :func:`simulate_phases_rounds` (which the array backend dispatches to):
    the routes were expanded once into a CSR batch (shared with the analytic
    statistics); the event loop then only touches flat preallocated
    sequences (`link_free[link_id]`, ``next_hop[message]``) — no
    ``(node, node)`` tuples, no dicts.  Ordering and arithmetic match the
    loop reference exactly: the heap orders by
    ``(ready_time, message_index)`` and each hop costs the same
    ``alpha + size/bandwidth`` float.  ``hop_occupancy`` (aligned with
    ``routes.link_ids``) prices heterogeneous links per hop.
    """
    num_messages = routes.num_messages
    link_ids = routes.link_ids.tolist()
    starts = routes.starts.tolist()
    occupancies = occupancy.tolist()
    hop_costs = None if hop_occupancy is None else hop_occupancy.tolist()
    link_free = [0.0] * space.num_slots
    next_hop = starts[:-1].copy()
    completion = [0.0] * num_messages

    queue: List[Tuple[float, int]] = [
        (0.0, index) for index in range(num_messages) if starts[index] < starts[index + 1]
    ]
    heapq.heapify(queue)
    events = 0
    while queue:
        events += 1
        if events > max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration is too large"
            )
        ready_time, index = heapq.heappop(queue)
        hop = next_hop[index]
        link = link_ids[hop]
        free_at = link_free[link]
        start = ready_time if ready_time >= free_at else free_at
        cost = occupancies[index] if hop_costs is None else hop_costs[hop]
        finish = start + cost
        link_free[link] = finish
        next_hop[index] = hop + 1
        if hop + 1 < starts[index + 1]:
            heapq.heappush(queue, (finish, index))
        else:
            completion[index] = finish
    makespan = max(completion, default=0.0)
    return makespan, completion


@accepts_deprecated_method
def simulate_phase(
    network: HostNetwork,
    embedding: Embedding,
    traffic: TrafficPattern,
    *,
    max_events: int = 5_000_000,
    faults=None,
) -> SimulationResult:
    """Discrete-event store-and-forward simulation of one communication phase.

    Every directed link serves at most one message at a time; a message
    occupies a link for ``alpha + size/bandwidth`` time units per hop and may
    only request its next link after the previous hop completes.  Contention
    is resolved first-come-first-served with ties broken by message index, so
    the simulation is fully deterministic — and identical under both
    backend implementations.

    Placement and routing are shared between the analytic statistics and
    the event loop, so each phase expands its routes exactly once.  The
    array backend advances the phase with the round-based vectorized event
    loop (:func:`simulate_phases_rounds`); the retained heap loops — flat
    link-id (:func:`_simulate_arrays`) and node-tuple (the loop backend) —
    are its cross-checked references.

    ``faults`` (a materialized :class:`~repro.graphs.faults.Faults` of the
    host topology) reroutes cut messages over BFS detours; heterogeneous
    per-link weights come from the network's ``link_weights`` spec and
    scale each hop's occupancy.
    """
    if use_array_path():
        space, expanded, sizes, occupancy, hop_occupancy = _phase_arrays(
            network, embedding, traffic, faults=faults
        )
        ((makespan, completion),) = simulate_phases_rounds(
            [(space, expanded, occupancy, hop_occupancy)], max_events=max_events
        )
        return SimulationResult(
            makespan=makespan,
            statistics=_statistics_from_arrays(
                space, expanded, sizes, occupancy, hop_occupancy
            ),
            per_message_completion=tuple(completion),
        )

    _check_faults(network, faults)
    model = network.cost_model
    link_weight = network.link_weight if network.link_weights is not None else None
    routes = _routes_for(network, embedding, traffic, faults=faults)
    statistics = _statistics_from_routes(model, routes, link_weight=link_weight)
    link_free_at: Dict[DirectedLink, float] = {}
    completion = [0.0] * len(routes)

    # Event queue of pending hop requests.
    queue: List[_LinkRequest] = []
    for index, (links, _size) in enumerate(routes):
        if links:
            heapq.heappush(queue, _LinkRequest(0.0, index, 0))
        else:
            completion[index] = 0.0

    events = 0
    while queue:
        events += 1
        if events > max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration is too large"
            )
        request = heapq.heappop(queue)
        links, size = routes[request.message_index]
        link = links[request.hop_index]
        start = max(request.ready_time, link_free_at.get(link, 0.0))
        if link_weight is None:
            finish = start + model.link_occupancy(size)
        else:
            finish = start + model.link_occupancy(size) * link_weight(*link)
        link_free_at[link] = finish
        if request.hop_index + 1 < len(links):
            heapq.heappush(
                queue,
                _LinkRequest(finish, request.message_index, request.hop_index + 1),
            )
        else:
            completion[request.message_index] = finish

    makespan = max(completion, default=0.0)
    return SimulationResult(
        makespan=makespan,
        statistics=statistics,
        per_message_completion=tuple(completion),
    )
