"""Store-and-forward simulation of one communication phase.

Two complementary evaluations of a placed traffic pattern are provided:

* :func:`analytic_phase_estimate` — closed-form statistics: hop counts,
  per-link loads and the standard lower-bound completion-time estimate
  ``max(most loaded link busy time, slowest uncontended message)``;
* :func:`simulate_phase` — a discrete-time store-and-forward simulation in
  which every directed link transfers one message at a time (FIFO per link,
  deterministic tie-breaking), yielding an actual makespan that accounts for
  queueing.

Both place each message on the dimension-ordered route between the images of
its endpoints under the supplied embedding, so the guest-edge hop counts are
bounded by the embedding's dilation — the mechanism by which the paper's
low-dilation embeddings translate into faster communication phases.

Both evaluations resolve their implementation from the ambient execution
context (:mod:`repro.runtime.context`), the same switch as the construction
builders and cost measures: the array backend batches the routing and the
link-load accumulation over flat directed-link ids
(:mod:`repro.netsim.kernels`) and keys the event loop by link id over
preallocated route arrays; the loop backend is the retained per-message
reference, cross-checked hop-for-hop and float-for-float by the
differential tests.  Force it with ``use_context(backend="loop")``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.embedding import Embedding, use_array_path
from ..exceptions import SimulationError
from ..runtime.context import accepts_deprecated_method
from ..numbering.arrays import indices_to_digits, require_numpy
from .kernels import accumulate_link_loads, expand_routes
from .network import DirectedLink, HostNetwork
from .routing import route_message
from .traffic import TrafficPattern

__all__ = ["PhaseStatistics", "SimulationResult", "analytic_phase_estimate", "simulate_phase"]


@dataclass(frozen=True)
class PhaseStatistics:
    """Analytic statistics of a placed communication phase."""

    num_messages: int
    total_hops: int
    max_hops: int
    mean_hops: float
    max_link_load_messages: int
    max_link_load_volume: float
    max_link_busy_time: float
    max_uncontended_message_time: float
    estimated_completion_time: float

    def as_row(self) -> Dict[str, object]:
        return {
            "messages": self.num_messages,
            "max hops": self.max_hops,
            "mean hops": round(self.mean_hops, 3),
            "max link msgs": self.max_link_load_messages,
            "est. time": round(self.estimated_completion_time, 3),
        }


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of the discrete-time store-and-forward simulation."""

    makespan: float
    statistics: PhaseStatistics
    per_message_completion: Tuple[float, ...]

    def as_row(self) -> Dict[str, object]:
        row = self.statistics.as_row()
        row["makespan"] = round(self.makespan, 3)
        return row


def _check_topology(network: HostNetwork, embedding: Embedding) -> None:
    if embedding.host.shape != network.topology.shape or embedding.host.kind != network.topology.kind:
        raise SimulationError(
            "the embedding's host graph does not match the network topology"
        )


def _routes_for(
    network: HostNetwork, embedding: Embedding, traffic: TrafficPattern
) -> List[Tuple[List[DirectedLink], float]]:
    """Per-message loop reference: placed endpoints routed one message at a time.

    Endpoint validation happened in :meth:`TrafficPattern.placed`, so the
    per-message routing trusts the placed endpoints (``validate=False``).
    """
    _check_topology(network, embedding)
    routes: List[Tuple[List[DirectedLink], float]] = []
    for source, destination, size in traffic.placed(embedding):
        routes.append((route_message(network, source, destination, validate=False), size))
    return routes


def _phase_arrays(network: HostNetwork, embedding: Embedding, traffic: TrafficPattern):
    """Placed, routed and priced phase data for the vectorized paths.

    Returns ``(space, routes, sizes, occupancy)`` — the directed-link id
    space, the CSR route arrays, and the per-message size / link-occupancy
    arrays.
    """
    _check_topology(network, embedding)
    require_numpy()
    source_ranks, target_ranks, sizes = traffic.endpoint_rank_arrays(embedding.guest.shape)
    images = embedding.host_index_array()
    host_shape = network.topology.shape
    space = network.link_index_space()
    routes = expand_routes(
        space,
        indices_to_digits(images[source_ranks], host_shape),
        indices_to_digits(images[target_ranks], host_shape),
    )
    # CostModel.link_occupancy is pure arithmetic, so it vectorizes as-is:
    # one source of truth for the per-hop cost on both backend paths.
    occupancy = network.cost_model.link_occupancy(sizes)
    return space, routes, sizes, occupancy


def _statistics_from_arrays(space, routes, sizes, occupancy) -> PhaseStatistics:
    """Fully vectorized analytic statistics (no per-message Python)."""
    num_messages = routes.num_messages
    if num_messages == 0:
        return PhaseStatistics(
            num_messages=0,
            total_hops=0,
            max_hops=0,
            mean_hops=0.0,
            max_link_load_messages=0,
            max_link_load_volume=0.0,
            max_link_busy_time=0.0,
            max_uncontended_message_time=0.0,
            estimated_completion_time=0.0,
        )
    hops = routes.hops
    counts, volume, busy = accumulate_link_loads(space, routes, sizes, occupancy)
    max_link_busy = float(busy.max())
    max_uncontended = float((hops * occupancy).max())
    total_hops = int(hops.sum())
    return PhaseStatistics(
        num_messages=num_messages,
        total_hops=total_hops,
        max_hops=int(hops.max()),
        mean_hops=total_hops / num_messages,
        max_link_load_messages=int(counts.max()),
        max_link_load_volume=float(volume.max()),
        max_link_busy_time=max_link_busy,
        max_uncontended_message_time=max_uncontended,
        estimated_completion_time=max(max_link_busy, max_uncontended),
    )


@accepts_deprecated_method
def analytic_phase_estimate(
    network: HostNetwork,
    embedding: Embedding,
    traffic: TrafficPattern,
) -> PhaseStatistics:
    """Hop counts, link loads and the standard completion-time lower bound.

    The array backend accumulates every per-link quantity with one
    ``np.bincount`` scatter-add over the flat directed-link id space; the
    loop backend is the retained per-message reference.  Both produce
    identical statistics (the scatter-add visits hops in the same
    ``(message, hop)`` order the loop adds them, so even the float sums
    agree bit for bit).
    """
    if use_array_path():
        return _statistics_from_arrays(*_phase_arrays(network, embedding, traffic))
    return _statistics_from_routes(
        network.cost_model, _routes_for(network, embedding, traffic)
    )


def _statistics_from_routes(model, routes) -> PhaseStatistics:
    """Loop-reference analytic statistics over per-message route lists."""
    link_messages: Dict[DirectedLink, int] = {}
    link_volume: Dict[DirectedLink, float] = {}
    link_busy: Dict[DirectedLink, float] = {}
    total_hops = 0
    max_hops = 0
    max_uncontended = 0.0
    for links, size in routes:
        hops = len(links)
        total_hops += hops
        max_hops = max(max_hops, hops)
        max_uncontended = max(max_uncontended, model.uncontended_time(size, hops))
        for link in links:
            link_messages[link] = link_messages.get(link, 0) + 1
            link_volume[link] = link_volume.get(link, 0.0) + size
            link_busy[link] = link_busy.get(link, 0.0) + model.link_occupancy(size)
    num_messages = len(routes)
    max_link_busy = max(link_busy.values(), default=0.0)
    return PhaseStatistics(
        num_messages=num_messages,
        total_hops=total_hops,
        max_hops=max_hops,
        mean_hops=total_hops / num_messages if num_messages else 0.0,
        max_link_load_messages=max(link_messages.values(), default=0),
        max_link_load_volume=max(link_volume.values(), default=0.0),
        max_link_busy_time=max_link_busy,
        max_uncontended_message_time=max_uncontended,
        estimated_completion_time=max(max_link_busy, max_uncontended),
    )


@dataclass(order=True)
class _LinkRequest:
    """A pending hop of a message, ordered for deterministic scheduling."""

    ready_time: float
    message_index: int
    hop_index: int = field(compare=False)


def _simulate_arrays(space, routes, occupancy, max_events: int) -> Tuple[float, List[float]]:
    """Event loop keyed by directed-link ids over preallocated route arrays.

    The routes were expanded once into a CSR batch (shared with the analytic
    statistics); the event loop then only touches flat preallocated
    sequences (`link_free[link_id]`, ``next_hop[message]``) — no
    ``(node, node)`` tuples, no dicts.  Ordering and arithmetic match the
    loop reference exactly: the heap orders by
    ``(ready_time, message_index)`` and each hop costs the same
    ``alpha + size/bandwidth`` float.
    """
    num_messages = routes.num_messages
    link_ids = routes.link_ids.tolist()
    starts = routes.starts.tolist()
    occupancies = occupancy.tolist()
    link_free = [0.0] * space.num_slots
    next_hop = starts[:-1].copy()
    completion = [0.0] * num_messages

    queue: List[Tuple[float, int]] = [
        (0.0, index) for index in range(num_messages) if starts[index] < starts[index + 1]
    ]
    heapq.heapify(queue)
    events = 0
    while queue:
        events += 1
        if events > max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration is too large"
            )
        ready_time, index = heapq.heappop(queue)
        hop = next_hop[index]
        link = link_ids[hop]
        free_at = link_free[link]
        start = ready_time if ready_time >= free_at else free_at
        finish = start + occupancies[index]
        link_free[link] = finish
        next_hop[index] = hop + 1
        if hop + 1 < starts[index + 1]:
            heapq.heappush(queue, (finish, index))
        else:
            completion[index] = finish
    makespan = max(completion, default=0.0)
    return makespan, completion


@accepts_deprecated_method
def simulate_phase(
    network: HostNetwork,
    embedding: Embedding,
    traffic: TrafficPattern,
    *,
    max_events: int = 5_000_000,
) -> SimulationResult:
    """Discrete-event store-and-forward simulation of one communication phase.

    Every directed link serves at most one message at a time; a message
    occupies a link for ``alpha + size/bandwidth`` time units per hop and may
    only request its next link after the previous hop completes.  Contention
    is resolved first-come-first-served with ties broken by message index, so
    the simulation is fully deterministic — and identical under both
    backend implementations.

    Placement and routing are shared between the analytic statistics and
    the event loop, so each phase expands its routes exactly once.
    """
    if use_array_path():
        space, expanded, sizes, occupancy = _phase_arrays(network, embedding, traffic)
        makespan, completion = _simulate_arrays(space, expanded, occupancy, max_events)
        return SimulationResult(
            makespan=makespan,
            statistics=_statistics_from_arrays(space, expanded, sizes, occupancy),
            per_message_completion=tuple(completion),
        )

    model = network.cost_model
    routes = _routes_for(network, embedding, traffic)
    statistics = _statistics_from_routes(model, routes)
    link_free_at: Dict[DirectedLink, float] = {}
    completion = [0.0] * len(routes)

    # Event queue of pending hop requests.
    queue: List[_LinkRequest] = []
    for index, (links, _size) in enumerate(routes):
        if links:
            heapq.heappush(queue, _LinkRequest(0.0, index, 0))
        else:
            completion[index] = 0.0

    events = 0
    while queue:
        events += 1
        if events > max_events:
            raise SimulationError(
                f"simulation exceeded {max_events} events; the configuration is too large"
            )
        request = heapq.heappop(queue)
        links, size = routes[request.message_index]
        link = links[request.hop_index]
        start = max(request.ready_time, link_free_at.get(link, 0.0))
        finish = start + model.link_occupancy(size)
        link_free_at[link] = finish
        if request.hop_index + 1 < len(links):
            heapq.heappush(
                queue,
                _LinkRequest(finish, request.message_index, request.hop_index + 1),
            )
        else:
            completion[request.message_index] = finish

    makespan = max(completion, default=0.0)
    return SimulationResult(
        makespan=makespan,
        statistics=statistics,
        per_message_completion=tuple(completion),
    )
