"""Per-link latency weights: heterogeneous links for the netsim models.

A :class:`LinkWeightSpec` assigns every *directed* link of a topology a
latency multiplier: a message's per-hop occupancy becomes
``cost_model.link_occupancy(size) * weight(link)``.  Three families:

``uniform``
    Every weight is 1.0 — the homogeneous default, numerically identical
    to running without weights at all.
``dimension``
    ``1 + scale * j`` for a link along dimension ``j`` — models machines
    whose higher dimensions are slower (e.g. board-crossing channels).
``random``
    ``1 + scale * u`` with ``u ∈ [0, 1)`` drawn per link id from a
    splitmix64-style integer hash of ``(link id, seed)`` — heterogeneous
    links with no RNG state, so the scalar (loop) and vectorized (array)
    evaluations are bit-for-bit identical by construction.

Weights are keyed by the flat directed-link id of
:class:`~repro.netsim.kernels.LinkIndexSpace` (``(2j + [dir<0])·n + rank``),
the same id space the vectorized kernels accumulate over.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidShapeError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import require_numpy
from ..types import Node

__all__ = ["LinkWeightSpec", "directed_slot_id"]

_KINDS = ("uniform", "dimension", "random")
_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_SCALE = 2.0**-64


def directed_slot_id(topology: CartesianGraph, source: Node, target: Node) -> int:
    """The flat directed-link id of the hop ``source -> target`` (pure Python).

    Mirrors the :class:`~repro.netsim.kernels.LinkIndexSpace` layout without
    requiring NumPy, so the loop backend can price weighted hops.
    """
    source = tuple(source)
    target = tuple(target)
    changed = [j for j, (a, b) in enumerate(zip(source, target)) if a != b]
    if len(changed) != 1:
        raise InvalidShapeError(
            f"{source!r} -> {target!r} is not a single-dimension hop"
        )
    j = changed[0]
    length = topology.shape[j]
    positive = (source[j] + 1) % length == target[j]
    channel = 2 * j + (0 if positive else 1)
    return channel * topology.size + topology.node_index(source)


def _hash_unit(value: int) -> float:
    """splitmix64 finalizer of ``value``, folded to a float in ``[0, 1)``."""
    z = (value + _GOLDEN) & _MASK
    z = ((z ^ (z >> 30)) * _MIX_1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX_2) & _MASK
    z = z ^ (z >> 31)
    return float(z) * _SCALE


@dataclass(frozen=True)
class LinkWeightSpec:
    """A deterministic per-directed-link latency multiplier assignment."""

    kind: str = "uniform"
    scale: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise InvalidShapeError(
                f"unknown link-weight kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.scale < 0:
            raise InvalidShapeError("link-weight scale must be non-negative")

    @property
    def token(self) -> str:
        return f"{self.kind}:{self.scale:g}:{self.seed}"

    @classmethod
    def from_token(cls, token: str) -> "LinkWeightSpec":
        """Parse ``kind[:scale[:seed]]`` (e.g. ``"random:0.5:3"``)."""
        parts = token.split(":")
        if not 1 <= len(parts) <= 3:
            raise InvalidShapeError(
                f"invalid link-weight token {token!r}; expected 'kind[:scale[:seed]]'"
            )
        kind = parts[0]
        scale = float(parts[1]) if len(parts) > 1 else 0.5
        seed = int(parts[2]) if len(parts) > 2 else 0
        return cls(kind, scale, seed)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def weight_of_slot(self, topology: CartesianGraph, slot_id: int) -> float:
        """The weight of one directed-link id (scalar, pure Python)."""
        if self.kind == "uniform":
            return 1.0
        dimension = (slot_id // topology.size) // 2
        if self.kind == "dimension":
            return 1.0 + self.scale * dimension
        return 1.0 + self.scale * _hash_unit(slot_id + self.seed * _GOLDEN)

    def weight_of(self, topology: CartesianGraph, source: Node, target: Node) -> float:
        """The weight of the directed hop ``source -> target``."""
        if self.kind == "uniform":
            return 1.0
        return self.weight_of_slot(topology, directed_slot_id(topology, source, target))

    def weight_array(self, space):
        """Weights of every slot of a link-index space (vectorized).

        Bit-for-bit equal to :meth:`weight_of_slot` over ``range(num_slots)``:
        the hash is pure modular integer arithmetic (``uint64`` wraparound
        matches Python's masked big ints) and the float fold multiplies by an
        exact power of two.  Requires NumPy.
        """
        np = require_numpy()
        slots = np.arange(space.num_slots, dtype=np.uint64)
        if self.kind == "uniform":
            return np.ones(space.num_slots, dtype=np.float64)
        if self.kind == "dimension":
            dimensions = (slots.astype(np.int64) // space.num_nodes) // 2
            return 1.0 + self.scale * dimensions
        z = slots + np.uint64((self.seed * _GOLDEN + _GOLDEN) & _MASK)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)
        z = z ^ (z >> np.uint64(31))
        return 1.0 + self.scale * (z.astype(np.float64) * _SCALE)
