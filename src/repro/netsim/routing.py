"""Dimension-ordered (e-cube) routing of messages, with a fault fallback.

Every message follows the dimension-ordered shortest path between its source
and destination processors (:func:`repro.graphs.paths.dimension_order_path`),
the standard deterministic, deadlock-free routing discipline on meshes and
toruses.  The number of links on the route equals the graph distance, so the
embedding's dilation is exactly the maximum route length of neighbour-exchange
traffic.

On a degraded host (``faults`` given), a message keeps its dimension-ordered
route while that route survives; a route cut by a dead link or node falls
back to the deterministic shortest BFS detour over the surviving links
(:meth:`~repro.graphs.faults.Faults.shortest_detour`) — the standard
"fault-tolerant e-cube with table fallback" discipline.
"""

from __future__ import annotations

from typing import List, Optional

from ..exceptions import SimulationError
from ..graphs.faults import Faults
from ..graphs.paths import dimension_order_path
from ..types import Node
from .network import DirectedLink, HostNetwork

__all__ = ["route_message"]


def _detour_links(network: HostNetwork, faults: Faults, source: Node, destination: Node):
    """The BFS-detour route as node-tuple links (loop reference form)."""
    topology = network.topology
    ranks = faults.shortest_detour(
        topology.node_index(source), topology.node_index(destination)
    )
    if ranks is None:
        raise SimulationError(
            f"no surviving route from {source!r} to {destination!r}; "
            "the faults disconnect the endpoints"
        )
    nodes = [topology.index_node(rank) for rank in ranks]
    return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]


def route_message(
    network: HostNetwork,
    source: Node,
    destination: Node,
    *,
    validate: bool = True,
    faults: Optional[Faults] = None,
) -> List[DirectedLink]:
    """The ordered list of directed links a message traverses.

    An empty list means source and destination are the same processor (the
    message needs no network resources).

    ``validate=False`` skips the endpoint membership checks.  The simulator
    passes it for endpoints that already went through pattern placement
    (:meth:`repro.netsim.traffic.TrafficPattern.placed` validates every
    endpoint once per phase), so the per-message hot loop no longer
    re-validates both endpoints on every call.

    With ``faults``, a dimension-ordered route that only uses surviving
    links is kept unchanged; a cut route is replaced by the BFS detour.  A
    dead endpoint raises :class:`~repro.exceptions.SimulationError`.
    """
    if validate:
        network.validate_processor(source)
        network.validate_processor(destination)
    topology = network.topology
    if faults is not None:
        if not faults.node_alive(topology.node_index(source)) or not faults.node_alive(
            topology.node_index(destination)
        ):
            raise SimulationError(
                f"a message endpoint ({source!r} or {destination!r}) is a dead node"
            )
    path = dimension_order_path(topology, source, destination, validate=validate)
    links = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
    if faults is None:
        return links
    for u, v in links:
        if not faults.link_alive(topology.node_index(u), topology.node_index(v)):
            return _detour_links(network, faults, source, destination)
    return links
