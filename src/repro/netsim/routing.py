"""Dimension-ordered (e-cube) routing of messages.

Every message follows the dimension-ordered shortest path between its source
and destination processors (:func:`repro.graphs.paths.dimension_order_path`),
the standard deterministic, deadlock-free routing discipline on meshes and
toruses.  The number of links on the route equals the graph distance, so the
embedding's dilation is exactly the maximum route length of neighbour-exchange
traffic.
"""

from __future__ import annotations

from typing import List

from ..graphs.paths import dimension_order_path
from ..types import Node
from .network import DirectedLink, HostNetwork

__all__ = ["route_message"]


def route_message(
    network: HostNetwork, source: Node, destination: Node, *, validate: bool = True
) -> List[DirectedLink]:
    """The ordered list of directed links a message traverses.

    An empty list means source and destination are the same processor (the
    message needs no network resources).

    ``validate=False`` skips the endpoint membership checks.  The simulator
    passes it for endpoints that already went through pattern placement
    (:meth:`repro.netsim.traffic.TrafficPattern.placed` validates every
    endpoint once per phase), so the per-message hot loop no longer
    re-validates both endpoints on every call.
    """
    if validate:
        network.validate_processor(source)
        network.validate_processor(destination)
    path = dimension_order_path(network.topology, source, destination, validate=validate)
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]
