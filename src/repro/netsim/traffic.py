"""Workload generation: traffic patterns derived from guest task graphs.

The paper's application scenario is a task graph whose structure is itself a
torus or mesh (stencil computations, image processing pipelines, scientific
relaxation sweeps — the references of its Section 1).  In such computations
every task exchanges a boundary message with each of its task-graph
neighbours once per iteration; :func:`neighbor_exchange_traffic` generates
exactly that pattern, one message per directed guest edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..core.embedding import Embedding
from ..exceptions import SimulationError
from ..graphs.base import CartesianGraph
from ..types import Node

__all__ = ["Message", "TrafficPattern", "neighbor_exchange_traffic", "transpose_traffic"]


@dataclass(frozen=True)
class Message:
    """One task-to-task message.

    ``source`` and ``destination`` are *guest* (task) nodes; the embedding
    translates them to processors when the traffic is placed on a network.
    """

    source: Node
    destination: Node
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError("message size must be positive")


@dataclass(frozen=True)
class TrafficPattern:
    """A named collection of messages produced in one communication phase."""

    name: str
    messages: tuple[Message, ...]

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages)

    def total_volume(self) -> float:
        """Sum of all message sizes."""
        return sum(message.size for message in self.messages)

    def placed(self, embedding: Embedding) -> List[tuple[Node, Node, float]]:
        """Translate task endpoints to processors via the embedding."""
        placed = []
        for message in self.messages:
            placed.append(
                (embedding[message.source], embedding[message.destination], message.size)
            )
        return placed


def neighbor_exchange_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """One message per directed edge of the guest task graph.

    This is the per-iteration communication of a stencil computation whose
    data decomposition has the guest's shape: every task sends its boundary
    layer to each neighbour.
    """
    messages: List[Message] = []
    for a, b in guest.edges():
        messages.append(Message(a, b, message_size))
        messages.append(Message(b, a, message_size))
    return TrafficPattern(name=f"neighbor-exchange{guest.shape}", messages=tuple(messages))


def transpose_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """Each task sends one message to the task with reversed coordinates.

    A simple long-range pattern (akin to a matrix transpose) used as a
    contrast workload: its cost is dominated by the host diameter rather than
    the embedding's dilation, so the paper's embeddings should show little
    advantage on it — a useful negative control in the simulation benchmark.
    """
    messages: List[Message] = []
    for node in guest.nodes():
        partner = tuple(reversed(node)) if len(set(guest.shape)) == 1 else tuple(
            (length - 1 - coordinate) for coordinate, length in zip(node, guest.shape)
        )
        if partner != node:
            messages.append(Message(node, partner, message_size))
    return TrafficPattern(name=f"transpose{guest.shape}", messages=tuple(messages))
