"""Workload generation: traffic patterns derived from guest task graphs.

The paper's application scenario is a task graph whose structure is itself a
torus or mesh (stencil computations, image processing pipelines, scientific
relaxation sweeps — the references of its Section 1).  In such computations
every task exchanges a boundary message with each of its task-graph
neighbours once per iteration; :func:`neighbor_exchange_traffic` generates
exactly that pattern, one message per directed guest edge.  Two contrast
workloads complete the family: :func:`transpose_traffic` (long-range,
diameter-dominated — the negative control) and
:func:`all_to_all_in_groups_traffic` (the dense collective of
sub-communicator algorithms, sensitive to how the embedding clusters each
group).  The three register themselves in the runtime's plugin registry
(:data:`repro.runtime.registry.TRAFFIC_PATTERNS`) — the single table the
simulation survey suite, the experiment harness and the CLI resolve names
against; :func:`traffic_pattern` is the package-local resolver over it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.embedding import Embedding
from ..exceptions import SimulationError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import (
    digit_weights,
    digits_to_indices,
    indices_to_digits,
    require_numpy,
)
from ..runtime.context import use_array_path
from ..runtime.registry import register_traffic, traffic_names as _registered_names
from ..types import Node, Shape

__all__ = [
    "Message",
    "TrafficPattern",
    "neighbor_exchange_traffic",
    "transpose_traffic",
    "all_to_all_in_groups_traffic",
    "random_permutation_traffic",
    "hotspot_traffic",
    "bursty_traffic",
    "traffic_pattern",
    "traffic_pattern_names",
    "traffic_rank_arrays",
]


@dataclass(frozen=True)
class Message:
    """One task-to-task message.

    ``source`` and ``destination`` are *guest* (task) nodes; the embedding
    translates them to processors when the traffic is placed on a network.
    """

    source: Node
    destination: Node
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError("message size must be positive")


@dataclass(frozen=True)
class TrafficPattern:
    """A named collection of messages produced in one communication phase."""

    name: str
    messages: tuple[Message, ...]

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages)

    def total_volume(self) -> float:
        """Sum of all message sizes."""
        return sum(message.size for message in self.messages)

    def endpoint_rank_arrays(self, guest_shape: Shape):
        """Validated guest endpoint ranks and sizes as flat arrays.

        Returns ``(source_ranks, target_ranks, sizes)`` — ``int64`` natural
        order ranks in the guest base plus a ``float64`` size array.  All
        endpoint validation of a phase happens *here*, once per pattern
        placement; the per-message routing paths downstream trust the placed
        endpoints (see :func:`repro.netsim.routing.route_message`).  The
        converted arrays are cached on the (immutable) pattern, so placing
        the same pattern under several embeddings — the survey and CLI
        comparison loops — converts and validates the messages only once.
        Requires NumPy.
        """
        np = require_numpy()
        cached = getattr(self, "_endpoint_cache", None)
        if cached is not None and cached[0] == tuple(guest_shape):
            return cached[1]
        if not self.messages:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(0, dtype=np.float64)
        sources = np.asarray([m.source for m in self.messages])
        targets = np.asarray([m.destination for m in self.messages])
        for endpoints in (sources, targets):
            if not np.issubdtype(endpoints.dtype, np.integer):
                # Casting would silently truncate e.g. (1.9, 0) to (1, 0);
                # reject like the dict path's failed lookup would.
                raise SimulationError("message endpoints must be integer node tuples")
            if endpoints.ndim != 2 or endpoints.shape[1] != len(guest_shape):
                raise SimulationError(
                    "message endpoints do not match the guest graph's dimension"
                )
            if (endpoints < 0).any() or (endpoints >= guest_shape).any():
                raise SimulationError("message endpoints must be nodes of the guest graph")
        sizes = np.asarray([m.size for m in self.messages], dtype=np.float64)
        arrays = (
            digits_to_indices(sources.astype(np.int64), guest_shape),
            digits_to_indices(targets.astype(np.int64), guest_shape),
            sizes,
        )
        # The dataclass is frozen but not slotted; cache through the base
        # setattr so identical placements skip the per-message conversion.
        object.__setattr__(self, "_endpoint_cache", (tuple(guest_shape), arrays))
        return arrays

    def placed(self, embedding: Embedding) -> List[tuple[Node, Node, float]]:
        """Translate task endpoints to processors via the embedding.

        Under the array backend the translation is one batched gather
        through the embedding's flat host-index array (guest tuples -> ranks
        -> image ranks -> host tuples), so array-built embeddings are placed
        without ever materializing their tuple ``mapping`` dict; the loop
        backend looks each endpoint up in the dict individually.
        """
        if use_array_path() and self.messages:
            source_ranks, target_ranks, _sizes = self.endpoint_rank_arrays(
                embedding.guest.shape
            )
            images = embedding.host_index_array()
            host_shape = embedding.host.shape
            placed_sources = indices_to_digits(images[source_ranks], host_shape)
            placed_targets = indices_to_digits(images[target_ranks], host_shape)
            return [
                (tuple(source), tuple(target), message.size)
                for source, target, message in zip(
                    placed_sources.tolist(), placed_targets.tolist(), self.messages
                )
            ]
        return [
            (embedding[message.source], embedding[message.destination], message.size)
            for message in self.messages
        ]


@register_traffic("neighbor-exchange")
def neighbor_exchange_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """One message per directed edge of the guest task graph.

    This is the per-iteration communication of a stencil computation whose
    data decomposition has the guest's shape: every task sends its boundary
    layer to each neighbour.
    """
    messages: List[Message] = []
    for a, b in guest.edges():
        messages.append(Message(a, b, message_size))
        messages.append(Message(b, a, message_size))
    return TrafficPattern(name=f"neighbor-exchange{guest.shape}", messages=tuple(messages))


@register_traffic("transpose")
def transpose_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """Each task sends one message to the task with reversed coordinates.

    A simple long-range pattern (akin to a matrix transpose) used as a
    contrast workload: its cost is dominated by the host diameter rather than
    the embedding's dilation, so the paper's embeddings should show little
    advantage on it — a useful negative control in the simulation benchmark.
    """
    messages: List[Message] = []
    for node in guest.nodes():
        partner = tuple(reversed(node)) if len(set(guest.shape)) == 1 else tuple(
            (length - 1 - coordinate) for coordinate, length in zip(node, guest.shape)
        )
        if partner != node:
            messages.append(Message(node, partner, message_size))
    return TrafficPattern(name=f"transpose{guest.shape}", messages=tuple(messages))


@register_traffic("all-to-all-groups")
def all_to_all_in_groups_traffic(
    guest: CartesianGraph,
    *,
    group_size: Optional[int] = None,
    message_size: float = 1.0,
) -> TrafficPattern:
    """Every ordered pair of distinct tasks within each group exchanges a message.

    Groups are consecutive blocks of the guest's natural (lexicographic) node
    order; the default group size is the last dimension's length, so each
    group is one "pencil" of tasks sharing all but their final coordinate —
    the sub-communicator of row-wise collectives (FFT transposes within rows,
    ADI line sweeps, block reductions).  A good embedding keeps each pencil's
    images clustered in the host, so unlike :func:`transpose_traffic` this
    dense pattern still rewards low dilation.
    """
    size = guest.size
    if group_size is None:
        group_size = guest.shape[-1]
    if group_size < 1 or size % group_size != 0:
        raise SimulationError(
            f"group size {group_size} must be positive and divide the "
            f"guest's {size} nodes"
        )
    messages: List[Message] = []
    for start in range(0, size, group_size):
        group = [guest.index_node(rank) for rank in range(start, start + group_size)]
        for source in group:
            for destination in group:
                if source != destination:
                    messages.append(Message(source, destination, message_size))
    return TrafficPattern(
        name=f"all-to-all-groups{guest.shape}/{group_size}", messages=tuple(messages)
    )


# --------------------------------------------------------------------- #
# Randomized / adversarial workloads
# --------------------------------------------------------------------- #
# The three patterns below stress embeddings from directions the structured
# workloads above cannot: a seeded random permutation (no locality at all),
# a hotspot sink (maximal contention on one processor's links) and seeded
# traffic bursts (sudden fan-in).  Each draws its endpoint *ranks* from a
# pure-Python helper seeded by a string key — PYTHONHASHSEED-independent —
# that both the tuple builder and the vectorized rank generator call, so the
# two forms agree message for message by construction.

_BURSTY_BURSTS = 3


def _random_permutation_pairs(guest: CartesianGraph, seed: int):
    rng = random.Random(f"random-permutation|{seed}|{guest.shape}")
    targets = list(range(guest.size))
    rng.shuffle(targets)
    return [(source, target) for source, target in enumerate(targets) if source != target]


def _hotspot_pairs(guest: CartesianGraph):
    return [(source, 0) for source in range(1, guest.size)]


def _bursty_pairs(guest: CartesianGraph, seed: int):
    rng = random.Random(f"bursty|{seed}|{guest.shape}")
    size = guest.size
    pairs = []
    for _ in range(_BURSTY_BURSTS):
        target = rng.randrange(size)
        senders = rng.sample(range(size), max(1, size // 4))
        pairs.extend((sender, target) for sender in senders if sender != target)
    return pairs


def _pattern_from_pairs(guest: CartesianGraph, name: str, pairs, message_size: float):
    messages = tuple(
        Message(guest.index_node(source), guest.index_node(target), message_size)
        for source, target in pairs
    )
    return TrafficPattern(name=name, messages=messages)


@register_traffic("random-permutation")
def random_permutation_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0, seed: int = 0
) -> TrafficPattern:
    """Each task sends one message under a seeded random permutation.

    The classic adversarial workload for locality-preserving placements:
    endpoints are uniformly scrambled, so hop counts concentrate around the
    host's mean distance regardless of the embedding — like
    :func:`transpose_traffic`, a negative control, but an *average-case* one
    (fixed points are dropped).
    """
    return _pattern_from_pairs(
        guest,
        f"random-permutation{guest.shape}/s{seed}",
        _random_permutation_pairs(guest, seed),
        message_size,
    )


@register_traffic("hotspot")
def hotspot_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """Every other task sends one message to task 0 (the hotspot sink).

    Maximal fan-in: the sink's incident links serialize all traffic, so the
    makespan measures how the embedding spreads the sink's neighbourhood
    rather than its dilation — contention-dominated by design.
    """
    return _pattern_from_pairs(
        guest, f"hotspot{guest.shape}", _hotspot_pairs(guest), message_size
    )


@register_traffic("bursty")
def bursty_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0, seed: int = 0
) -> TrafficPattern:
    """Seeded traffic bursts: a quarter of the tasks fan in on one target.

    Three bursts per phase; each draws a target and ``max(1, size // 4)``
    distinct senders from a seeded generator (self-messages dropped), giving
    repeated sudden fan-in — the transient congestion regime between the
    steady hotspot and the uniform permutation.
    """
    return _pattern_from_pairs(
        guest,
        f"bursty{guest.shape}/s{seed}",
        _bursty_pairs(guest, seed),
        message_size,
    )


# --------------------------------------------------------------------- #
# Vectorized endpoint-rank generators
# --------------------------------------------------------------------- #
# The builders above materialize one `Message` tuple per task pair — the
# right representation for inspection and for the loop reference, but pure
# per-message Python.  The generators below produce the *placed-phase input*
# (`(source_ranks, target_ranks, sizes)` flat arrays, exactly what
# `TrafficPattern.endpoint_rank_arrays` would return for the corresponding
# pattern, message for message in the same order) straight from mixed-radix
# arithmetic, so batched survey shards never build the tuples at all.  The
# differential suite pins the two forms equal for every pattern.


def _neighbor_exchange_ranks(guest: CartesianGraph, np):
    """Sources/targets of one message per directed guest edge.

    Reproduces ``guest.edges()`` order exactly — nodes in natural order,
    neighbours by dimension then direction (wrap neighbours deduplicated for
    length-2 torus dimensions — the contract of
    :meth:`CartesianGraph.neighbor_rank_matrix`), edges kept at their
    lower-rank endpoint — with the two directed messages of each edge
    adjacent (a->b then b->a), as :func:`neighbor_exchange_traffic` emits
    them.
    """
    neighbors, valid = guest.neighbor_rank_matrix()
    ranks = np.arange(guest.size, dtype=np.int64)
    # Each edge once, at its lower-rank endpoint.
    valid = valid & (neighbors > ranks[:, None])
    lower = np.broadcast_to(ranks[:, None], neighbors.shape)[valid]
    upper = neighbors[valid]
    sources = np.empty(2 * lower.size, dtype=np.int64)
    targets = np.empty(2 * lower.size, dtype=np.int64)
    sources[0::2] = lower
    sources[1::2] = upper
    targets[0::2] = upper
    targets[1::2] = lower
    return sources, targets


def _transpose_ranks(guest: CartesianGraph, np):
    """Sources/targets of the transpose pattern, in natural node order."""
    digits = guest.node_digit_array()
    weights = digit_weights(guest.shape)
    if len(set(guest.shape)) == 1:
        partners = digits[:, ::-1] @ weights
    else:
        lengths = np.asarray(guest.shape, dtype=np.int64)
        partners = (lengths - 1 - digits) @ weights
    ranks = np.arange(guest.size, dtype=np.int64)
    keep = partners != ranks
    return ranks[keep], partners[keep]


def _all_to_all_groups_ranks(guest: CartesianGraph, np):
    """Sources/targets of the within-group all-to-all, default group size."""
    group_size = guest.shape[-1]
    num_groups = guest.size // group_size
    local_source = np.repeat(np.arange(group_size, dtype=np.int64), group_size)
    local_target = np.tile(np.arange(group_size, dtype=np.int64), group_size)
    keep = local_source != local_target
    local_source = local_source[keep]
    local_target = local_target[keep]
    group_starts = np.arange(num_groups, dtype=np.int64)[:, None] * group_size
    return (
        (group_starts + local_source[None, :]).ravel(),
        (group_starts + local_target[None, :]).ravel(),
    )


def _pairs_to_rank_arrays(pairs, np):
    """Rank-pair list -> the two flat endpoint arrays (shared seeded draws)."""
    if not pairs:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    array = np.asarray(pairs, dtype=np.int64)
    return np.ascontiguousarray(array[:, 0]), np.ascontiguousarray(array[:, 1])


def _random_permutation_rank_arrays(guest: CartesianGraph, np):
    return _pairs_to_rank_arrays(_random_permutation_pairs(guest, 0), np)


def _hotspot_rank_arrays(guest: CartesianGraph, np):
    return _pairs_to_rank_arrays(_hotspot_pairs(guest), np)


def _bursty_rank_arrays(guest: CartesianGraph, np):
    return _pairs_to_rank_arrays(_bursty_pairs(guest, 0), np)


_RANK_GENERATORS = {
    "neighbor-exchange": _neighbor_exchange_ranks,
    "transpose": _transpose_ranks,
    "all-to-all-groups": _all_to_all_groups_ranks,
    "random-permutation": _random_permutation_rank_arrays,
    "hotspot": _hotspot_rank_arrays,
    "bursty": _bursty_rank_arrays,
}


def traffic_rank_arrays(
    name: str, guest: CartesianGraph, *, message_size: float = 1.0
):
    """``(source_ranks, target_ranks, sizes)`` of a named pattern, or ``None``.

    Equals ``traffic_pattern(name, guest, message_size=...)
    .endpoint_rank_arrays(guest.shape)`` element for element (and in the same
    message order), computed without materializing a single
    :class:`Message`.  Returns ``None`` for patterns without a vectorized
    generator — callers fall back to the builder.  Requires NumPy.
    """
    generator = _RANK_GENERATORS.get(name)
    if generator is None:
        return None
    np = require_numpy()
    sources, targets = generator(guest, np)
    return sources, targets, np.full(sources.size, message_size, dtype=np.float64)


def traffic_pattern(
    name: str, guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """Build the named traffic pattern for a guest task graph.

    Resolution goes through the runtime's plugin registry, so patterns added
    with :func:`repro.runtime.registry.register_traffic` are immediately
    available to the survey suite and the CLI as well.
    """
    from ..runtime.registry import traffic_builder

    try:
        builder = traffic_builder(name)
    except KeyError:
        raise SimulationError(
            f"unknown traffic pattern {name!r}; choose from {', '.join(traffic_pattern_names())}"
        ) from None
    return builder(guest, message_size=message_size)


def traffic_pattern_names() -> Tuple[str, ...]:
    """The pattern names accepted by :func:`traffic_pattern`."""
    return _registered_names()
