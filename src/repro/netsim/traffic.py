"""Workload generation: traffic patterns derived from guest task graphs.

The paper's application scenario is a task graph whose structure is itself a
torus or mesh (stencil computations, image processing pipelines, scientific
relaxation sweeps — the references of its Section 1).  In such computations
every task exchanges a boundary message with each of its task-graph
neighbours once per iteration; :func:`neighbor_exchange_traffic` generates
exactly that pattern, one message per directed guest edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..core.embedding import Embedding
from ..exceptions import SimulationError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import HAVE_NUMPY, digits_to_indices, indices_to_digits, require_numpy
from ..types import Node

__all__ = ["Message", "TrafficPattern", "neighbor_exchange_traffic", "transpose_traffic"]


@dataclass(frozen=True)
class Message:
    """One task-to-task message.

    ``source`` and ``destination`` are *guest* (task) nodes; the embedding
    translates them to processors when the traffic is placed on a network.
    """

    source: Node
    destination: Node
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError("message size must be positive")


@dataclass(frozen=True)
class TrafficPattern:
    """A named collection of messages produced in one communication phase."""

    name: str
    messages: tuple[Message, ...]

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages)

    def total_volume(self) -> float:
        """Sum of all message sizes."""
        return sum(message.size for message in self.messages)

    def placed(self, embedding: Embedding) -> List[tuple[Node, Node, float]]:
        """Translate task endpoints to processors via the embedding.

        When NumPy is available the translation is one batched gather through
        the embedding's flat host-index array (guest tuples -> ranks ->
        image ranks -> host tuples), so array-built embeddings are placed
        without ever materializing their tuple ``mapping`` dict; otherwise
        each endpoint is looked up in the dict individually.
        """
        if HAVE_NUMPY and self.messages:
            np = require_numpy()
            guest_shape = embedding.guest.shape
            sources = np.asarray([m.source for m in self.messages])
            targets = np.asarray([m.destination for m in self.messages])
            for endpoints in (sources, targets):
                if not np.issubdtype(endpoints.dtype, np.integer):
                    # Casting would silently truncate e.g. (1.9, 0) to (1, 0);
                    # reject like the dict path's failed lookup would.
                    raise SimulationError(
                        "message endpoints must be integer node tuples"
                    )
                if endpoints.ndim != 2 or endpoints.shape[1] != len(guest_shape):
                    raise SimulationError(
                        "message endpoints do not match the guest graph's dimension"
                    )
                if (endpoints < 0).any() or (endpoints >= guest_shape).any():
                    raise SimulationError(
                        "message endpoints must be nodes of the guest graph"
                    )
            sources = sources.astype(np.int64)
            targets = targets.astype(np.int64)
            images = embedding.host_index_array()
            host_shape = embedding.host.shape
            placed_sources = indices_to_digits(
                images[digits_to_indices(sources, guest_shape)], host_shape
            )
            placed_targets = indices_to_digits(
                images[digits_to_indices(targets, guest_shape)], host_shape
            )
            return [
                (tuple(source), tuple(target), message.size)
                for source, target, message in zip(
                    placed_sources.tolist(), placed_targets.tolist(), self.messages
                )
            ]
        return [
            (embedding[message.source], embedding[message.destination], message.size)
            for message in self.messages
        ]


def neighbor_exchange_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """One message per directed edge of the guest task graph.

    This is the per-iteration communication of a stencil computation whose
    data decomposition has the guest's shape: every task sends its boundary
    layer to each neighbour.
    """
    messages: List[Message] = []
    for a, b in guest.edges():
        messages.append(Message(a, b, message_size))
        messages.append(Message(b, a, message_size))
    return TrafficPattern(name=f"neighbor-exchange{guest.shape}", messages=tuple(messages))


def transpose_traffic(
    guest: CartesianGraph, *, message_size: float = 1.0
) -> TrafficPattern:
    """Each task sends one message to the task with reversed coordinates.

    A simple long-range pattern (akin to a matrix transpose) used as a
    contrast workload: its cost is dominated by the host diameter rather than
    the embedding's dilation, so the paper's embeddings should show little
    advantage on it — a useful negative control in the simulation benchmark.
    """
    messages: List[Message] = []
    for node in guest.nodes():
        partner = tuple(reversed(node)) if len(set(guest.shape)) == 1 else tuple(
            (length - 1 - coordinate) for coordinate, length in zip(node, guest.shape)
        )
        if partner != node:
            messages.append(Message(node, partner, message_size))
    return TrafficPattern(name=f"transpose{guest.shape}", messages=tuple(messages))
