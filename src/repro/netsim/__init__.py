"""A small interconnection-network simulation substrate.

The paper's motivation (Section 1) is mapping the communication structure of
a parallel task onto the interconnection network of a parallel machine: the
dilation of the embedding bounds how many hops each task-graph message must
travel, and therefore the communication time.  The 1980s machines the paper
had in mind are unavailable, so this package substitutes a deterministic
store-and-forward network simulator that preserves exactly the behaviour the
paper relies on — per-hop latency and link serialization — allowing the
benefit of low-dilation embeddings to be demonstrated end to end.

``network``
    The host machine: a torus/mesh of processors with link parameters.
``routing``
    Dimension-ordered (e-cube) routing of messages, the standard deadlock-free
    discipline on meshes and toruses.
``traffic``
    Workload generation: neighbour-exchange traffic derived from a guest
    task graph (the communication pattern of stencil computations).
``models``
    The latency/bandwidth cost model.
``simulator``
    An analytic estimate and a discrete-time store-and-forward simulation of
    one communication phase, plus per-link statistics.
"""

from .models import CostModel
from .network import HostNetwork
from .routing import route_message
from .traffic import Message, TrafficPattern, neighbor_exchange_traffic
from .simulator import PhaseStatistics, SimulationResult, simulate_phase

__all__ = [
    "CostModel",
    "HostNetwork",
    "route_message",
    "Message",
    "TrafficPattern",
    "neighbor_exchange_traffic",
    "PhaseStatistics",
    "SimulationResult",
    "simulate_phase",
]
