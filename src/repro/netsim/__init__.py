"""A small interconnection-network simulation substrate.

The paper's motivation (Section 1) is mapping the communication structure of
a parallel task onto the interconnection network of a parallel machine: the
dilation of the embedding bounds how many hops each task-graph message must
travel, and therefore the communication time.  The 1980s machines the paper
had in mind are unavailable, so this package substitutes a deterministic
store-and-forward network simulator that preserves exactly the behaviour the
paper relies on — per-hop latency and link serialization — allowing the
benefit of low-dilation embeddings to be demonstrated end to end.

``network``
    The host machine: a torus/mesh of processors with link parameters.
``routing``
    Dimension-ordered (e-cube) routing of messages, the standard deadlock-free
    discipline on meshes and toruses.
``kernels``
    The vectorized hot path: batched dimension-ordered routing over a flat
    directed-link id space, CSR route expansion and ``bincount`` link-load
    accumulation (the loop modules above stay as the cross-checked
    reference).
``traffic``
    Workload generation: neighbour-exchange, transpose and
    all-to-all-in-groups patterns derived from a guest task graph.
``models``
    The latency/bandwidth cost model.
``simulator``
    An analytic estimate and a discrete-time store-and-forward simulation of
    one communication phase, plus per-link statistics — both resolving their
    backend (array kernels vs per-message loop) from the ambient execution
    context (:mod:`repro.runtime.context`).
"""

from .models import CostModel
from .network import HostNetwork
from .routing import route_message
from .kernels import LinkIndexSpace, RouteArrays, accumulate_link_loads, expand_routes
from .traffic import (
    Message,
    TrafficPattern,
    all_to_all_in_groups_traffic,
    bursty_traffic,
    hotspot_traffic,
    neighbor_exchange_traffic,
    random_permutation_traffic,
    traffic_pattern,
    traffic_pattern_names,
    traffic_rank_arrays,
    transpose_traffic,
)
from .weights import LinkWeightSpec, directed_slot_id
from .simulator import (
    PhaseStatistics,
    SimulationResult,
    analytic_phase_estimate,
    simulate_endpoint_phases,
    simulate_phase,
    simulate_phases,
    simulate_phases_rounds,
)

__all__ = [
    "CostModel",
    "HostNetwork",
    "route_message",
    "LinkIndexSpace",
    "RouteArrays",
    "accumulate_link_loads",
    "expand_routes",
    "Message",
    "TrafficPattern",
    "neighbor_exchange_traffic",
    "transpose_traffic",
    "all_to_all_in_groups_traffic",
    "random_permutation_traffic",
    "hotspot_traffic",
    "bursty_traffic",
    "LinkWeightSpec",
    "directed_slot_id",
    "traffic_pattern",
    "traffic_pattern_names",
    "traffic_rank_arrays",
    "PhaseStatistics",
    "SimulationResult",
    "analytic_phase_estimate",
    "simulate_phase",
    "simulate_phases",
    "simulate_endpoint_phases",
    "simulate_phases_rounds",
]
