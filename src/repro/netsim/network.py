"""The host machine model: a torus or mesh of processors.

A :class:`HostNetwork` wraps a :class:`~repro.graphs.base.CartesianGraph`
(the processor/link topology) together with a :class:`~repro.netsim.models.CostModel`.
Links are *directed*: the link ``(u, v)`` carries traffic from ``u`` to
``v``; its reverse is a distinct resource, matching full-duplex hardware
channels.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..exceptions import SimulationError
from ..graphs.base import CartesianGraph
from ..types import Node
from .models import CostModel

__all__ = ["HostNetwork", "DirectedLink"]

#: A directed link between two adjacent processors.
DirectedLink = Tuple[Node, Node]


class HostNetwork:
    """A parallel machine whose processors form a torus or mesh.

    ``link_weights`` (a :class:`~repro.netsim.weights.LinkWeightSpec`, or
    ``None`` for homogeneous links) assigns every directed link a latency
    multiplier; a hop then occupies its link for
    ``cost_model.link_occupancy(size) * weight`` time units.
    """

    def __init__(
        self,
        topology: CartesianGraph,
        cost_model: CostModel | None = None,
        link_weights=None,
    ):
        self._topology = topology
        self._cost_model = cost_model or CostModel()
        self._link_weights = link_weights
        self._link_space = None
        self._weight_array = None

    @property
    def topology(self) -> CartesianGraph:
        """The processor/link graph."""
        return self._topology

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def link_weights(self):
        """The per-link latency weight spec, or ``None`` for uniform links."""
        return self._link_weights

    def link_weight(self, source: Node, target: Node) -> float:
        """Latency multiplier of one directed link (1.0 when unweighted)."""
        if self._link_weights is None:
            return 1.0
        return self._link_weights.weight_of(self._topology, source, target)

    def link_weight_array(self):
        """Per-slot weights over the link-index space, or ``None`` (cached)."""
        if self._link_weights is None:
            return None
        if self._weight_array is None:
            self._weight_array = self._link_weights.weight_array(
                self.link_index_space()
            )
        return self._weight_array

    @property
    def num_processors(self) -> int:
        return self._topology.size

    def processors(self) -> Iterator[Node]:
        """All processor coordinates."""
        return self._topology.nodes()

    def links(self) -> Iterator[DirectedLink]:
        """All directed links (both orientations of every edge)."""
        for u, v in self._topology.edges():
            yield (u, v)
            yield (v, u)

    def num_links(self) -> int:
        return 2 * self._topology.num_edges()

    def validate_processor(self, node: Node) -> None:
        if not self._topology.contains(node):
            raise SimulationError(f"{node!r} is not a processor of {self._topology!r}")

    def link_exists(self, link: DirectedLink) -> bool:
        u, v = link
        return self._topology.contains(u) and self._topology.contains(v) and (
            self._topology.distance(u, v) == 1
        )

    def empty_link_loads(self) -> Dict[DirectedLink, float]:
        """A zero-initialized per-link load accumulator."""
        return {link: 0.0 for link in self.links()}

    def link_index_space(self):
        """The flat directed-link id space of this topology (cached).

        Used by the vectorized routing and load kernels
        (:mod:`repro.netsim.kernels`); requires NumPy.
        """
        if self._link_space is None:
            from .kernels import LinkIndexSpace

            self._link_space = LinkIndexSpace(self._topology)
        return self._link_space

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HostNetwork({self._topology!r}, {self._cost_model!r})"
