"""Torus, mesh, line, ring and hypercube graphs (Definitions 2–4).

The classes here are the *substrate* on which embeddings are measured: they
provide node enumeration, adjacency, exact shortest-path distances (computed
analytically from Lemmas 5 and 6 and cross-checked against breadth-first
search in the test suite), explicit shortest paths (dimension-ordered
routing), Hamiltonian-circuit constructions (Corollaries 18, 25 and 29) and a
:mod:`networkx` adapter for independent verification.
"""

from .base import (
    CartesianGraph,
    Hypercube,
    Line,
    Mesh,
    Ring,
    Torus,
    graph_from_spec,
    make_graph,
)
from .faults import Faults, FaultSpec
from .paths import dimension_order_path, shortest_path
from .hamiltonian import (
    find_hamiltonian_circuit,
    has_hamiltonian_circuit,
    hamiltonian_path,
)
from .networkx_adapter import to_networkx

__all__ = [
    "CartesianGraph",
    "Torus",
    "Mesh",
    "Line",
    "Ring",
    "Hypercube",
    "make_graph",
    "graph_from_spec",
    "FaultSpec",
    "Faults",
    "shortest_path",
    "dimension_order_path",
    "find_hamiltonian_circuit",
    "has_hamiltonian_circuit",
    "hamiltonian_path",
    "to_networkx",
]
