"""Seeded fault models: degraded hosts with knocked-out nodes and links.

A :class:`FaultSpec` is a tiny, serializable description of a knockout —
*how many* nodes and links to remove and a seed — while :class:`Faults` is
the spec materialized against one concrete graph: the actual dead node
ranks, dead links, surviving adjacency, breadth-first distances over the
surviving links, and deterministic detour paths.

Determinism is the load-bearing property.  The dead sets are drawn with a
``random.Random`` seeded from the spec token *and* the graph's kind/shape
(so the same spec degrades every graph reproducibly, independent of hash
randomization), links are drawn from the canonical :meth:`edges` order, and
every BFS expands neighbours in the graph's dimension-then-direction order —
so the loop and array backends see byte-identical degraded topologies and
the differential tests can pin fault-aware results bit-for-bit.

Distances over the surviving graph are *canonical* (independent of visit
order), so the pure-Python BFS here and the vectorized level-synchronous
expansion in :meth:`Faults.bfs_distance_row` agree exactly by construction.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..exceptions import InvalidShapeError
from ..numbering.arrays import require_numpy
from .base import CartesianGraph

__all__ = ["FaultSpec", "Faults"]


_TOKEN_PATTERN = re.compile(r"^n(\d+)l(\d+)s(\d+)$")


@dataclass(frozen=True)
class FaultSpec:
    """A seeded node/link knockout: ``num_nodes`` nodes, ``num_links`` links.

    The compact token form (``"n1l2s7"``) is what survey scenario ids and
    the CLI carry; :meth:`apply` materializes the spec against a graph.
    """

    num_nodes: int = 0
    num_links: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.num_nodes < 0 or self.num_links < 0:
            raise InvalidShapeError("fault counts must be non-negative")

    @property
    def token(self) -> str:
        return f"n{self.num_nodes}l{self.num_links}s{self.seed}"

    @classmethod
    def from_token(cls, token: str) -> "FaultSpec":
        match = _TOKEN_PATTERN.match(token)
        if match is None:
            raise InvalidShapeError(
                f"invalid fault token {token!r}; expected the form 'n<nodes>l<links>s<seed>'"
            )
        return cls(int(match.group(1)), int(match.group(2)), int(match.group(3)))

    def apply(self, graph: CartesianGraph) -> "Faults":
        """Materialize the knockout against ``graph``.

        Node faults are drawn first (without replacement over all ranks),
        then link faults over the canonical edge list restricted to edges
        whose endpoints both survived — so ``num_links`` is the number of
        *additional* links removed beyond those lost to dead nodes.
        """
        rng = random.Random(f"{self.token}|{graph.kind.value}|{graph.shape}")
        dead_nodes = frozenset(
            rng.sample(range(graph.size), min(self.num_nodes, graph.size))
        )
        candidates = [
            (graph.node_index(a), graph.node_index(b))
            for a, b in graph.edges()
            if graph.node_index(a) not in dead_nodes
            and graph.node_index(b) not in dead_nodes
        ]
        dead_links = frozenset(
            rng.sample(candidates, min(self.num_links, len(candidates)))
        )
        return Faults(graph, dead_nodes, dead_links, spec=self)


class Faults:
    """A :class:`FaultSpec` materialized against one graph.

    Holds the dead node ranks and dead undirected links (rank pairs with
    ``u < v``) and answers adjacency/distance/detour queries over the
    *surviving* graph.  A link is dead when it was knocked out directly or
    when either endpoint is a dead node.
    """

    __slots__ = ("graph", "dead_nodes", "dead_links", "spec", "_masked_matrix")

    def __init__(
        self,
        graph: CartesianGraph,
        dead_nodes: FrozenSet[int],
        dead_links: FrozenSet[Tuple[int, int]],
        *,
        spec: Optional[FaultSpec] = None,
    ):
        self.graph = graph
        self.dead_nodes = frozenset(int(rank) for rank in dead_nodes)
        self.dead_links = frozenset(
            (min(int(u), int(v)), max(int(u), int(v))) for u, v in dead_links
        )
        self.spec = spec
        self._masked_matrix = None

    def __repr__(self) -> str:
        token = self.spec.token if self.spec is not None else "custom"
        return (
            f"Faults({token} on {self.graph!r}: "
            f"{len(self.dead_nodes)} nodes, {len(self.dead_links)} links)"
        )

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def node_alive(self, rank: int) -> bool:
        return rank not in self.dead_nodes

    def link_alive(self, u: int, v: int) -> bool:
        """Whether the (undirected) link between ranks ``u`` and ``v`` survives."""
        if u in self.dead_nodes or v in self.dead_nodes:
            return False
        return (min(u, v), max(u, v)) not in self.dead_links

    def surviving_ranks(self) -> Tuple[int, ...]:
        """All surviving node ranks, ascending."""
        return tuple(
            rank for rank in range(self.graph.size) if rank not in self.dead_nodes
        )

    def surviving_neighbor_ranks(self, rank: int) -> List[int]:
        """Surviving neighbours of a surviving node, dimension-then-direction order."""
        node = self.graph.index_node(rank)
        out = []
        for neighbor in self.graph.neighbors(node):
            other = self.graph.node_index(neighbor)
            if self.link_alive(rank, other):
                out.append(other)
        return out

    # ------------------------------------------------------------------ #
    # Distances and detours (loop reference)
    # ------------------------------------------------------------------ #
    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Shortest-path hop counts from ``source`` over surviving links.

        Only reachable surviving ranks appear as keys; a dead source yields
        an empty dict.
        """
        if source in self.dead_nodes:
            return {}
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for rank in frontier:
                for other in self.surviving_neighbor_ranks(rank):
                    if other not in distances:
                        distances[other] = distances[rank] + 1
                        next_frontier.append(other)
            frontier = next_frontier
        return distances

    def shortest_detour(self, source: int, destination: int) -> Optional[List[int]]:
        """A deterministic shortest surviving path as a rank list, or ``None``.

        Breadth-first with parents fixed at first discovery and neighbours
        expanded in the canonical dimension-then-direction order, so both
        backends derive the identical detour.
        """
        if source in self.dead_nodes or destination in self.dead_nodes:
            return None
        if source == destination:
            return [source]
        parents = {source: source}
        frontier = [source]
        while frontier and destination not in parents:
            next_frontier: List[int] = []
            for rank in frontier:
                for other in self.surviving_neighbor_ranks(rank):
                    if other not in parents:
                        parents[other] = rank
                        next_frontier.append(other)
            frontier = next_frontier
        if destination not in parents:
            return None
        path = [destination]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    # ------------------------------------------------------------------ #
    # Vectorized surviving adjacency (array backend)
    # ------------------------------------------------------------------ #
    def masked_neighbor_matrix(self):
        """The graph's ``(n, 2d)`` neighbour matrix with dead entries masked.

        Same layout as :meth:`CartesianGraph.neighbor_rank_matrix`; entries
        pointing at or out of dead nodes and over dead links are invalid.
        Cached.  Requires NumPy.
        """
        if self._masked_matrix is None:
            np = require_numpy()
            neighbors, valid = self.graph.neighbor_rank_matrix()
            valid = valid.copy()
            if self.dead_nodes:
                dead = np.zeros(self.graph.size, dtype=bool)
                dead[list(self.dead_nodes)] = True
                valid &= ~dead[:, None]
                # Invalid entries may hold out-of-range ranks; clamp before
                # the gather (they stay masked either way).
                valid &= ~dead[np.where(valid, neighbors, 0)]
            for u, v in self.dead_links:
                for a, b in ((u, v), (v, u)):
                    for column in np.nonzero(neighbors[a] == b)[0]:
                        valid[a, column] = False
            self._masked_matrix = (neighbors, valid)
        return self._masked_matrix

    def bfs_distance_row(self, source: int):
        """Hop counts from ``source`` as a length-``n`` array (-1 unreachable).

        Level-synchronous frontier expansion over the masked neighbour
        matrix; distances are canonical, so this agrees exactly with
        :meth:`bfs_distances`.  Requires NumPy.
        """
        np = require_numpy()
        n = self.graph.size
        distances = np.full(n, -1, dtype=np.int64)
        if source in self.dead_nodes:
            return distances
        neighbors, valid = self.masked_neighbor_matrix()
        distances[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            candidates = neighbors[frontier][valid[frontier]]
            candidates = candidates[distances[candidates] < 0]
            if candidates.size == 0:
                break
            frontier = np.unique(candidates)
            distances[frontier] = depth
        return distances
