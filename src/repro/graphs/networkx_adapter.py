"""Adapters between the library's implicit graphs and :mod:`networkx`.

Materializing a torus or mesh as a :class:`networkx.Graph` is useful for
independent verification (breadth-first-search distances, Hamiltonicity of
small instances, isomorphism checks) and for visualization.  The adapters are
only intended for small to moderate graphs — a ``(l_1, ..., l_d)`` graph has
``Π l_i`` nodes and roughly ``d · Π l_i`` edges, all of which are stored
explicitly by networkx.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from .base import CartesianGraph

__all__ = ["to_networkx", "bfs_distance"]


def to_networkx(graph: CartesianGraph, *, max_nodes: Optional[int] = 200_000) -> "nx.Graph":
    """Materialize the torus/mesh as an undirected :class:`networkx.Graph`.

    Parameters
    ----------
    max_nodes:
        Guard against accidentally materializing an enormous graph; pass
        ``None`` to disable the check.
    """
    if max_nodes is not None and graph.size > max_nodes:
        raise ValueError(
            f"refusing to materialize {graph!r} with {graph.size} nodes "
            f"(limit {max_nodes}); pass max_nodes=None to override"
        )
    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    g.graph["kind"] = graph.kind.value
    g.graph["shape"] = graph.shape
    return g


def bfs_distance(graph: CartesianGraph, source, target) -> int:
    """Shortest-path distance computed by networkx BFS (verification helper)."""
    g = to_networkx(graph)
    return nx.shortest_path_length(g, tuple(source), tuple(target))
