"""Hamiltonian paths and circuits in toruses and meshes.

The paper derives three structural corollaries from its ring embeddings:

* **Corollary 18** — no mesh of odd size has a Hamiltonian circuit (parity
  argument on circuit edges);
* **Corollary 25** — every mesh of even size and dimension > 1 has one
  (constructed by the ring embedding ``h_L`` after permuting an even
  dimension to the front, Theorem 24);
* **Corollary 29** — every torus has one (constructed by ``h_L``,
  Theorem 28).

:func:`find_hamiltonian_circuit` returns the explicit circuit whenever one
exists according to those results, and ``None`` otherwise.  The circuit is a
list of all nodes in visiting order; consecutive nodes (and the last/first
pair) are adjacent in the graph, which the test suite verifies node by node.
"""

from __future__ import annotations

from typing import List, Optional

from ..types import Node
from .base import CartesianGraph

__all__ = ["find_hamiltonian_circuit", "has_hamiltonian_circuit", "hamiltonian_path"]


def has_hamiltonian_circuit(graph: CartesianGraph) -> bool:
    """Whether the graph has a Hamiltonian circuit (Corollaries 18, 25, 29).

    A single node ring/line degenerate case cannot occur because every
    dimension length is at least 2.  Lines and size-2 rings are the only
    remaining graphs without a circuit besides odd-size meshes:

    * every torus has a circuit (Corollary 29) — including rings — except
      that a ring of size 2 is a single edge (its "circuit" would repeat an
      edge), which we report as not having a circuit;
    * a mesh has a circuit iff its size is even and its dimension is > 1
      (Corollaries 18 and 25); a line never has one.
    """
    if graph.is_torus:
        return graph.size > 2
    if graph.dimension == 1:
        return False
    return graph.size % 2 == 0


def find_hamiltonian_circuit(graph: CartesianGraph) -> Optional[List[Node]]:
    """An explicit Hamiltonian circuit, or ``None`` when none exists.

    The circuit is produced by the paper's ring embedding ``h_L``
    (Theorem 24 for meshes, Theorem 28 for toruses): the images
    ``h_L(0), h_L(1), ..., h_L(n-1)`` visit every node exactly once with
    successive images adjacent, and the last image adjacent to the first.
    """
    if not has_hamiltonian_circuit(graph):
        return None
    # Imported lazily to avoid a circular import at package-initialization
    # time (repro.core imports repro.graphs for the Embedding class).
    from ..core.basic import ring_in_graph_embedding

    embedding = ring_in_graph_embedding(graph)
    return [embedding.map_index(x) for x in range(graph.size)]


def hamiltonian_path(graph: CartesianGraph) -> List[Node]:
    """A Hamiltonian *path* (open), which every torus and mesh possesses.

    The path is the image sequence of the line embedding ``f_L``
    (Theorem 13): successive images are adjacent and every node appears
    exactly once.
    """
    from ..core.basic import line_in_graph_embedding

    embedding = line_in_graph_embedding(graph)
    return [embedding.map_index(x) for x in range(graph.size)]
