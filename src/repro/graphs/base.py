"""Torus and mesh graph classes (Definitions 2 and 3 of the paper).

A ``d``-dimensional torus (mesh) of shape ``(l_1, ..., l_d)`` has ``Π l_i``
nodes, each a ``d``-tuple of coordinates.  In a torus every node has a left
and a right neighbour in every dimension (indices wrap modulo ``l_j``); in a
mesh boundary nodes lack the wrapping neighbour.

The classes are deliberately *implicit*: nodes and edges are generated on
demand rather than stored, so graphs with millions of nodes remain cheap to
create.  Distances are computed analytically (Lemmas 5 and 6); the test
suite cross-checks them against breadth-first search on small instances via
the :mod:`networkx` adapter.

Special cases follow the paper's terminology:

* :class:`Line` — a 1-dimensional mesh;
* :class:`Ring` — a 1-dimensional torus;
* :class:`Hypercube` — shape ``(2, ..., 2)``; it is both a torus and a mesh
  (the wrap edge of a length-2 dimension coincides with the mesh edge).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InvalidShapeError
from ..numbering.arrays import digit_weights, indices_to_digits, require_numpy
from ..numbering.distance import graph_distance_indices, mesh_distance, torus_distance
from ..numbering.radix import RadixBase
from ..types import GraphKind, Node, Shape, ShapedGraphSpec, as_shape

__all__ = [
    "CartesianGraph",
    "Torus",
    "Mesh",
    "Line",
    "Ring",
    "Hypercube",
    "make_graph",
    "graph_from_spec",
]


class CartesianGraph:
    """Common behaviour of toruses and meshes.

    Subclasses fix :attr:`kind`.  Node tuples are always full ``d``-tuples;
    for 1-dimensional graphs the helpers :meth:`node_of_int` /
    :meth:`int_of_node` convert to the paper's integer shorthand.
    """

    kind: GraphKind

    def __init__(self, shape: Iterable[int]):
        self._shape: Shape = as_shape(shape)
        self._base = RadixBase(self._shape)
        # Lazily derived arrays (node digit table, edge-endpoint ranks,
        # neighbour matrix).  Graphs are immutable, so once computed they are
        # never invalidated; all are marked read-only because they are shared
        # between every embedding/measure that touches this graph object.
        self._node_digits = None
        self._edge_arrays = None
        self._neighbor_matrix = None

    # ------------------------------------------------------------------ #
    # Basic metadata
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Shape:
        """The shape ``(l_1, ..., l_d)``."""
        return self._shape

    @property
    def dimension(self) -> int:
        """The dimension ``d``."""
        return len(self._shape)

    @property
    def size(self) -> int:
        """Number of nodes ``Π l_i``."""
        return self._base.size

    @property
    def radix_base(self) -> RadixBase:
        """The mixed-radix base whose numbers are this graph's nodes."""
        return self._base

    @property
    def spec(self) -> ShapedGraphSpec:
        """The (kind, shape) spec of this graph."""
        return ShapedGraphSpec(self.kind, self._shape)

    @property
    def is_square(self) -> bool:
        """True when every dimension has the same length."""
        return len(set(self._shape)) == 1

    @property
    def is_hypercube(self) -> bool:
        """True when every dimension has length 2 (Definition 4)."""
        return all(l == 2 for l in self._shape)

    @property
    def is_torus(self) -> bool:
        return self.kind.is_torus

    @property
    def is_mesh(self) -> bool:
        return self.kind.is_mesh

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CartesianGraph)
            and self.kind == other.kind
            and self._shape == other._shape
        )

    def __hash__(self) -> int:
        return hash((self.kind, self._shape))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}{self._shape}"

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in natural (lexicographic) order."""
        return iter(self._base)

    def contains(self, node: Sequence[int]) -> bool:
        """True when the tuple is a node of this graph."""
        return self._base.contains_digits(tuple(node))

    def node_index(self, node: Sequence[int]) -> int:
        """Rank of a node in natural order (the bijection ``u_L^{-1}``)."""
        return self._base.from_digits(tuple(node))

    def index_node(self, index: int) -> Node:
        """Node with the given natural-order rank (the bijection ``u_L``)."""
        return self._base.to_digits(index)

    def node_of_int(self, value: int) -> Node:
        """Convert the paper's integer shorthand for 1-D graphs to a node tuple."""
        if self.dimension != 1:
            raise InvalidShapeError("integer node shorthand only applies to 1-D graphs")
        return (value,)

    def int_of_node(self, node: Sequence[int]) -> int:
        """Convert a 1-D node tuple to the paper's integer shorthand."""
        if self.dimension != 1:
            raise InvalidShapeError("integer node shorthand only applies to 1-D graphs")
        return tuple(node)[0]

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def neighbors(self, node: Sequence[int]) -> List[Node]:
        """All neighbours of a node, ordered by dimension then direction."""
        node = tuple(node)
        if not self.contains(node):
            raise InvalidShapeError(f"{node!r} is not a node of {self!r}")
        result: List[Node] = []
        for j, length in enumerate(self._shape):
            for delta in (-1, +1):
                neighbor = self._step(node, j, delta)
                if neighbor is not None:
                    result.append(neighbor)
        # A length-2 dimension of a torus produces the same neighbour twice
        # (left and right wrap to the same node); deduplicate while keeping order.
        seen: set[Node] = set()
        unique: List[Node] = []
        for item in result:
            if item not in seen:
                seen.add(item)
                unique.append(item)
        return unique

    def degree(self, node: Sequence[int]) -> int:
        """Number of distinct neighbours of a node."""
        return len(self.neighbors(node))

    def are_adjacent(self, a: Sequence[int], b: Sequence[int]) -> bool:
        """True when the two nodes are joined by an edge."""
        return self.distance(a, b) == 1

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over all edges, each reported once with endpoints ordered by rank."""
        for node in self.nodes():
            rank = self.node_index(node)
            for neighbor in self.neighbors(node):
                if self.node_index(neighbor) > rank:
                    yield node, neighbor

    def num_edges(self) -> int:
        """Total number of edges (closed form).

        Dimension ``j`` contributes one edge per node in a torus with
        ``l_j > 2`` and ``n - n / l_j`` edges otherwise (a length-2 torus
        dimension's wrap edge coincides with its mesh edge).
        """
        n = self.size
        total = 0
        for length in self._shape:
            if self.kind.is_torus and length > 2:
                total += n
            else:
                total += n - n // length
        return total

    def node_digit_array(self):
        """The ``(n, d)`` digit rows of every node in natural order (cached).

        The all-nodes ``u_L`` table shared by the edge derivation and the
        batched construction kernels.  Computed once per graph object and
        returned read-only.  Requires NumPy.
        """
        if self._node_digits is None:
            np = require_numpy()
            digits = indices_to_digits(np.arange(self.size, dtype=np.int64), self._shape)
            digits.setflags(write=False)
            self._node_digits = digits
        return self._node_digits

    def neighbor_rank_matrix(self):
        """The ``(n, 2d)`` neighbour ranks of every node, plus a validity mask.

        Column ``2j`` is the dimension-``j`` ``-1``-direction neighbour and
        column ``2j + 1`` the ``+1`` direction — exactly the order
        :meth:`neighbors` yields them, with the same handling of mesh
        boundaries (masked out) and length-2 torus dimensions (the ``+1``
        wrap duplicates the ``-1`` neighbour and is masked out).  Returns
        ``(neighbors, valid)``; entries with ``valid`` False are
        meaningless.  Cached and read-only.  Requires NumPy.
        """
        if self._neighbor_matrix is None:
            np = require_numpy()
            n = self.size
            weights = digit_weights(self._shape)
            digits = self.node_digit_array()
            ranks = np.arange(n, dtype=np.int64)
            dimension = self.dimension
            neighbors = np.empty((n, 2 * dimension), dtype=np.int64)
            valid = np.zeros((n, 2 * dimension), dtype=bool)
            for j, length in enumerate(self._shape):
                coords = digits[:, j]
                weight = int(weights[j])
                if self.kind.is_torus:
                    neighbors[:, 2 * j] = (
                        ranks + np.where(coords > 0, -1, length - 1) * weight
                    )
                    valid[:, 2 * j] = True
                    neighbors[:, 2 * j + 1] = (
                        ranks + np.where(coords < length - 1, 1, -(length - 1)) * weight
                    )
                    valid[:, 2 * j + 1] = length > 2
                else:
                    neighbors[:, 2 * j] = ranks - weight
                    valid[:, 2 * j] = coords > 0
                    neighbors[:, 2 * j + 1] = ranks + weight
                    valid[:, 2 * j + 1] = coords < length - 1
            neighbors.setflags(write=False)
            valid.setflags(write=False)
            self._neighbor_matrix = (neighbors, valid)
        return self._neighbor_matrix

    def edge_index_arrays(self):
        """All edges as a pair of flat ``int64`` rank arrays ``(u, v)``.

        The vectorized counterpart of :meth:`edges`: each edge appears
        exactly once with ``u < v`` (natural-order ranks).  The edges are
        grouped by dimension rather than by node, so the *order* differs from
        :meth:`edges`; the multiset of edges is identical, which is what the
        vectorized cost computations need.  The pair is derived once per
        graph object, cached (graphs are immutable — nothing ever
        invalidates it) and returned read-only, so survey-scale loops that
        measure many embeddings against the same graph never re-derive it.
        Requires NumPy.
        """
        if self._edge_arrays is None:
            np = require_numpy()
            n = self.size
            weights = digit_weights(self._shape)
            digits = self.node_digit_array()
            sources: List = []
            targets: List = []
            for j, length in enumerate(self._shape):
                weight = int(weights[j])
                column = digits[:, j]
                if self.kind.is_torus and length > 2:
                    u = np.arange(n, dtype=np.int64)
                    v = u + np.where(column < length - 1, weight, -(length - 1) * weight)
                else:
                    u = np.flatnonzero(column < length - 1).astype(np.int64)
                    v = u + weight
                sources.append(u)
                targets.append(v)
            u = np.concatenate(sources)
            v = np.concatenate(targets)
            u, v = np.minimum(u, v), np.maximum(u, v)
            u.setflags(write=False)
            v.setflags(write=False)
            self._edge_arrays = (u, v)
        return self._edge_arrays

    # ------------------------------------------------------------------ #
    # Distance
    # ------------------------------------------------------------------ #
    def distance(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Shortest-path distance between two nodes (Lemma 5 / Lemma 6)."""
        a = tuple(a)
        b = tuple(b)
        if not self.contains(a) or not self.contains(b):
            raise InvalidShapeError("distance arguments must be nodes of the graph")
        if self.kind.is_torus:
            return torus_distance(a, b, self._shape)
        return mesh_distance(a, b)

    def distance_indices(self, a_indices, b_indices):
        """Vectorized :meth:`distance` over batches of natural-order ranks.

        Both arguments are array-likes of flat node indices; the result is an
        ``int64`` array of pairwise δt/δm distances.  Requires NumPy.
        """
        return graph_distance_indices(
            a_indices, b_indices, self._shape, torus=self.kind.is_torus
        )

    def diameter(self) -> int:
        """The graph diameter, computed from the closed-form per-dimension maxima."""
        if self.kind.is_torus:
            return sum(length // 2 for length in self._shape)
        return sum(length - 1 for length in self._shape)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _step(self, node: Node, dimension: int, delta: int) -> Optional[Node]:
        """Neighbour of ``node`` one step along ``dimension``; ``None`` if absent."""
        length = self._shape[dimension]
        coord = node[dimension] + delta
        if self.kind.is_torus:
            coord %= length
        elif not (0 <= coord < length):
            return None
        return node[:dimension] + (coord,) + node[dimension + 1 :]


class Torus(CartesianGraph):
    """An ``(l_1, ..., l_d)``-torus (Definition 2)."""

    kind = GraphKind.TORUS


class Mesh(CartesianGraph):
    """An ``(l_1, ..., l_d)``-mesh (Definition 3)."""

    kind = GraphKind.MESH


class Line(Mesh):
    """A line: a mesh of dimension 1."""

    def __init__(self, size: int):
        super().__init__((size,))


class Ring(Torus):
    """A ring: a torus of dimension 1."""

    def __init__(self, size: int):
        super().__init__((size,))


class Hypercube(Torus):
    """A hypercube of size ``2^d`` (Definition 4).

    Represented with kind ``torus`` (its torus and mesh edge sets coincide);
    use :class:`Mesh` with shape ``(2, ..., 2)`` if the mesh kind is needed
    for a particular strategy.
    """

    def __init__(self, dimension: int):
        if dimension < 1:
            raise InvalidShapeError("a hypercube needs dimension >= 1")
        super().__init__((2,) * dimension)


def make_graph(kind: GraphKind | str, shape: Iterable[int]) -> CartesianGraph:
    """Construct a torus or mesh from a kind and a shape."""
    kind = GraphKind(kind)
    if kind.is_torus:
        return Torus(shape)
    return Mesh(shape)


def graph_from_spec(spec: ShapedGraphSpec) -> CartesianGraph:
    """Materialize the graph described by a :class:`ShapedGraphSpec`."""
    return make_graph(spec.kind, spec.shape)
