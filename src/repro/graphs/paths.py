"""Explicit shortest paths in toruses and meshes.

Shortest paths are produced by *dimension-ordered routing*: correct the
coordinate of dimension 1 first, then dimension 2, and so on.  In a mesh the
correction always moves monotonically towards the target coordinate; in a
torus it moves in whichever direction is shorter around the ring of that
dimension (ties broken towards increasing coordinates).  The resulting path
length equals the analytic distance of Lemmas 5 and 6, which the test suite
verifies, and the same routing discipline is reused by the network simulator
(:mod:`repro.netsim.routing`).
"""

from __future__ import annotations

from typing import List, Sequence

from ..exceptions import InvalidShapeError
from ..types import Node
from .base import CartesianGraph

__all__ = ["dimension_order_path", "shortest_path"]


def _ring_step_direction(source: int, target: int, length: int, wrap: bool) -> int:
    """Direction (+1/-1) of one step from ``source`` towards ``target``.

    For meshes (``wrap=False``) the direction is simply the sign of the
    difference.  For toruses the shorter way around is chosen; on a tie the
    increasing direction is used so that routing is deterministic.
    """
    if source == target:
        return 0
    if not wrap:
        return 1 if target > source else -1
    forward = (target - source) % length
    backward = (source - target) % length
    if forward <= backward:
        return +1
    return -1


def dimension_order_path(
    graph: CartesianGraph,
    source: Sequence[int],
    target: Sequence[int],
    *,
    validate: bool = True,
) -> List[Node]:
    """A shortest path from ``source`` to ``target`` using dimension-ordered routing.

    The returned list starts with ``source`` and ends with ``target``; its
    length minus one equals ``graph.distance(source, target)``.

    ``validate=False`` skips the endpoint membership checks for callers that
    already validated them (e.g. the network simulator, whose endpoints all
    pass through pattern placement once per phase).
    """
    source = tuple(source)
    target = tuple(target)
    if validate and not (graph.contains(source) and graph.contains(target)):
        raise InvalidShapeError("path endpoints must be nodes of the graph")
    path: List[Node] = [source]
    current = list(source)
    for dim, length in enumerate(graph.shape):
        while current[dim] != target[dim]:
            direction = _ring_step_direction(
                current[dim], target[dim], length, graph.is_torus
            )
            if graph.is_torus:
                current[dim] = (current[dim] + direction) % length
            else:
                current[dim] = current[dim] + direction
            path.append(tuple(current))
    return path


def shortest_path(
    graph: CartesianGraph, source: Sequence[int], target: Sequence[int]
) -> List[Node]:
    """Alias of :func:`dimension_order_path` (the canonical shortest path)."""
    return dimension_order_path(graph, source, target)
