"""The random-bijection baseline embedding.

A uniformly random matching of guest nodes to host nodes.  Its expected
dilation is close to the host diameter for all but tiny graphs, which makes
it the sanity-check lower bar: every structured strategy (the paper's and
the other baselines) should beat it comfortably.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.embedding import Embedding
from ..exceptions import ShapeMismatchError
from ..graphs.base import CartesianGraph

__all__ = ["random_embedding"]


def random_embedding(
    guest: CartesianGraph, host: CartesianGraph, *, seed: Optional[int] = 0
) -> Embedding:
    """A seeded uniformly random bijection of guest nodes onto host nodes."""
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    rng = random.Random(seed)
    host_nodes = list(host.nodes())
    rng.shuffle(host_nodes)
    mapping = {
        guest_node: host_nodes[index]
        for index, guest_node in enumerate(guest.nodes())
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy="baseline:random",
        predicted_dilation=None,
        notes={"seed": seed},
    )
