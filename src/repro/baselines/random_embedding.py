"""The random-bijection baseline embedding.

A uniformly random matching of guest nodes to host nodes.  Its expected
dilation is close to the host diameter for all but tiny graphs, which makes
it the sanity-check lower bar: every structured strategy (the paper's and
the other baselines) should beat it comfortably.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.embedding import Embedding
from ..exceptions import ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import require_numpy
from ..runtime.context import use_array_path

__all__ = ["random_embedding"]


def random_embedding(
    guest: CartesianGraph, host: CartesianGraph, *, seed: Optional[int] = 0
) -> Embedding:
    """A seeded uniformly random bijection of guest nodes onto host nodes.

    Both backends draw the identical permutation: ``random.Random.shuffle``
    only ever swaps positions, so shuffling the rank range produces the same
    bijection as shuffling the host node tuples — the array path just skips
    materializing the tuples and the mapping dict.
    """
    if guest.size > host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    rng = random.Random(seed)
    if use_array_path():
        np = require_numpy()
        permutation = list(range(host.size))
        rng.shuffle(permutation)
        return Embedding.from_index_array(
            guest,
            host,
            np.asarray(permutation[: guest.size], dtype=np.int64),
            strategy="baseline:random",
            predicted_dilation=None,
            notes={"seed": seed},
        )
    host_nodes = list(host.nodes())
    rng.shuffle(host_nodes)
    mapping = {
        guest_node: host_nodes[index]
        for index, guest_node in enumerate(guest.nodes())
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy="baseline:random",
        predicted_dilation=None,
        notes={"seed": seed},
    )
