"""The breadth-first-search order baseline embedding.

Both graphs are traversed breadth-first from their all-zero corner node and
the visit orders are matched rank by rank.  This is a cheap locality
heuristic: nodes close to the guest origin land close to the host origin,
but nothing controls the dilation of edges far from the origin, so it
typically sits between the lexicographic baseline and the paper's
constructions.

Two implementations share the deterministic visit order: the per-node queue
walk (:func:`bfs_order`, the loop reference) and a level-synchronous
vectorized expansion over the cached neighbour-rank matrix
(:func:`bfs_rank_order`) whose Python iteration count is the graph's
eccentricity, not its node count.  The baseline differential tests pin them
node-for-node.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from ..core.embedding import Embedding
from ..exceptions import ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import require_numpy
from ..runtime.context import use_array_path
from ..types import Node

__all__ = ["bfs_order_embedding", "bfs_order", "bfs_rank_order"]


def bfs_order(graph: CartesianGraph) -> List[Node]:
    """Breadth-first visit order starting from the all-zero node.

    Ties at equal depth are broken by natural node order (the order in which
    :meth:`CartesianGraph.neighbors` yields them), so the order is
    deterministic.
    """
    start: Node = (0,) * graph.dimension
    seen = {start}
    order: List[Node] = [start]
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_rank_order(graph: CartesianGraph):
    """Natural-order ranks in breadth-first visit order (vectorized).

    Level-synchronous expansion: each round gathers the whole frontier's
    neighbour columns (parents in discovery order, columns in
    :meth:`CartesianGraph.neighbors` order), drops already-seen ranks and
    keeps the first occurrence of each novel rank — exactly the order the
    per-node queue of :func:`bfs_order` discovers them, because a BFS queue
    drains each depth level completely before the next.  Requires NumPy.
    """
    np = require_numpy()
    neighbors, valid = graph.neighbor_rank_matrix()
    n = graph.size
    seen = np.zeros(n, dtype=bool)
    seen[0] = True  # the all-zero corner has rank 0
    frontier = np.zeros(1, dtype=np.int64)
    levels = [frontier]
    visited = 1
    while visited < n:
        candidates = neighbors[frontier][valid[frontier]]  # discovery order
        candidates = candidates[~seen[candidates]]
        if candidates.size == 0:  # pragma: no cover - graphs are connected
            break
        _, first = np.unique(candidates, return_index=True)
        frontier = candidates[np.sort(first)]
        seen[frontier] = True
        levels.append(frontier)
        visited += frontier.size
    return np.concatenate(levels)


def bfs_order_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Match breadth-first visit ranks of guest and host nodes.

    A guest smaller than the host uses only the first ``|V_G|`` host nodes
    in breadth-first order (the ball around the host origin), injectively.
    """
    if guest.size > host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    if use_array_path():
        np = require_numpy()
        guest_ranks = bfs_rank_order(guest)
        host_ranks = bfs_rank_order(host)[: guest.size]
        host_indices = np.empty(guest.size, dtype=np.int64)
        host_indices[guest_ranks] = host_ranks
        return Embedding.from_index_array(
            guest,
            host,
            host_indices,
            strategy="baseline:bfs-order",
            predicted_dilation=None,
        )
    guest_order = bfs_order(guest)
    host_order = bfs_order(host)
    mapping: Dict[Node, Node] = {
        guest_node: host_node for guest_node, host_node in zip(guest_order, host_order)
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy="baseline:bfs-order",
        predicted_dilation=None,
    )
