"""The breadth-first-search order baseline embedding.

Both graphs are traversed breadth-first from their all-zero corner node and
the visit orders are matched rank by rank.  This is a cheap locality
heuristic: nodes close to the guest origin land close to the host origin,
but nothing controls the dilation of edges far from the origin, so it
typically sits between the lexicographic baseline and the paper's
constructions.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from ..core.embedding import Embedding
from ..exceptions import ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..types import Node

__all__ = ["bfs_order_embedding", "bfs_order"]


def bfs_order(graph: CartesianGraph) -> List[Node]:
    """Breadth-first visit order starting from the all-zero node.

    Ties at equal depth are broken by natural node order (the order in which
    :meth:`CartesianGraph.neighbors` yields them), so the order is
    deterministic.
    """
    start: Node = (0,) * graph.dimension
    seen = {start}
    order: List[Node] = [start]
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_order_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Match breadth-first visit ranks of guest and host nodes."""
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    guest_order = bfs_order(guest)
    host_order = bfs_order(host)
    mapping: Dict[Node, Node] = {
        guest_node: host_node for guest_node, host_node in zip(guest_order, host_order)
    }
    return Embedding(
        guest=guest,
        host=host,
        mapping=mapping,
        strategy="baseline:bfs-order",
        predicted_dilation=None,
    )
