"""The lexicographic (row-major) baseline embedding.

Guest node with natural-order rank ``x`` maps to the host node with the same
rank.  For a line guest this is exactly the paper's natural sequence ``P``
(Section 3.1), whose ``δm``-spread the paper shows to be larger than 1 for
every host of dimension above 1 — the motivating "bad" embedding that the
reflected sequence ``P'``/``f_L`` improves on.
"""

from __future__ import annotations

from ..core.embedding import Embedding
from ..exceptions import ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import require_numpy
from ..runtime.context import use_array_path

__all__ = ["lexicographic_embedding"]


def lexicographic_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Match natural-order ranks of guest and host nodes.

    Under the array backend the host-index array is literally ``arange``;
    the per-node callable stays as the loop reference (the two are pinned
    node-for-node by the baseline differential tests).  A guest smaller
    than the host maps injectively onto the first ``|V_G|`` host ranks.
    """
    if guest.size > host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    if use_array_path():
        np = require_numpy()
        return Embedding.from_index_array(
            guest,
            host,
            np.arange(guest.size, dtype=np.int64),
            strategy="baseline:lexicographic",
            predicted_dilation=None,
        )
    return Embedding.from_callable(
        guest,
        host,
        lambda node: host.index_node(guest.node_index(node)),
        strategy="baseline:lexicographic",
        predicted_dilation=None,
    )
