"""Baseline embeddings used as comparison points.

None of these come from the paper — they are the straightforward strategies
a practitioner might use instead, and the experiment harness measures how
much dilation (and, via the simulator, communication time) the paper's
constructions save relative to them:

``lexicographic``
    Rank both node sets in natural (row-major) order and match ranks.  This
    is the "obvious" mapping and is what the paper's sequence ``P``
    corresponds to for 1-dimensional guests.
``random_embedding``
    A uniformly random bijection (seeded), the expected-case worst baseline.
``bfs_embedding``
    Match breadth-first-search visit orders of the two graphs; a greedy
    locality heuristic.
``reflected_gray``
    The classic binary reflected Gray code mapping for hypercube hosts
    ([CS86]-style); coincides with the paper's ``f_L`` on power-of-two
    lines, and serves as the prior-art comparator for mesh-in-hypercube
    embeddings.
"""

from .lexicographic import lexicographic_embedding
from .random_embedding import random_embedding
from .bfs_embedding import bfs_order_embedding
from .reflected_gray import binary_gray_embedding

__all__ = [
    "lexicographic_embedding",
    "random_embedding",
    "bfs_order_embedding",
    "binary_gray_embedding",
]
