"""Binary reflected Gray code embedding into hypercubes ([CS86]-style baseline).

Chan and Saad embed meshes of power-of-two shape in hypercubes by encoding
each coordinate with a binary reflected Gray code and concatenating the
codes.  The paper generalizes exactly this technique to mixed radices; on
power-of-two shapes the two coincide, which the test suite checks.  The
function here implements the classic construction directly (without going
through the mixed-radix machinery) so it can serve as an independent
prior-art comparator.
"""

from __future__ import annotations

from typing import Tuple

from ..core.embedding import Embedding
from ..exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from ..graphs.base import CartesianGraph
from ..numbering.graycode import binary_reflected_gray_value
from ..types import Node
from ..utils.intmath import is_power_of

__all__ = ["binary_gray_embedding"]


def _coordinate_bits(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    bits = []
    for length in shape:
        exponent = is_power_of(length, 2)
        if exponent is None:
            raise UnsupportedEmbeddingError(
                f"the binary Gray baseline requires power-of-two dimension lengths, got {length}"
            )
        bits.append(exponent)
    return tuple(bits)


def binary_gray_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Embed a power-of-two-shaped guest in a hypercube via per-coordinate Gray codes."""
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    if not host.is_hypercube:
        raise UnsupportedEmbeddingError("the binary Gray baseline requires a hypercube host")
    bits = _coordinate_bits(guest.shape)

    def mapping(node: Node) -> Node:
        out = []
        for coordinate, width in zip(node, bits):
            gray = binary_reflected_gray_value(coordinate)
            out.extend((gray >> (width - 1 - i)) & 1 for i in range(width))
        return tuple(out)

    return Embedding.from_callable(
        guest,
        host,
        mapping,
        strategy="baseline:binary-reflected-gray",
        predicted_dilation=1 if guest.is_mesh or guest.is_hypercube else None,
        notes={"bits_per_dimension": bits},
    )
