"""Thin client SDK for the embedding service.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over a persistent HTTP/1.1 connection
(stdlib ``http.client`` — keep-alive matters for the load-generator
benchmark, where a fresh TCP handshake per request would dominate).  One
client holds one connection, so share clients across requests but not
across threads; the load generator gives each worker thread its own.

>>> from repro.service import ServiceClient
>>> client = ServiceClient("http://127.0.0.1:8642")
>>> client.embed("torus:4,6", "mesh:2,2,2,3")["record"]["dilation"]
1
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Dict, Optional

from .server import DEFAULT_PORT

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request the service refused or failed; carries the response payload."""

    def __init__(self, message: str, status: int = 0, payload: Optional[Dict] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """A blocking JSON client bound to one service URL."""

    def __init__(
        self,
        url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 60.0,
    ):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// service URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or DEFAULT_PORT
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        response = None
        # One transparent retry on a dropped keep-alive connection.
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(
                    method,
                    path,
                    body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = self._connection.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        assert response is not None
        try:
            document = json.loads(data)
        except ValueError as error:
            raise ServiceError(
                f"non-JSON response from {self.host}:{self.port}: {error}",
                status=response.status,
            ) from error
        if response.status >= 400 or not document.get("ok", False):
            raise ServiceError(
                document.get("error", f"HTTP {response.status}"),
                status=response.status,
                payload=document,
            )
        return document

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def invoke(self, payload: Dict) -> Dict:
        """POST an explicit-``op`` request dict; returns the response document."""
        return self._request("POST", "/invoke", payload)

    def embed(self, guest: str, host: str, *, congestion: bool = False) -> Dict:
        """Embed-and-measure a pair; returns ``{"record": ..., "meta": ...}``."""
        return self._request(
            "POST", "/embed", {"guest": guest, "host": host, "congestion": congestion}
        )

    def simulate(
        self,
        guest: str,
        host: str,
        *,
        strategy: str = "paper",
        traffic: str = "neighbor-exchange",
    ) -> Dict:
        """Simulate one traffic phase; returns ``{"record": ..., "meta": ...}``."""
        return self._request(
            "POST",
            "/simulate",
            {"guest": guest, "host": host, "strategy": strategy, "traffic": traffic},
        )

    def stats(self) -> Dict:
        """The server's ``GET /stats`` counters."""
        return self._request("GET", "/stats")["stats"]

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll ``/health`` until the daemon answers (or raise after timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except (ServiceError, OSError, socket.timeout):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)
