"""Thin client SDK for the embedding service.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over a persistent HTTP/1.1 connection
(stdlib ``http.client`` — keep-alive matters for the load-generator
benchmark, where a fresh TCP handshake per request would dominate).  One
client holds one connection, so share clients across requests but not
across threads; the load generator gives each worker thread its own.

Retries are the client's half of the service's recovery plane: transport
errors (dropped keep-alive, refused connection) and HTTP 503 shed
responses are retried under one capped-exponential-backoff policy
(:class:`~repro.utils.backoff.BackoffPolicy` — full jitter, honouring the
server's ``Retry-After`` when it is longer), and a small circuit breaker
(:class:`~repro.utils.backoff.CircuitBreaker`) stops hammering a down
service: after ``failure_threshold`` consecutive request failures the
breaker opens and calls fail fast with
:class:`~repro.utils.backoff.CircuitOpenError` until a reset timeout lets
one probe through.  Requests are safe to retry by construction — every op
is a pure computation.

>>> from repro.service import ServiceClient
>>> client = ServiceClient("http://127.0.0.1:8642")
>>> client.embed("torus:4,6", "mesh:2,2,2,3")["record"]["dilation"]
1
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Dict, Optional

from ..utils.backoff import BackoffPolicy, CircuitBreaker
from .server import DEFAULT_PORT

__all__ = ["DEFAULT_RETRY", "ServiceClient", "ServiceError"]

#: The client's default retry policy: three attempts, 50 ms → 800 ms
#: full-jitter backoff.  Status 503 and transport errors retry; anything
#: else surfaces immediately.
DEFAULT_RETRY = BackoffPolicy(
    max_attempts=3, base_delay=0.05, max_delay=0.8, factor=4.0, jitter=1.0
)


class ServiceError(RuntimeError):
    """A request the service refused or failed; carries the response payload."""

    def __init__(self, message: str, status: int = 0, payload: Optional[Dict] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """A blocking JSON client bound to one service URL.

    ``retry`` (a :class:`~repro.utils.backoff.BackoffPolicy`) governs both
    transparent request retries and :meth:`wait_until_ready` pacing;
    ``breaker`` (a :class:`~repro.utils.backoff.CircuitBreaker`, or ``None``
    to disable) guards the request verbs — liveness probes bypass it, so a
    client can still :meth:`wait_until_ready` through an open circuit.
    """

    def __init__(
        self,
        url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
        timeout: float = 60.0,
        retry: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// service URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or DEFAULT_PORT
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retries = 0  # transparent retries performed (observability)
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request_once(
        self, method: str, path: str, payload: Optional[bytes]
    ) -> Dict:
        """One attempt on the persistent connection; raises on any failure."""
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = self._connection.getresponse()
            data = response.read()
        except (http.client.HTTPException, OSError):
            # The connection is in an unknown state; never reuse it.
            self.close()
            raise
        try:
            document = json.loads(data)
        except ValueError as error:
            raise ServiceError(
                f"non-JSON response from {self.host}:{self.port}: {error}",
                status=response.status,
            ) from error
        if response.status >= 400 or not document.get("ok", False):
            retry_after = response.headers.get("Retry-After")
            if retry_after is not None:
                document = dict(document, retry_after=retry_after)
            raise ServiceError(
                document.get("error", f"HTTP {response.status}"),
                status=response.status,
                payload=document,
            )
        return document

    @staticmethod
    def _retryable(error: Exception) -> bool:
        if isinstance(error, ServiceError):
            return error.status == 503  # shed/draining: explicitly retry-later
        return isinstance(error, (http.client.HTTPException, OSError))

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        *,
        use_breaker: bool = True,
    ) -> Dict:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        breaker = self.breaker if use_breaker else None
        if breaker is not None:
            breaker.before_call()
        attempt = 0
        while True:
            try:
                document = self._request_once(method, path, payload)
            except Exception as error:  # noqa: BLE001 - classified below
                if attempt + 1 >= self.retry.max_attempts or not self._retryable(
                    error
                ):
                    if breaker is not None:
                        breaker.record_failure()
                    raise
                delay = self.retry.delay(attempt)
                if isinstance(error, ServiceError):
                    hinted = error.payload.get("retry_after")
                    try:
                        delay = max(delay, float(hinted))
                    except (TypeError, ValueError):
                        pass
                time.sleep(delay)
                attempt += 1
                self.retries += 1
                continue
            if breaker is not None:
                breaker.record_success()
            return document

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def invoke(self, payload: Dict) -> Dict:
        """POST an explicit-``op`` request dict; returns the response document."""
        return self._request("POST", "/invoke", payload)

    def embed(self, guest: str, host: str, *, congestion: bool = False) -> Dict:
        """Embed-and-measure a pair; returns ``{"record": ..., "meta": ...}``."""
        return self._request(
            "POST", "/embed", {"guest": guest, "host": host, "congestion": congestion}
        )

    def simulate(
        self,
        guest: str,
        host: str,
        *,
        strategy: str = "paper",
        traffic: str = "neighbor-exchange",
    ) -> Dict:
        """Simulate one traffic phase; returns ``{"record": ..., "meta": ...}``."""
        return self._request(
            "POST",
            "/simulate",
            {"guest": guest, "host": host, "strategy": strategy, "traffic": traffic},
        )

    def stats(self) -> Dict:
        """The server's ``GET /stats`` counters."""
        return self._request("GET", "/stats")["stats"]

    def health(self) -> Dict:
        return self._request("GET", "/health", use_breaker=False)

    def wait_until_ready(self, timeout: float = 10.0) -> None:
        """Poll ``/health`` under backoff until the daemon answers.

        One overall ``timeout`` bounds the whole wait — probe time *and*
        sleeps — rather than resetting per attempt; probes are paced by the
        client's backoff policy (50 ms ramping up, not a fixed-interval
        busy poll), each probe's socket timeout is capped to the time
        remaining, and the last probe's error is re-raised on expiry.
        """
        deadline = time.monotonic() + timeout
        attempt = 0
        saved_timeout = self.timeout
        try:
            while True:
                remaining = deadline - time.monotonic()
                try:
                    # Cap the socket timeout so one hung probe cannot
                    # overshoot the overall deadline; probe with a single
                    # attempt (the loop, not _request, owns the retrying).
                    self.timeout = max(0.05, min(saved_timeout, remaining))
                    self.close()
                    self._request_once("GET", "/health", None)
                    return
                except (ServiceError, OSError, socket.timeout):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise
                    time.sleep(min(self.retry.delay(attempt), remaining))
                    attempt += 1
        finally:
            self.timeout = saved_timeout
            self.close()
