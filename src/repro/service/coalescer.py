"""The async request coalescer — many concurrent requests, one kernel pass.

The batched survey layer (:mod:`repro.survey.batch`) already answers *many
same-signature queries* in one fused stacked-kernel pass; what a server adds
is the gathering.  :class:`RequestCoalescer` runs a private asyncio event
loop on a background thread and turns a stream of individually submitted
requests into evaluation batches:

* the first request of a batch opens a *collection window* (a few
  milliseconds); every request arriving inside the window — or until
  ``max_batch`` is reached — joins the batch;
* the batch is handed to a single-threaded evaluation executor (the
  evaluator owns shared mutable state — the resident construction cache —
  so evaluation is deliberately serialized);
* while a batch evaluates, the collector is already gathering the next one,
  so under sustained load batch sizes grow with throughput instead of the
  window length — natural backpressure, no tuning.

Submission is thread-safe (``submit`` is called from HTTP handler threads)
and returns a ``concurrent.futures.Future`` that resolves to whatever the
evaluator produced for that request.  The coalescer never inspects results:
grouping by signature, stacking and record assembly all live in the
evaluator (:meth:`repro.service.server.ReproService._evaluate_batch` →
:func:`repro.survey.runner.evaluate_shard`), which keeps the coalesced path
byte-identical to the per-request reference by construction.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["CoalescerClosed", "RequestCoalescer"]


class CoalescerClosed(RuntimeError):
    """Raised by :meth:`RequestCoalescer.submit` after :meth:`close`."""


class _Pending:
    """One submitted request waiting for its batch to evaluate."""

    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: object):
        self.request = request
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class RequestCoalescer:
    """Collect requests over a short window and evaluate them as one batch.

    Parameters
    ----------
    evaluate_batch:
        ``(requests) -> results`` — called on the evaluation thread with the
        collected requests (in arrival order) and expected to return one
        result per request, positionally.  A raised exception fails every
        future of the batch.
    window:
        Seconds the collector keeps gathering after the first request of a
        batch arrives.
    max_batch:
        Hard batch-size cap; a full batch dispatches before the window ends.
    """

    def __init__(
        self,
        evaluate_batch: Callable[[Sequence[object]], Sequence[object]],
        *,
        window: float = 0.005,
        max_batch: int = 256,
    ):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = window
        self.max_batch = max_batch
        self._evaluate_batch = evaluate_batch
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._outstanding_lock = threading.Lock()
        self._outstanding: set = set()
        self.batches = 0
        self.coalesced_batches = 0
        self.max_batch_size = 0
        self.requests_batched = 0
        self.batch_size_histogram: Dict[int, int] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-eval"
        )
        self._loop = asyncio.new_event_loop()
        self._queue: Optional[asyncio.Queue] = None
        self._collector: Optional[asyncio.Task] = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-coalescer", daemon=True
        )
        self._thread.start()
        self._started.wait()

    # ------------------------------------------------------------------ #
    # Event-loop thread
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._queue = asyncio.Queue()
        self._collector = self._loop.create_task(self._collect())
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _collect(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        while True:
            first = await self._queue.get()
            batch: List[_Pending] = [first]
            deadline = loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            # Await the evaluation so a slow batch back-pressures into a
            # *bigger* next batch (requests keep queueing meanwhile) instead
            # of a pile-up of queued single-request batches.  Evaluation
            # itself runs on the executor thread, never on the loop.
            try:
                await loop.run_in_executor(self._executor, self._dispatch, batch)
            except asyncio.CancelledError:
                # close() cancelled the collector mid-evaluation: the
                # executor still finishes the in-flight batch (close joins
                # it); nothing to unwind here.
                raise

    # ------------------------------------------------------------------ #
    # Evaluation thread
    # ------------------------------------------------------------------ #
    def _dispatch(self, batch: List[_Pending]) -> None:
        with self._lock:
            self.batches += 1
            self.requests_batched += len(batch)
            self.max_batch_size = max(self.max_batch_size, len(batch))
            if len(batch) > 1:
                self.coalesced_batches += 1
            size = len(batch)
            self.batch_size_histogram[size] = self.batch_size_histogram.get(size, 0) + 1
        try:
            results = list(self._evaluate_batch([item.request for item in batch]))
            if len(results) != len(batch):
                raise RuntimeError(
                    f"evaluator returned {len(results)} results for "
                    f"{len(batch)} requests"
                )
        except Exception as error:  # noqa: BLE001 - fail the whole batch's futures
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)
            return
        for item, result in zip(batch, results):
            if not item.future.done():
                item.future.set_result(result)

    # ------------------------------------------------------------------ #
    # Caller-facing API (any thread)
    # ------------------------------------------------------------------ #
    def submit(self, request: object) -> Future:
        """Enqueue a request; the future resolves to the evaluator's result."""
        if self._closed.is_set():
            raise CoalescerClosed("the coalescer is closed")
        item = _Pending(request)
        with self._outstanding_lock:
            self._outstanding.add(item)
        item.future.add_done_callback(lambda _future: self._forget(item))

        def _enqueue() -> None:
            assert self._queue is not None
            if self._closed.is_set():
                if not item.future.done():
                    item.future.set_exception(
                        CoalescerClosed("the coalescer is closed")
                    )
                return
            self._queue.put_nowait(item)

        try:
            self._loop.call_soon_threadsafe(_enqueue)
        except RuntimeError as error:
            # The event loop already stopped (a crashed or closed coalescer
            # losing a race with submit): fail the future instead of
            # leaving a caller blocked on it forever.
            if not item.future.done():
                item.future.set_exception(
                    CoalescerClosed(f"the coalescer event loop is gone: {error}")
                )
        return item.future

    def _forget(self, item: _Pending) -> None:
        with self._outstanding_lock:
            self._outstanding.discard(item)

    def pending_count(self) -> int:
        """Requests submitted but not yet resolved (admission-control input)."""
        with self._outstanding_lock:
            return len(self._outstanding)

    def is_alive(self) -> bool:
        """Can this coalescer still make progress on submitted requests?

        False once closed, once the loop thread has died, or once the
        collector task has finished (a crash in :meth:`_collect` leaves the
        loop spinning but nothing consuming the queue) — the signal the
        service watchdog polls to decide a restart is due.
        """
        if self._closed.is_set() or not self._thread.is_alive():
            return False
        collector = self._collector
        return collector is None or not collector.done()

    def batch_stats(self) -> Dict[str, object]:
        """Counters of the batches formed so far (thread-safe snapshot)."""
        with self._lock:
            mean = self.requests_batched / self.batches if self.batches else 0.0
            return {
                "batches": self.batches,
                "coalesced_batches": self.coalesced_batches,
                "max_batch_size": self.max_batch_size,
                "mean_batch_size": round(mean, 3),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_size_histogram.items())
                },
            }

    def close(self, timeout: float = 10.0) -> None:
        """Stop collecting, fail queued requests, finish the in-flight batch.

        Bounded: if the loop thread does not exit within ``timeout`` (a
        wedged evaluator holding the in-flight batch), every request still
        pending fails with :class:`CoalescerClosed` instead of blocking its
        caller forever, and the evaluator thread is abandoned rather than
        joined.
        """
        if self._closed.is_set():
            return
        self._closed.set()

        def _shutdown() -> None:
            assert self._queue is not None and self._collector is not None
            self._collector.cancel()
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if not item.future.done():
                    item.future.set_exception(
                        CoalescerClosed("the coalescer is closed")
                    )
            self._loop.call_soon(self._loop.stop)

        deadline = time.monotonic() + timeout
        try:
            self._loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            pass  # loop already stopped (crashed thread): sweep below
        self._thread.join(timeout)
        # Bounded wait for the in-flight batch: the evaluator resolves the
        # outstanding futures when it finishes; a wedged one never does.
        while self.pending_count() and time.monotonic() < deadline:
            time.sleep(0.005)
        wedged = self._thread.is_alive() or self.pending_count() > 0
        # A wedged evaluator cannot be interrupted; don't join it.
        self._executor.shutdown(wait=not wedged)
        with self._outstanding_lock:
            stranded = list(self._outstanding)
        for item in stranded:
            if not item.future.done():
                item.future.set_exception(
                    CoalescerClosed(
                        "the coalescer closed before this request completed"
                        + (" (evaluation thread is wedged)" if wedged else "")
                    )
                )

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
