"""Embedding-as-a-service: the resident evaluator and its HTTP front end.

:class:`ReproService` is the long-running core: it owns **one** warm
:class:`~repro.runtime.context.ExecutionContext` — resident
:class:`~repro.runtime.cache.ConstructionCache`, cached graph arrays,
batched evaluation on — for the whole process lifetime, and answers
requests through the async coalescer (:mod:`repro.service.coalescer`):
requests collected over a window are converted to survey scenarios and
evaluated by :func:`repro.survey.runner.evaluate_shard`, i.e. grouped by
``(guest kind+shape, host kind+shape)`` signature, stacked into
``(batch, size)`` matrices and answered by one
``stacked_dilation_summary``/stacked-congestion/vectorized-event-loop pass.
Responses are therefore byte-identical to the per-request reference path —
the same contract the batched survey layer pins.

Observability: every request's end-to-end latency (queue wait included),
batch-size counters from the coalescer and the resident cache's hit/miss
traffic are exposed on ``GET /stats``.

Persistence: with a ``cache_path``, the resident cache is snapshotted
atomically (temp file + ``os.replace``, see :mod:`repro.utils.atomicio`)
at most every ``snapshot_interval`` seconds — after the batch that crossed
the interval — and once more on :meth:`ReproService.close`, so a killed
daemon restarts warm.

The HTTP front end is deliberately stdlib-only
(:class:`http.server.ThreadingHTTPServer`): handler threads block on the
coalescer future while the event loop gathers their batch.

Endpoints::

    POST /embed     {"guest": "torus:4,6", "host": "mesh:2,2,2,3", ...}
    POST /simulate  {"guest": ..., "host": ..., "strategy": ..., "traffic": ...}
    POST /invoke    {"op": "embed"|"simulate", ...}   (explicit-op form)
    GET  /stats     counters: latency quantiles, batch sizes, cache traffic
    GET  /health    liveness probe
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.cache import ConstructionCache
from ..runtime.context import ExecutionContext, use_context
from ..survey.runner import SurveyOptions, evaluate_shard
from ..survey.store import SurveyRecord
from .coalescer import RequestCoalescer
from .protocol import ProtocolError, ServiceRequest

__all__ = ["DEFAULT_PORT", "ReproService", "ServiceHTTPServer", "serve"]

#: Default TCP port of ``repro serve`` (and of the client SDK).
DEFAULT_PORT = 8642


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """The nearest-rank ``q``-quantile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]


class ServiceStats:
    """Thread-safe request/latency counters of one service instance."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests = 0
        self.failures = 0  # futures that resolved with an exception
        self._latencies: deque = deque(maxlen=latency_window)

    def observe_request(self, seconds: float, failed: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if failed:
                self.failures += 1
            else:
                self._latencies.append(seconds)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            latencies = sorted(self._latencies)
            return {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "requests": self.requests,
                "failures": self.failures,
                "latency_ms": {
                    "count": len(latencies),
                    "p50": round(_quantile(latencies, 0.50) * 1e3, 3),
                    "p90": round(_quantile(latencies, 0.90) * 1e3, 3),
                    "p99": round(_quantile(latencies, 0.99) * 1e3, 3),
                    "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
                },
            }


class ReproService:
    """The resident evaluator: one warm context, one coalescer, counters.

    Parameters
    ----------
    backend:
        Runtime backend of the resident context (``"auto"`` resolves to the
        array kernels when NumPy is present; the loop backend still serves,
        through the per-scenario reference path).
    cache / cache_path:
        The resident construction cache, or a pickle path to warm-start it
        from (and snapshot it back to).  With neither, a fresh in-memory
        cache lives for the service lifetime.
    window / max_batch:
        Coalescing knobs, forwarded to :class:`RequestCoalescer`.
    snapshot_interval:
        Minimum seconds between periodic cache snapshots (``cache_path``
        only); ``0`` snapshots after every batch.
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        cache: Optional[ConstructionCache] = None,
        cache_path: Optional[str] = None,
        window: float = 0.005,
        max_batch: int = 256,
        snapshot_interval: float = 30.0,
    ):
        if cache is None:
            cache = (
                ConstructionCache.load(cache_path)
                if cache_path is not None
                else ConstructionCache()
            )
        self.context = ExecutionContext(backend=backend, cache=cache, batch=True)
        self.cache_path = cache_path
        self.snapshot_interval = snapshot_interval
        self._last_snapshot = time.monotonic()
        self._snapshotted_entries = len(cache)
        self.stats = ServiceStats()
        self.coalescer = RequestCoalescer(
            self._evaluate_batch, window=window, max_batch=max_batch
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(self, request: ServiceRequest):
        """Enqueue a request; the future resolves to ``(record, batch_size)``."""
        started = time.perf_counter()
        future = self.coalescer.submit(request)

        def _observe(done) -> None:
            self.stats.observe_request(
                time.perf_counter() - started, failed=done.exception() is not None
            )

        future.add_done_callback(_observe)
        return future

    def handle(self, request: ServiceRequest) -> Tuple[SurveyRecord, int]:
        """Blocking :meth:`submit` — the HTTP handler's code path."""
        return self.submit(request).result()

    def _evaluate_batch(
        self, requests: Sequence[ServiceRequest]
    ) -> List[Tuple[SurveyRecord, int]]:
        """Answer one coalesced batch through the batched survey evaluator.

        Requests become scenarios and run as one shard (grouped by signature
        and stacked inside :func:`evaluate_shard`); the congestion flag is
        an evaluation *option*, not part of the stacking signature, so the
        batch splits into at most two shard passes.  Runs on the coalescer's
        single evaluation thread — the only thread that touches the resident
        cache — under the resident context.
        """
        records: List[Optional[SurveyRecord]] = [None] * len(requests)
        for congestion in (False, True):
            positions = [
                index
                for index, request in enumerate(requests)
                if request.congestion is congestion
            ]
            if not positions:
                continue
            scenarios = [requests[index].scenario() for index in positions]
            options = SurveyOptions(
                workers=1, shard_size=len(scenarios), with_congestion=congestion
            )
            with use_context(self.context):
                shard_records = evaluate_shard(scenarios, options)
            for index, record in zip(positions, shard_records):
                records[index] = record
        self._maybe_snapshot()
        return [(record, len(requests)) for record in records]

    # ------------------------------------------------------------------ #
    # Cache snapshots
    # ------------------------------------------------------------------ #
    def _maybe_snapshot(self, force: bool = False) -> bool:
        """Atomically snapshot the resident cache when due; True if written.

        Called on the evaluation thread after each batch (and from
        :meth:`close`), so saves never race evaluation.  Skips when nothing
        new was memoized since the last snapshot.
        """
        cache = self.context.cache
        if self.cache_path is None or cache is None:
            return False
        if not force:
            if time.monotonic() - self._last_snapshot < self.snapshot_interval:
                return False
        if len(cache) == self._snapshotted_entries:
            return False
        cache.save(self.cache_path)
        self._last_snapshot = time.monotonic()
        self._snapshotted_entries = len(cache)
        return True

    # ------------------------------------------------------------------ #
    # Observability and lifecycle
    # ------------------------------------------------------------------ #
    def stats_snapshot(self) -> Dict[str, object]:
        """The ``GET /stats`` document."""
        document = self.stats.snapshot()
        document["coalescer"] = self.coalescer.batch_stats()
        document["backend"] = self.context.resolved_backend()
        cache = self.context.cache
        document["cache"] = {
            "constructions": cache.construction_count if cache is not None else 0,
            "entries": len(cache) if cache is not None else 0,
            "hits": cache.hits if cache is not None else 0,
            "misses": cache.misses if cache is not None else 0,
            "path": self.cache_path,
        }
        return document

    def close(self) -> None:
        """Stop the coalescer and take a final cache snapshot."""
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        self._maybe_snapshot(force=True)

    def __enter__(self) -> "ReproService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ReproService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ReproService):
        super().__init__(address, _RequestHandler)
        self.service = service


class _RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # The daemon logs through /stats, not per-request stderr lines.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/health":
            self._send_json(200, {"ok": True, "status": "serving"})
        elif self.path == "/stats":
            self._send_json(
                200, {"ok": True, "stats": self.server.service.stats_snapshot()}
            )
        else:
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path not in ("/embed", "/simulate", "/invoke"):
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if self.path != "/invoke" and isinstance(payload, dict):
                payload.setdefault("op", self.path[1:])
            request = ServiceRequest.from_dict(payload)
        except (ProtocolError, ValueError) as error:
            self._send_json(400, {"ok": False, "error": str(error)})
            return
        try:
            record, batch_size = self.server.service.handle(request)
        except Exception as error:  # noqa: BLE001 - surface, don't kill the thread
            self._send_json(
                500, {"ok": False, "error": f"{type(error).__name__}: {error}"}
            )
            return
        self._send_json(
            200,
            {
                "ok": True,
                "record": record.as_dict(),
                "meta": {"batch_size": batch_size, "coalesced": batch_size > 1},
            },
        )


def serve(
    service: ReproService, host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> ServiceHTTPServer:
    """Bind the HTTP front end; the caller drives ``serve_forever()``.

    ``port=0`` binds an ephemeral port (tests and benchmarks); the bound
    address is ``server.server_address``.
    """
    return ServiceHTTPServer((host, port), service)
