"""Embedding-as-a-service: the resident evaluator and its HTTP front end.

:class:`ReproService` is the long-running core: it owns **one** warm
:class:`~repro.runtime.context.ExecutionContext` — resident
:class:`~repro.runtime.cache.ConstructionCache`, cached graph arrays,
batched evaluation on — for the whole process lifetime, and answers
requests through the async coalescer (:mod:`repro.service.coalescer`):
requests collected over a window are converted to survey scenarios and
evaluated by :func:`repro.survey.runner.evaluate_shard`, i.e. grouped by
``(guest kind+shape, host kind+shape)`` signature, stacked into
``(batch, size)`` matrices and answered by one
``stacked_dilation_summary``/stacked-congestion/vectorized-event-loop pass.
Responses are therefore byte-identical to the per-request reference path —
the same contract the batched survey layer pins.

Observability: every request's end-to-end latency (queue wait included),
batch-size counters from the coalescer and the resident cache's hit/miss
traffic are exposed on ``GET /stats``.

Persistence: with a ``cache_path``, the resident cache is snapshotted
atomically (temp file + ``os.replace``, see :mod:`repro.utils.atomicio`)
at most every ``snapshot_interval`` seconds — after the batch that crossed
the interval — and once more on :meth:`ReproService.close`, so a killed
daemon restarts warm.

The HTTP front end is deliberately stdlib-only
(:class:`http.server.ThreadingHTTPServer`): handler threads block on the
coalescer future while the event loop gathers their batch.

Failure plane (PR 10): requests carry a per-request deadline
(:class:`ServiceTimeoutError` → HTTP 504), admission is bounded —
beyond ``max_pending`` outstanding requests the service sheds with
:class:`ServiceOverloadedError` → HTTP 503 + ``Retry-After`` — a watchdog
thread replaces a dead coalescer (counted in ``coalescer_restarts``), and
SIGTERM triggers a graceful drain: new work gets 503, in-flight batches
finish, the cache snapshots once more.  The ``service.handle`` chaos site
(:func:`repro.runtime.chaos.inject`) lets a seeded
:class:`~repro.runtime.chaos.ChaosPlan` exercise all of it on demand;
``GET /stats`` exposes the recovery counters.

Endpoints::

    POST /embed     {"guest": "torus:4,6", "host": "mesh:2,2,2,3", ...}
    POST /simulate  {"guest": ..., "host": ..., "strategy": ..., "traffic": ...}
    POST /invoke    {"op": "embed"|"simulate", ...}   (explicit-op form)
    GET  /stats     counters: latency quantiles, batch sizes, cache traffic
    GET  /health    liveness probe
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.cache import ConstructionCache
from ..runtime.chaos import chaos_counters, raise_fault
from ..runtime.context import ExecutionContext, use_context
from ..survey.runner import SurveyOptions, evaluate_shard
from ..survey.store import SurveyRecord
from .coalescer import RequestCoalescer
from .protocol import ProtocolError, ServiceRequest

__all__ = [
    "DEFAULT_PORT",
    "ReproService",
    "ServiceHTTPServer",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "serve",
]

#: Default TCP port of ``repro serve`` (and of the client SDK).
DEFAULT_PORT = 8642


class ServiceOverloadedError(RuntimeError):
    """The admission queue is full (or the service is draining); retry later.

    Mapped to HTTP 503 with a ``Retry-After`` header by the front end, which
    is what the client SDK's backoff keys on.
    """

    def __init__(self, message: str, retry_after: float = 0.5):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceTimeoutError(RuntimeError):
    """A request missed its per-request deadline; mapped to HTTP 504."""


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """The nearest-rank ``q``-quantile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]


class ServiceStats:
    """Thread-safe request/latency counters of one service instance."""

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests = 0
        self.failures = 0  # futures that resolved with an exception
        self.shed = 0  # admission-control rejections (503)
        self.timeouts = 0  # per-request deadline misses (504)
        self._latencies: deque = deque(maxlen=latency_window)

    def observe_request(self, seconds: float, failed: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if failed:
                self.failures += 1
            else:
                self._latencies.append(seconds)

    def observe_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def observe_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            latencies = sorted(self._latencies)
            return {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "requests": self.requests,
                "failures": self.failures,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "latency_ms": {
                    "count": len(latencies),
                    "p50": round(_quantile(latencies, 0.50) * 1e3, 3),
                    "p90": round(_quantile(latencies, 0.90) * 1e3, 3),
                    "p99": round(_quantile(latencies, 0.99) * 1e3, 3),
                    "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
                },
            }


class ReproService:
    """The resident evaluator: one warm context, one coalescer, counters.

    Parameters
    ----------
    backend:
        Runtime backend of the resident context (``"auto"`` resolves to the
        array kernels when NumPy is present; the loop backend still serves,
        through the per-scenario reference path).
    cache / cache_path:
        The resident construction cache, or a pickle path to warm-start it
        from (and snapshot it back to).  With neither, a fresh in-memory
        cache lives for the service lifetime.
    window / max_batch:
        Coalescing knobs, forwarded to :class:`RequestCoalescer`.
    snapshot_interval:
        Minimum seconds between periodic cache snapshots (``cache_path``
        only); ``0`` snapshots after every batch.
    max_pending:
        Admission-queue bound: requests arriving while this many are already
        outstanding are shed with :class:`ServiceOverloadedError` (HTTP 503
        + ``Retry-After``) instead of growing an unbounded backlog.
    request_timeout:
        Per-request deadline in seconds for :meth:`handle`; ``None`` waits
        forever (the pre-chaos behaviour).
    chaos:
        A chaos spec string or :class:`~repro.runtime.chaos.ChaosPlan` for
        the resident context — arms the ``service.handle`` and
        ``store.write`` injection points.
    watchdog_interval:
        Seconds between liveness checks of the coalescer thread; a dead
        coalescer (crashed collector task or loop thread) is replaced and
        counted in ``coalescer_restarts``.  ``0`` disables the watchdog.
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        cache: Optional[ConstructionCache] = None,
        cache_path: Optional[str] = None,
        window: float = 0.005,
        max_batch: int = 256,
        snapshot_interval: float = 30.0,
        max_pending: int = 1024,
        request_timeout: Optional[float] = 30.0,
        chaos=None,
        watchdog_interval: float = 0.5,
    ):
        if cache is None:
            cache = (
                ConstructionCache.load(cache_path)
                if cache_path is not None
                else ConstructionCache()
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.context = ExecutionContext(
            backend=backend, cache=cache, batch=True, chaos=chaos
        )
        self.cache_path = cache_path
        self.snapshot_interval = snapshot_interval
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self._last_snapshot = time.monotonic()
        self._snapshotted_entries = len(cache)
        self.stats = ServiceStats()
        self._coalescer_kwargs = {"window": window, "max_batch": max_batch}
        self._coalescer_lock = threading.Lock()
        self.coalescer = RequestCoalescer(
            self._evaluate_batch, **self._coalescer_kwargs
        )
        self.coalescer_restarts = 0
        self._closed = False
        self._draining = False
        self._chaos_baseline = chaos_counters()
        self._watchdog: Optional[threading.Thread] = None
        if watchdog_interval > 0:
            self._watchdog_interval = watchdog_interval
            self._watchdog = threading.Thread(
                target=self._watch_coalescer,
                name="repro-service-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` ran — new work is being refused."""
        return self._draining

    def submit(self, request: ServiceRequest):
        """Enqueue a request; the future resolves to ``(record, batch_size)``.

        Front door of the recovery plane: refuses work while draining,
        sheds when the admission queue is full, and carries the
        ``service.handle`` chaos injection point (a ``request_error`` fault
        fails the request exactly as an evaluator bug would; ``slow_io``
        stretches it).
        """
        if self._draining or self._closed:
            raise ServiceOverloadedError(
                "the service is draining and accepts no new requests",
                retry_after=1.0,
            )
        coalescer = self.coalescer
        if coalescer.pending_count() >= self.max_pending:
            self.stats.observe_shed()
            raise ServiceOverloadedError(
                f"admission queue is full ({self.max_pending} requests pending)",
                retry_after=0.5,
            )
        # The plan lives on the *resident* context (handler threads never
        # enter use_context), so fire it directly rather than via inject().
        plan = self.context.chaos
        if plan is not None:
            raise_fault(
                plan.fire("service.handle", kinds=("request_error", "slow_io")),
                "service.handle",
            )
        started = time.perf_counter()
        future = coalescer.submit(request)

        def _observe(done) -> None:
            self.stats.observe_request(
                time.perf_counter() - started, failed=done.exception() is not None
            )

        future.add_done_callback(_observe)
        return future

    def handle(
        self, request: ServiceRequest, timeout: Optional[float] = None
    ) -> Tuple[SurveyRecord, int]:
        """Blocking :meth:`submit` with a per-request deadline.

        ``timeout`` overrides the service-wide ``request_timeout``; a miss
        raises :class:`ServiceTimeoutError` (HTTP 504) and is counted in
        the ``timeouts`` stat.  The batch itself keeps evaluating — the
        deadline bounds the *caller's* wait, it cannot interrupt the
        evaluator mid-kernel.
        """
        deadline = timeout if timeout is not None else self.request_timeout
        future = self.submit(request)
        try:
            return future.result(timeout=deadline)
        except FutureTimeoutError:
            self.stats.observe_timeout()
            raise ServiceTimeoutError(
                f"request missed its {deadline:g}s deadline"
            ) from None

    # ------------------------------------------------------------------ #
    # Watchdog
    # ------------------------------------------------------------------ #
    def _watch_coalescer(self) -> None:
        """Replace a dead coalescer (crashed loop/collector) with a fresh one."""
        while not self._closed:
            time.sleep(self._watchdog_interval)
            if self._closed or self._draining:
                continue
            suspect = self.coalescer
            if suspect.is_alive():
                continue
            with self._coalescer_lock:
                if self._closed or self.coalescer is not suspect:
                    continue
                self.coalescer = RequestCoalescer(
                    self._evaluate_batch, **self._coalescer_kwargs
                )
                self.coalescer_restarts += 1
            # Fail whatever the dead coalescer stranded; callers see a
            # CoalescerClosed error and the client SDK retries against the
            # replacement.
            suspect.close(timeout=1.0)

    def _evaluate_batch(
        self, requests: Sequence[ServiceRequest]
    ) -> List[Tuple[SurveyRecord, int]]:
        """Answer one coalesced batch through the batched survey evaluator.

        Requests become scenarios and run as one shard (grouped by signature
        and stacked inside :func:`evaluate_shard`); the congestion flag is
        an evaluation *option*, not part of the stacking signature, so the
        batch splits into at most two shard passes.  Runs on the coalescer's
        single evaluation thread — the only thread that touches the resident
        cache — under the resident context.
        """
        records: List[Optional[SurveyRecord]] = [None] * len(requests)
        for congestion in (False, True):
            positions = [
                index
                for index, request in enumerate(requests)
                if request.congestion is congestion
            ]
            if not positions:
                continue
            scenarios = [requests[index].scenario() for index in positions]
            options = SurveyOptions(
                workers=1, shard_size=len(scenarios), with_congestion=congestion
            )
            with use_context(self.context):
                shard_records = evaluate_shard(scenarios, options)
            for index, record in zip(positions, shard_records):
                records[index] = record
        # Snapshot under the resident context too, so a chaos plan's
        # store.write faults exercise the snapshot path.
        with use_context(self.context):
            self._maybe_snapshot()
        return [(record, len(requests)) for record in records]

    # ------------------------------------------------------------------ #
    # Cache snapshots
    # ------------------------------------------------------------------ #
    def _maybe_snapshot(self, force: bool = False) -> bool:
        """Atomically snapshot the resident cache when due; True if written.

        Called on the evaluation thread after each batch (and from
        :meth:`close`), so saves never race evaluation.  Skips when nothing
        new was memoized since the last snapshot.
        """
        cache = self.context.cache
        if self.cache_path is None or cache is None:
            return False
        if not force:
            if time.monotonic() - self._last_snapshot < self.snapshot_interval:
                return False
        if len(cache) == self._snapshotted_entries:
            return False
        cache.save(self.cache_path)
        self._last_snapshot = time.monotonic()
        self._snapshotted_entries = len(cache)
        return True

    # ------------------------------------------------------------------ #
    # Observability and lifecycle
    # ------------------------------------------------------------------ #
    def stats_snapshot(self) -> Dict[str, object]:
        """The ``GET /stats`` document."""
        document = self.stats.snapshot()
        document["coalescer"] = self.coalescer.batch_stats()
        document["backend"] = self.context.resolved_backend()
        cache = self.context.cache
        document["cache"] = {
            "constructions": cache.construction_count if cache is not None else 0,
            "entries": len(cache) if cache is not None else 0,
            "hits": cache.hits if cache is not None else 0,
            "misses": cache.misses if cache is not None else 0,
            "path": self.cache_path,
        }
        chaos_faults = {
            label: count - self._chaos_baseline.get(label, 0)
            for label, count in chaos_counters().items()
            if count - self._chaos_baseline.get(label, 0)
        }
        document["recovery"] = {
            "shed": self.stats.shed,
            "timeouts": self.stats.timeouts,
            "coalescer_restarts": self.coalescer_restarts,
            "pending": self.coalescer.pending_count(),
            "max_pending": self.max_pending,
            "draining": self._draining,
            "chaos": self.context.chaos.token if self.context.chaos else None,
            "chaos_faults": chaos_faults,
        }
        return document

    def begin_drain(self) -> None:
        """Refuse new requests (503 + ``Retry-After``); in-flight ones finish.

        First half of the graceful-shutdown handshake: the SIGTERM handler
        calls this, lets the HTTP server stop accepting, then calls
        :meth:`close` — which waits for the in-flight batch and snapshots
        the cache.
        """
        self._draining = True

    def close(self) -> None:
        """Drain, stop the coalescer and take a final cache snapshot."""
        if self._closed:
            return
        self._draining = True
        self._closed = True
        with self._coalescer_lock:
            coalescer = self.coalescer
        coalescer.close()
        self._maybe_snapshot(force=True)

    def __enter__(self) -> "ReproService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ReproService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ReproService):
        super().__init__(address, _RequestHandler)
        self.service = service


class _RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # The daemon logs through /stats, not per-request stderr lines.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/health":
            if self.server.service.draining:
                self._send_json(
                    503,
                    {"ok": False, "status": "draining"},
                    headers={"Retry-After": "1"},
                )
            else:
                self._send_json(200, {"ok": True, "status": "serving"})
        elif self.path == "/stats":
            self._send_json(
                200, {"ok": True, "stats": self.server.service.stats_snapshot()}
            )
        else:
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path not in ("/embed", "/simulate", "/invoke"):
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if self.path != "/invoke" and isinstance(payload, dict):
                payload.setdefault("op", self.path[1:])
            request = ServiceRequest.from_dict(payload)
        except (ProtocolError, ValueError) as error:
            self._send_json(400, {"ok": False, "error": str(error)})
            return
        try:
            record, batch_size = self.server.service.handle(request)
        except ServiceOverloadedError as error:
            self._send_json(
                503,
                {"ok": False, "error": str(error)},
                headers={"Retry-After": f"{error.retry_after:g}"},
            )
            return
        except ServiceTimeoutError as error:
            self._send_json(504, {"ok": False, "error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 - surface, don't kill the thread
            self._send_json(
                500, {"ok": False, "error": f"{type(error).__name__}: {error}"}
            )
            return
        self._send_json(
            200,
            {
                "ok": True,
                "record": record.as_dict(),
                "meta": {"batch_size": batch_size, "coalesced": batch_size > 1},
            },
        )


def serve(
    service: ReproService, host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> ServiceHTTPServer:
    """Bind the HTTP front end; the caller drives ``serve_forever()``.

    ``port=0`` binds an ephemeral port (tests and benchmarks); the bound
    address is ``server.server_address``.
    """
    return ServiceHTTPServer((host, port), service)
