"""Wire format of the embedding service.

One request names one query — embed a guest in a host and measure the costs,
or additionally place a traffic pattern and simulate a communication phase —
as plain strings and flags, so that a request round-trips through JSON, a
command line or a test without adapters:

.. code-block:: json

    {"op": "embed",    "guest": "torus:4,6", "host": "mesh:2,2,2,3"}
    {"op": "simulate", "guest": "torus:8,8", "host": "mesh:4,16",
     "strategy": "paper", "traffic": "transpose"}

A validated :class:`ServiceRequest` converts losslessly to the survey
layer's :class:`~repro.survey.scenarios.Scenario` — the service answers
requests with exactly the records a survey would produce for the same
scenario, which is what makes the coalesced path's byte-identity contract
testable against :func:`repro.survey.runner.evaluate_scenario`.

Grouping happens on :attr:`ServiceRequest.signature` — the
``(guest kind+shape, host kind+shape)`` pair, the same key the batched shard
evaluator (:mod:`repro.survey.batch`) stacks by.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

from ..survey.scenarios import Scenario
from ..types import GraphKind

__all__ = [
    "OPS",
    "ProtocolError",
    "ServiceRequest",
    "parse_graph_spec",
]

#: The operations the service answers.  ``embed`` measures the paper
#: dispatcher's construction; ``simulate`` builds the named strategy, places
#: the named traffic pattern and runs the store-and-forward phase simulation.
OPS = ("embed", "simulate")


class ProtocolError(ValueError):
    """A malformed request: unknown operation, bad graph spec, stray field."""


def parse_graph_spec(spec: str) -> Tuple[str, Tuple[int, ...]]:
    """Parse ``kind:shape`` strings such as ``torus:4,6`` into (kind, shape).

    Accepts the same conveniences as the CLI: ``ring:<n>`` (1-D torus),
    ``line:<n>`` (1-D mesh) and ``hypercube:<d>`` (shape ``(2, ..., 2)``),
    and ``x`` as an extent separator (``torus:8x8`` == ``torus:8,8``).
    Raises :class:`ProtocolError` on anything unparseable.
    """
    try:
        kind_text, shape_text = spec.split(":", 1)
        kind_text = kind_text.strip().lower()
        shape_text = shape_text.lower().replace("x", ",")
        shape = tuple(int(part) for part in shape_text.split(",") if part.strip())
        if not shape or any(length < 1 for length in shape):
            raise ValueError(f"shape {shape} must be non-empty positive extents")
        if kind_text == "ring":
            (size,) = shape
            return GraphKind.TORUS.value, (size,)
        if kind_text == "line":
            (size,) = shape
            return GraphKind.MESH.value, (size,)
        if kind_text == "hypercube":
            (dimension,) = shape
            return GraphKind.TORUS.value, (2,) * dimension
        return GraphKind(kind_text).value, shape
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(
            f"could not parse graph spec {spec!r}: expected e.g. 'torus:4,6' ({error})"
        ) from error


#: A graph identity — ``(kind value, shape)`` — and the request grouping key.
GraphSpec = Tuple[str, Tuple[int, ...]]
Signature = Tuple[GraphSpec, GraphSpec]


@dataclass(frozen=True)
class ServiceRequest:
    """One validated query of the service.

    Construction validates eagerly — the HTTP layer rejects malformed
    requests with a 400 before they ever reach the coalescer, and a request
    object that exists is guaranteed to convert to a scenario.
    """

    op: str
    guest: str
    host: str
    strategy: str = "paper"
    traffic: str = "neighbor-exchange"
    congestion: bool = False

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r}; expected one of {OPS}")
        if not isinstance(self.congestion, bool):
            raise ProtocolError(
                f"congestion must be a boolean, got {self.congestion!r}"
            )
        if self.op == "simulate" and not self.traffic:
            raise ProtocolError("simulate requests need a traffic pattern")
        # Eager parse: surfaces bad specs at request-construction time.
        parse_graph_spec(self.guest)
        parse_graph_spec(self.host)

    @property
    def signature(self) -> Signature:
        """The ``(guest kind+shape, host kind+shape)`` coalescing key."""
        return (parse_graph_spec(self.guest), parse_graph_spec(self.host))

    def scenario(self) -> Scenario:
        """The equivalent survey scenario (the unit the batch layer stacks)."""
        (guest_kind, guest_shape), (host_kind, host_shape) = self.signature
        if self.op == "embed":
            return Scenario(guest_kind, guest_shape, host_kind, host_shape)
        return Scenario(
            guest_kind,
            guest_shape,
            host_kind,
            host_shape,
            strategy=self.strategy,
            traffic=self.traffic,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "guest": self.guest,
            "host": self.host,
            "strategy": self.strategy,
            "traffic": self.traffic,
            "congestion": self.congestion,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ServiceRequest":
        """Build a request from a decoded JSON object, rejecting stray keys."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        known = {field.name for field in fields(cls)}
        stray = sorted(set(payload) - known)
        if stray:
            raise ProtocolError(
                f"unknown request field(s) {stray}; expected {sorted(known)}"
            )
        missing = sorted(
            name for name in ("op", "guest", "host") if name not in payload
        )
        if missing:
            raise ProtocolError(f"missing required field(s) {missing}")
        return cls(**payload)  # type: ignore[arg-type]
