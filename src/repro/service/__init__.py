"""Embedding-as-a-service — the serving tier of the reproduction.

A long-running daemon (``repro serve``) keeps one warm
:class:`~repro.runtime.cache.ConstructionCache` and the cached graph arrays
resident and answers embed/measure/simulate queries over HTTP.  The key
mechanism is the **async request coalescer**: concurrent requests are
collected over a short window, grouped by ``(guest kind+shape, host
kind+shape)`` signature, stacked into the batched survey layer's
``(batch, size)`` matrices and answered by one fused kernel pass — with
responses byte-identical to the per-request reference path.

``protocol``
    The JSON wire format: :class:`~repro.service.protocol.ServiceRequest`
    and its lossless conversion to survey scenarios.
``coalescer``
    :class:`~repro.service.coalescer.RequestCoalescer` — the asyncio
    window/batch collector with a serialized evaluation thread.
``server``
    :class:`~repro.service.server.ReproService` (the resident evaluator,
    periodic atomic cache snapshots, ``/stats`` counters) and the stdlib
    ThreadingHTTPServer front end.
``client``
    :class:`~repro.service.client.ServiceClient`, the thin SDK behind
    ``repro invoke``.
"""

from .client import DEFAULT_RETRY, ServiceClient, ServiceError
from .coalescer import CoalescerClosed, RequestCoalescer
from .protocol import OPS, ProtocolError, ServiceRequest, parse_graph_spec
from .server import (
    DEFAULT_PORT,
    ReproService,
    ServiceHTTPServer,
    ServiceOverloadedError,
    ServiceTimeoutError,
    serve,
)

__all__ = [
    "OPS",
    "DEFAULT_PORT",
    "DEFAULT_RETRY",
    "CoalescerClosed",
    "ProtocolError",
    "RequestCoalescer",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloadedError",
    "ServiceRequest",
    "ServiceTimeoutError",
    "parse_graph_spec",
    "serve",
]
