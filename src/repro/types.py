"""Shared value types used across the library.

The central notions are the *shape* of a torus or mesh (the tuple of
dimension lengths ``(l_1, ..., l_d)`` from Definitions 2 and 3 of the paper)
and the *kind* of graph (torus or mesh).  Nodes of a ``d``-dimensional torus
or mesh are ``d``-tuples of coordinates; one-dimensional graphs (lines and
rings) use plain integers in the paper's notation, but the library uniformly
represents nodes as tuples and provides helpers for the 1-D convenience form.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from .exceptions import InvalidShapeError

__all__ = [
    "GraphKind",
    "Shape",
    "Node",
    "as_shape",
    "shape_size",
    "is_square_shape",
    "is_hypercube_shape",
    "ShapedGraphSpec",
]

#: A node of a d-dimensional torus or mesh: a tuple of d coordinates.
Node = Tuple[int, ...]

#: A shape: the tuple of dimension lengths (l_1, ..., l_d).
Shape = Tuple[int, ...]


class GraphKind(str, enum.Enum):
    """Whether a graph is a torus or a mesh (the paper's *type* of a graph).

    A hypercube is simultaneously a torus and a mesh (every dimension has
    length 2, so wrap-around edges coincide with the mesh edges); the library
    represents hypercubes explicitly with whichever kind the caller selects
    and exposes :func:`is_hypercube_shape` to detect the coincidence.
    """

    TORUS = "torus"
    MESH = "mesh"

    @property
    def is_torus(self) -> bool:
        return self is GraphKind.TORUS

    @property
    def is_mesh(self) -> bool:
        return self is GraphKind.MESH

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def as_shape(lengths: Iterable[int]) -> Shape:
    """Normalize and validate a shape.

    Parameters
    ----------
    lengths:
        The dimension lengths ``(l_1, ..., l_d)``.  Each must be an integer
        greater than 1 (Definitions 2 and 3).

    Returns
    -------
    tuple of int
        The validated shape as a tuple.

    Raises
    ------
    InvalidShapeError
        If the shape is empty or any length is not an integer > 1.
    """
    shape = tuple(int(l) for l in lengths)
    if len(shape) == 0:
        raise InvalidShapeError("a shape must have at least one dimension")
    for original, value in zip(lengths, shape):
        if isinstance(original, bool) or original != value:
            raise InvalidShapeError(f"dimension length {original!r} is not an integer")
    for value in shape:
        if value < 2:
            raise InvalidShapeError(
                f"dimension length {value} is invalid: every length must be > 1"
            )
    return shape


def shape_size(shape: Sequence[int]) -> int:
    """Number of nodes of a torus/mesh with the given shape (``prod l_i``)."""
    return math.prod(shape)


def is_square_shape(shape: Sequence[int]) -> bool:
    """True when every dimension has the same length (the paper's *square*)."""
    return len(set(shape)) == 1


def is_hypercube_shape(shape: Sequence[int]) -> bool:
    """True when every dimension has length 2 (Definition 4)."""
    return all(l == 2 for l in shape)


@dataclass(frozen=True)
class ShapedGraphSpec:
    """A lightweight (kind, shape) pair used when only the metadata matters.

    Several parts of the library — strategy selection, dilation-cost
    prediction, experiment sweeps — only need to know a graph's kind and
    shape, not its materialized node set.  This spec captures exactly that.
    """

    kind: GraphKind
    shape: Shape

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", as_shape(self.shape))
        object.__setattr__(self, "kind", GraphKind(self.kind))

    @property
    def dimension(self) -> int:
        """Number of dimensions ``d``."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Number of nodes."""
        return shape_size(self.shape)

    @property
    def is_square(self) -> bool:
        return is_square_shape(self.shape)

    @property
    def is_hypercube(self) -> bool:
        return is_hypercube_shape(self.shape)

    @property
    def is_torus(self) -> bool:
        return self.kind.is_torus

    @property
    def is_mesh(self) -> bool:
        return self.kind.is_mesh

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}{self.shape}"
