"""Generalized embeddings for lowering dimension (Section 4.2, Theorems 39 and 43).

Two constructions, matching the two reduction conditions:

**Simple reduction** (Section 4.2.1): with reduction factor
``V = (V_1, ..., V_c)`` the guest coordinates are permuted into the group
order ``V̄`` and every group is collapsed into a single host coordinate by
mixed-radix evaluation (``U_V``, Definition 38).  Dilation
``max_i m_i / l_{v_i}`` where ``l_{v_i}`` is the first (largest) component of
``V_i``; doubled (and only an upper bound) for a torus guest in a mesh host,
which first applies the same-shape ``T`` relabelling (Theorem 39).

**General reduction** (Section 4.2.2): the guest is viewed as an ``L'``-graph
of supernodes, each an ``L''``-graph; the host as an ``L'``-graph of
supernodes, each an ``S̄``-mesh.  Supernodes map by identity (or by ``T`` in
the torus -> mesh case) and supernode contents by the increasing-dimension
functions ``F_S`` / ``G_S``.  The resulting functions ``F'_S``, ``G'_S``,
``G''_S`` (Definition 42) give dilation ``max(s̄)``, or at most ``2·max(s̄)``
for a torus guest in a mesh host (Theorem 43).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..exceptions import NoReductionError, ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import digits_to_indices, indices_to_digits, require_numpy
from ..numbering.batch import f_digits, g_digits, group_collapse, t_columns
from ..numbering.radix import RadixBase
from ..runtime.context import accepts_deprecated_method
from ..types import Node
from ..utils.listops import apply_permutation, find_permutation
from .basic import t_value
from .embedding import Embedding, use_array_path
from .expansion import ExpansionFactor
from .increasing import F_value, G_value
from .reduction import (
    GeneralReductionFactor,
    SimpleReductionFactor,
    find_general_reduction,
    find_simple_reduction,
)
from .same_shape import t_vector_value

__all__ = [
    "U_value",
    "F_prime_value",
    "G_prime_value",
    "G_double_prime_value",
    "embed_lowering_simple",
    "embed_lowering_general",
    "embed_lowering",
]


# --------------------------------------------------------------------------- #
# Simple reduction: U_V (Definition 38) and the Theorem 39 embedding
# --------------------------------------------------------------------------- #
def U_value(factor: SimpleReductionFactor, node: Sequence[int]) -> Node:
    """``U_V`` — collapse consecutive coordinate groups by mixed-radix evaluation.

    ``node`` must be a node of the ``V̄``-graph (coordinates already permuted
    into group order); the result has one coordinate per group, namely
    ``u_{V_k}^{-1}`` of that group's sub-tuple.
    """
    node = tuple(node)
    expected = sum(len(group) for group in factor.groups)
    if len(node) != expected:
        raise ValueError(
            f"node has {len(node)} coordinates but the reduction factor expects {expected}"
        )
    result = []
    position = 0
    for group in factor.groups:
        block = node[position : position + len(group)]
        result.append(RadixBase(group).from_digits(block))
        position += len(group)
    return tuple(result)


@accepts_deprecated_method
def embed_lowering_simple(
    guest: CartesianGraph,
    host: CartesianGraph,
    factor: Optional[SimpleReductionFactor] = None,
) -> Embedding:
    """Theorem 39: embed under the simple-reduction condition.

    Parameters
    ----------
    factor:
        A specific reduction factor (e.g. with a deliberately bad component
        ordering, for the ablation benchmark).  When omitted, a factor is
        searched for and sorted non-increasingly, which is the ordering the
        theorem assumes and the one minimizing the dilation.

    The ambient context selects the backend: the array backend
    permutes/relabels/collapses all node rows at once with the batch
    kernels, the loop backend is the retained per-node reference.
    """
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    if guest.dimension <= host.dimension:
        raise NoReductionError(
            "lowering-dimension embedding requires dim(guest) > dim(host)"
        )
    if factor is None:
        factor = find_simple_reduction(guest.shape, host.shape)
        if factor is None:
            raise NoReductionError(
                f"shape {host.shape} is not a simple reduction of shape {guest.shape}"
            )
    else:
        if not factor.reduces(guest.shape, host.shape):
            raise NoReductionError(
                f"the supplied factor {factor.groups} does not reduce {guest.shape} "
                f"into {host.shape}"
            )

    flattened = factor.flattened
    tau = find_permutation(guest.shape, flattened)
    if tau is None:  # pragma: no cover - factor validity guarantees this
        raise NoReductionError("internal error: factor is not a rearrangement of the guest shape")

    base_dilation = factor.dilation()
    torus_into_mesh = guest.is_torus and host.is_mesh and not guest.is_hypercube

    if torus_into_mesh:
        def mapping(node: Node) -> Node:
            rearranged = apply_permutation(tau, node)
            relabelled = t_vector_value(flattened, rearranged)
            return U_value(factor, relabelled)

        predicted = 2 * base_dilation
        strategy = "lowering:U_V∘T∘τ"
        notes = {
            "reduction_factor": factor.groups,
            "permutation": tau,
            "dilation_is_upper_bound": True,
        }
    else:
        def mapping(node: Node) -> Node:
            return U_value(factor, apply_permutation(tau, node))

        predicted = base_dilation
        strategy = "lowering:U_V∘τ"
        notes = {"reduction_factor": factor.groups, "permutation": tau}

    if use_array_path():
        np = require_numpy()
        digits = indices_to_digits(np.arange(guest.size, dtype=np.int64), guest.shape)
        rearranged = digits[:, list(tau)]
        if torus_into_mesh:
            rearranged = t_columns(flattened, rearranged)
        return Embedding.from_index_array(
            guest,
            host,
            digits_to_indices(group_collapse(rearranged, factor.groups), host.shape),
            strategy=strategy,
            predicted_dilation=predicted,
            notes=notes,
        )

    return Embedding.from_callable(
        guest,
        host,
        mapping,
        strategy=strategy,
        predicted_dilation=predicted,
        notes=notes,
    )


# --------------------------------------------------------------------------- #
# General reduction: F'_S, G'_S, G''_S (Definition 42) and the Theorem 43 embedding
# --------------------------------------------------------------------------- #
def _split(factor: GeneralReductionFactor, node: Sequence[int]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    node = tuple(node)
    if len(node) != factor.d:
        raise ValueError(
            f"node has {len(node)} coordinates but the reduction expects {factor.d}"
        )
    return node[: factor.c], node[factor.c :]


def F_prime_value(factor: GeneralReductionFactor, node: Sequence[int]) -> Node:
    """``F'_S`` of Definition 42 (mesh guest)."""
    prefix, suffix = _split(factor, node)
    s = factor.s_flat
    offset = F_value(ExpansionFactor(factor.s_groups), suffix)
    multiplied = tuple(s[j] * prefix[j] + offset[j] for j in range(len(s)))
    return multiplied + prefix[len(s):]


def G_prime_value(factor: GeneralReductionFactor, node: Sequence[int]) -> Node:
    """``G'_S`` of Definition 42 (torus guest, torus host)."""
    prefix, suffix = _split(factor, node)
    s = factor.s_flat
    offset = G_value(ExpansionFactor(factor.s_groups), suffix)
    multiplied = tuple(s[j] * prefix[j] + offset[j] for j in range(len(s)))
    return multiplied + prefix[len(s):]


def G_double_prime_value(factor: GeneralReductionFactor, node: Sequence[int]) -> Node:
    """``G''_S`` of Definition 42 (torus guest, mesh host).

    The supernode coordinates go through the ``t`` relabelling (Lemma 36's
    same-shape trick applied at the supernode level) before being scaled.
    """
    prefix, suffix = _split(factor, node)
    s = factor.s_flat
    lengths = factor.multiplicant
    offset = G_value(ExpansionFactor(factor.s_groups), suffix)
    multiplied = tuple(
        s[j] * t_value(lengths[j], prefix[j]) + offset[j] for j in range(len(s))
    )
    tail = tuple(t_value(lengths[j], prefix[j]) for j in range(len(s), factor.c))
    return multiplied + tail


@accepts_deprecated_method
def embed_lowering_general(
    guest: CartesianGraph,
    host: CartesianGraph,
    factor: Optional[GeneralReductionFactor] = None,
) -> Embedding:
    """Theorem 43: embed under the general-reduction condition (c < d < 2c).

    The ambient context selects the batch-kernel array backend or the
    per-node loop reference, as for :func:`embed_lowering_simple`.
    """
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    d, c = guest.dimension, host.dimension
    if not (c < d < 2 * c):
        raise NoReductionError(
            f"general reduction requires c < d < 2c, got d={d}, c={c}"
        )
    if factor is None:
        factor = find_general_reduction(guest.shape, host.shape)
        if factor is None:
            raise NoReductionError(
                f"shape {host.shape} is not a general reduction of shape {guest.shape}"
            )
    else:
        if not factor.reduces(guest.shape, host.shape):
            raise NoReductionError(
                "the supplied general-reduction decomposition does not match the shapes"
            )

    alpha = find_permutation(guest.shape, factor.rearranged_source)
    beta = find_permutation(factor.host_arrangement, host.shape)
    if alpha is None or beta is None:  # pragma: no cover - factor validity guarantees this
        raise NoReductionError("internal error: invalid general-reduction decomposition")

    guest_is_effectively_mesh = guest.is_mesh or guest.is_hypercube
    relabel_supernodes = False  # G''_S: t applied to the supernode coordinates
    if guest_is_effectively_mesh:
        value_fn: Callable[[GeneralReductionFactor, Sequence[int]], Node] = F_prime_value
        offset_batch_fn = f_digits
        strategy = "lowering:β∘F'_S∘α"
        predicted = factor.dilation()
        upper_bound = False
    elif host.is_torus:
        value_fn = G_prime_value
        offset_batch_fn = g_digits
        strategy = "lowering:β∘G'_S∘α"
        predicted = factor.dilation()
        upper_bound = False
    else:
        value_fn = G_double_prime_value
        offset_batch_fn = g_digits
        relabel_supernodes = True
        strategy = "lowering:β∘G''_S∘α"
        predicted = 2 * factor.dilation()
        upper_bound = True

    notes = {
        "multiplicant": factor.multiplicant,
        "multiplier": factor.multiplier,
        "s_groups": factor.s_groups,
        "alpha": alpha,
        "beta": beta,
    }
    if upper_bound:
        notes["dilation_is_upper_bound"] = True

    if use_array_path():
        np = require_numpy()
        digits = indices_to_digits(np.arange(guest.size, dtype=np.int64), guest.shape)
        rearranged = digits[:, list(alpha)]
        prefix = rearranged[:, : factor.c]  # supernode coordinates L'
        suffix = rearranged[:, factor.c :]  # supernode contents L''
        offset = np.concatenate(
            [
                offset_batch_fn(group, suffix[:, i])
                for i, group in enumerate(factor.s_groups)
            ],
            axis=1,
        )
        if relabel_supernodes:
            prefix = t_columns(factor.multiplicant, prefix)
        b = factor.b
        s = np.asarray(factor.s_flat, dtype=np.int64)
        arranged = np.concatenate([s * prefix[:, :b] + offset, prefix[:, b:]], axis=1)
        return Embedding.from_index_array(
            guest,
            host,
            digits_to_indices(arranged[:, list(beta)], host.shape),
            strategy=strategy,
            predicted_dilation=predicted,
            notes=notes,
        )

    return Embedding.from_callable(
        guest,
        host,
        lambda node: apply_permutation(beta, value_fn(factor, apply_permutation(alpha, node))),
        strategy=strategy,
        predicted_dilation=predicted,
        notes=notes,
    )


@accepts_deprecated_method
def embed_lowering(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Embed with whichever reduction condition the shapes satisfy.

    Simple reduction is preferred when both apply (it is never worse here and
    is the construction Theorem 48 relies on); general reduction is used
    otherwise.  Raises :class:`NoReductionError` when neither applies — for
    square graphs :func:`repro.core.square.embed_square` handles the
    remaining cases via chains of intermediate graphs.
    """
    simple = find_simple_reduction(guest.shape, host.shape)
    if simple is not None:
        return embed_lowering_simple(guest, host, simple)
    general = find_general_reduction(guest.shape, host.shape)
    if general is not None:
        return embed_lowering_general(guest, host, general)
    raise NoReductionError(
        f"shape {host.shape} is neither a simple nor a general reduction of {guest.shape}"
    )
