"""Expansion of shapes (Definition 30) and the search for expansion factors.

Let ``L = (l_1, ..., l_d)`` and ``M = (m_1, ..., m_c)`` with ``d < c``.  ``M``
is an *expansion* of ``L`` when there exist lists ``V_1, ..., V_d`` such that

* ``Π V_i = l_i`` for every ``i``; and
* ``M`` is a permutation of the concatenation ``V = V_1 ∘ V_2 ∘ ... ∘ V_d``.

``(V_1, ..., V_d)`` is an *expansion factor* of ``L`` into ``M``.  Expansion
factors are generally not unique; Theorem 32(iii) shows the choice matters
(an even-size torus can be embedded in a mesh with dilation 1 only when a
factor exists in which every ``V_i`` has at least two components and can be
reordered to start with an even number).

The search is a backtracking assignment of the multiset ``M`` to the ``d``
groups, pruning on divisibility.  Shapes in practice have few dimensions and
small factor counts, so exhaustive backtracking is entirely adequate; the
benchmark harness confirms factor search is a negligible fraction of
embedding-construction time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import NoExpansionError
from ..utils.listops import concat, is_permutation_of, product

__all__ = [
    "ExpansionFactor",
    "is_expansion",
    "find_expansion_factor",
    "iter_expansion_factors",
    "find_unit_dilation_torus_factor",
]


@dataclass(frozen=True)
class ExpansionFactor:
    """An expansion factor ``V = (V_1, ..., V_d)`` of ``L`` into ``M``."""

    lists: Tuple[Tuple[int, ...], ...]

    @property
    def flattened(self) -> Tuple[int, ...]:
        """The concatenation ``V_1 ∘ V_2 ∘ ... ∘ V_d``."""
        return concat(*self.lists)

    @property
    def source_shape(self) -> Tuple[int, ...]:
        """The shape ``L`` recovered as the per-list products."""
        return tuple(product(v) for v in self.lists)

    def expands(self, source: Sequence[int], target: Sequence[int]) -> bool:
        """True when this factor witnesses ``target`` being an expansion of ``source``."""
        return (
            self.source_shape == tuple(source)
            and is_permutation_of(self.flattened, tuple(target))
        )

    def all_lists_have_length_at_least(self, k: int) -> bool:
        return all(len(v) >= k for v in self.lists)

    def all_lists_contain_even(self) -> bool:
        return all(any(part % 2 == 0 for part in v) for v in self.lists)

    def with_even_first(self) -> "ExpansionFactor":
        """Reorder each list so an even component (if any) comes first.

        Reordering within a list keeps the factor valid (the concatenation is
        still a permutation of ``M``); it is the normalization required by
        Theorem 32(iii) so that every ``h_{V_i}`` has unit cyclic δm-spread.
        """
        reordered: List[Tuple[int, ...]] = []
        for v in self.lists:
            evens = [i for i, part in enumerate(v) if part % 2 == 0]
            if not evens:
                reordered.append(v)
                continue
            first = evens[0]
            reordered.append((v[first],) + v[:first] + v[first + 1 :])
        return ExpansionFactor(tuple(reordered))

    def __iter__(self):
        return iter(self.lists)

    def __len__(self) -> int:
        return len(self.lists)


def _group_assignments(
    remaining: Counter, target_product: int, *, min_parts: int
) -> Iterator[Tuple[Tuple[int, ...], Counter]]:
    """Yield sub-multisets of ``remaining`` whose product is ``target_product``.

    Each yielded pair is ``(chosen_parts_sorted_descending, leftover_counter)``.
    Only one representative per multiset is produced (parts are chosen in
    non-increasing order), which keeps the search free of duplicate work.
    """
    values = sorted(remaining.elements(), reverse=True)

    def recurse(start: int, target: int, chosen: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if target == 1:
            if len(chosen) >= min_parts:
                yield chosen
            # Longer selections would need extra parts equal to 1, which are
            # not allowed (every dimension length exceeds 1).
            return
        previous = None
        for index in range(start, len(values)):
            part = values[index]
            if part == previous:
                continue  # skip duplicate branches
            if target % part == 0:
                yield from recurse(index + 1, target // part, chosen + (part,))
            previous = part

    seen: set[Tuple[int, ...]] = set()
    for chosen in recurse(0, target_product, ()):
        if chosen in seen:
            continue
        seen.add(chosen)
        leftover = remaining.copy()
        for part in chosen:
            leftover[part] -= 1
            if leftover[part] == 0:
                del leftover[part]
        yield chosen, leftover


def iter_expansion_factors(
    source: Sequence[int],
    target: Sequence[int],
    *,
    min_parts_per_list: int = 1,
    limit: Optional[int] = None,
) -> Iterator[ExpansionFactor]:
    """Enumerate expansion factors of ``source`` into ``target``.

    Parameters
    ----------
    min_parts_per_list:
        Require every ``V_i`` to have at least this many components (used
        with 2 when hunting for the unit-dilation torus->mesh factor of
        Theorem 32(iii)).
    limit:
        Stop after yielding this many factors.
    """
    source = tuple(source)
    target = tuple(target)
    if product(source) != product(target):
        return
    if len(source) > len(target):
        return

    count = 0

    def recurse(index: int, remaining: Counter, acc: Tuple[Tuple[int, ...], ...]):
        nonlocal count
        if limit is not None and count >= limit:
            return
        if index == len(source):
            if not remaining:
                count += 1
                yield ExpansionFactor(acc)
            return
        for chosen, leftover in _group_assignments(
            remaining, source[index], min_parts=min_parts_per_list
        ):
            yield from recurse(index + 1, leftover, acc + (chosen,))
            if limit is not None and count >= limit:
                return

    yield from recurse(0, Counter(target), ())


def find_expansion_factor(
    source: Sequence[int],
    target: Sequence[int],
    *,
    min_parts_per_list: int = 1,
) -> Optional[ExpansionFactor]:
    """The first expansion factor found, or ``None`` when none exists."""
    for factor in iter_expansion_factors(
        source, target, min_parts_per_list=min_parts_per_list, limit=1
    ):
        return factor
    return None


def is_expansion(source: Sequence[int], target: Sequence[int]) -> bool:
    """True when ``target`` is an expansion of ``source`` (Definition 30)."""
    if len(tuple(source)) >= len(tuple(target)):
        return False
    return find_expansion_factor(source, target) is not None


def find_unit_dilation_torus_factor(
    source: Sequence[int], target: Sequence[int]
) -> Optional[ExpansionFactor]:
    """A factor enabling the unit-dilation even-torus -> mesh embedding.

    Theorem 32(iii): if the torus ``G`` has even size and a factor exists in
    which every ``V_i`` has at least two components and starts (after
    reordering) with an even number, then ``H_V`` embeds ``G`` in the mesh
    ``H`` with dilation 1.  Such a factor requires every ``l_i`` to be even.
    Returns the normalized (even-first) factor, or ``None``.
    """
    source = tuple(source)
    if any(length % 2 != 0 for length in source):
        return None
    for factor in iter_expansion_factors(source, target, min_parts_per_list=2, limit=64):
        if factor.all_lists_contain_even():
            return factor.with_even_first()
    return None


def require_expansion_factor(
    source: Sequence[int], target: Sequence[int]
) -> ExpansionFactor:
    """Like :func:`find_expansion_factor` but raising when no factor exists."""
    factor = find_expansion_factor(source, target)
    if factor is None:
        raise NoExpansionError(
            f"shape {tuple(target)} is not an expansion of shape {tuple(source)}"
        )
    return factor
