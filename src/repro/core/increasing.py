"""Generalized embeddings for increasing dimension (Section 4.1, Theorem 32).

Given a guest ``G`` of shape ``L`` and a host ``H`` of shape ``M`` where
``M`` is an expansion of ``L`` with factor ``V = (V_1, ..., V_d)``, the paper
embeds ``G`` in ``H`` in two steps ``G -> H' -> H``:

* ``H'`` has shape ``V̄ = V_1 ∘ ... ∘ V_d`` and the same type as ``H``; each
  guest coordinate ``i_k`` is expanded into the sub-tuple ``φ_{V_k}(i_k)``
  where ``φ`` is ``f`` (guest mesh), ``h`` (guest torus, host torus, or the
  unit-dilation even-torus -> mesh case), or ``g`` (guest torus, host mesh,
  general case);
* ``H'`` is embedded in ``H`` by the coordinate permutation ``π`` with
  ``π(V̄) = M``.

Resulting dilation costs (Theorem 32): 1 when the guest is a mesh or both
graphs are toruses; 2 when the guest is a torus and the host is a mesh
(optimal for odd-size toruses); 1 for an even-size torus in a mesh when a
factor exists whose lists all have ≥ 2 components including an even one.

Theorem 33 / Corollary 34: when the host is a hypercube of the same
(power-of-two) size, an expansion factor always exists, so every such mesh or
torus embeds in the hypercube with dilation 1.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..exceptions import NoExpansionError, ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import digits_to_indices, indices_to_digits, require_numpy
from ..numbering.batch import f_digits, g_digits, h_digits
from ..numbering.radix import RadixBase
from ..types import Node
from ..utils.listops import apply_permutation, concat, find_permutation
from ..runtime.context import accepts_deprecated_method
from .basic import f_value, g_value, h_value
from .embedding import Embedding, use_array_path
from .expansion import (
    ExpansionFactor,
    find_expansion_factor,
    find_unit_dilation_torus_factor,
)

__all__ = [
    "F_value",
    "G_value",
    "H_value",
    "predicted_increasing_dilation",
    "embed_increasing",
]


def _component_bases(factor: ExpansionFactor) -> Tuple[RadixBase, ...]:
    return tuple(RadixBase(v) for v in factor.lists)


def F_value(factor: ExpansionFactor, node: Sequence[int]) -> Node:
    """``F_V((i_1, ..., i_d)) = f_{V_1}(i_1) ∘ ... ∘ f_{V_d}(i_d)`` (Definition 31)."""
    bases = _component_bases(factor)
    if len(node) != len(bases):
        raise ValueError("node dimension does not match the expansion factor")
    return concat(*(f_value(base, coord) for base, coord in zip(bases, node)))


def G_value(factor: ExpansionFactor, node: Sequence[int]) -> Node:
    """``G_V((i_1, ..., i_d)) = g_{V_1}(i_1) ∘ ... ∘ g_{V_d}(i_d)`` (Definition 31)."""
    bases = _component_bases(factor)
    if len(node) != len(bases):
        raise ValueError("node dimension does not match the expansion factor")
    return concat(*(g_value(base, coord) for base, coord in zip(bases, node)))


def H_value(factor: ExpansionFactor, node: Sequence[int]) -> Node:
    """``H_V((i_1, ..., i_d)) = h_{V_1}(i_1) ∘ ... ∘ h_{V_d}(i_d)`` (Definition 31)."""
    bases = _component_bases(factor)
    if len(node) != len(bases):
        raise ValueError("node dimension does not match the expansion factor")
    return concat(*(h_value(base, coord) for base, coord in zip(bases, node)))


def predicted_increasing_dilation(
    guest: CartesianGraph, host: CartesianGraph, *, unit_torus_factor: bool = False
) -> int:
    """The dilation promised by Theorem 32 for an expansion-condition pair."""
    if guest.is_mesh or guest.is_hypercube:
        return 1
    if host.is_torus:
        return 1
    if unit_torus_factor:
        return 1
    return 2


@accepts_deprecated_method
def embed_increasing(
    guest: CartesianGraph,
    host: CartesianGraph,
    factor: Optional[ExpansionFactor] = None,
    *,
    prefer_unit_dilation: bool = True,
) -> Embedding:
    """Embed ``guest`` in the higher-dimensional ``host`` under the expansion condition.

    Parameters
    ----------
    factor:
        A specific expansion factor to use.  When omitted one is searched
        for; if ``prefer_unit_dilation`` is set and the guest is an even-size
        torus targeting a mesh, the search first looks for a factor enabling
        the dilation-1 variant of Theorem 32(iii).
    prefer_unit_dilation:
        Controls the factor search as above.  Setting it to ``False``
        reproduces the "plain" dilation-2 construction, which the ablation
        benchmark compares against.

    The ambient context selects the backend: the array backend builds the
    host-index array with the batch kernels of :mod:`repro.numbering.batch`
    (one φ call per guest dimension), the loop backend is the retained
    per-node reference.

    Raises
    ------
    ShapeMismatchError
        If the graphs differ in size.
    NoExpansionError
        If the host shape is not an expansion of the guest shape.
    """
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}; "
            "the paper's embeddings require equal sizes"
        )
    if guest.dimension >= host.dimension:
        raise NoExpansionError(
            "increasing-dimension embedding requires dim(guest) < dim(host)"
        )

    source_shape = guest.shape
    target_shape = host.shape

    strategy = "increasing:F_V"
    unit_torus_factor = False
    guest_is_effectively_mesh = guest.is_mesh or guest.is_hypercube

    if factor is None:
        if (
            not guest_is_effectively_mesh
            and host.is_mesh
            and prefer_unit_dilation
            and guest.size % 2 == 0
        ):
            factor = find_unit_dilation_torus_factor(source_shape, target_shape)
            if factor is not None:
                unit_torus_factor = True
        if factor is None:
            factor = find_expansion_factor(source_shape, target_shape)
        if factor is None:
            raise NoExpansionError(
                f"shape {target_shape} is not an expansion of shape {source_shape}"
            )
    else:
        if not factor.expands(source_shape, target_shape):
            raise NoExpansionError(
                f"the supplied factor {factor.lists} does not expand {source_shape} "
                f"into {target_shape}"
            )
        unit_torus_factor = (
            factor.all_lists_have_length_at_least(2)
            and factor.all_lists_contain_even()
            and all(v[0] % 2 == 0 for v in factor.lists)
        )

    # Choose the per-coordinate map (scalar and batch forms of the same φ).
    value_fn: Callable[[ExpansionFactor, Sequence[int]], Node]
    if guest_is_effectively_mesh:
        value_fn, batch_fn = F_value, f_digits
        strategy = "increasing:F_V"
    elif host.is_torus:
        value_fn, batch_fn = H_value, h_digits
        strategy = "increasing:H_V"
    elif unit_torus_factor:
        value_fn, batch_fn = H_value, h_digits
        strategy = "increasing:H_V(even-first)"
    else:
        value_fn, batch_fn = G_value, g_digits
        strategy = "increasing:G_V"

    flattened = factor.flattened
    permutation = find_permutation(flattened, target_shape)
    if permutation is None:  # pragma: no cover - factor validity guarantees this
        raise NoExpansionError(
            f"internal error: factor concatenation {flattened} is not a permutation "
            f"of the host shape {target_shape}"
        )

    predicted = predicted_increasing_dilation(
        guest, host, unit_torus_factor=unit_torus_factor
    )

    notes = {
        "expansion_factor": factor.lists,
        "permutation": permutation,
        "unit_torus_factor": unit_torus_factor,
    }
    if predicted > 1:
        # Dilation 2 is exact for odd-size toruses (Theorem 32(iii)); for
        # even-size toruses with an unfavourable factor it is an upper bound.
        notes["dilation_is_upper_bound"] = guest.size % 2 == 0

    if use_array_path():
        np = require_numpy()
        guest_digits = indices_to_digits(
            np.arange(guest.size, dtype=np.int64), source_shape
        )
        # φ_{V_k} expands guest column k into len(V_k) host digit columns.
        blocks = [
            batch_fn(component, guest_digits[:, k])
            for k, component in enumerate(factor.lists)
        ]
        combined = np.concatenate(blocks, axis=1)
        return Embedding.from_index_array(
            guest,
            host,
            digits_to_indices(combined[:, list(permutation)], target_shape),
            strategy=strategy,
            predicted_dilation=predicted,
            notes=notes,
        )

    return Embedding.from_callable(
        guest,
        host,
        lambda node: apply_permutation(permutation, value_fn(factor, node)),
        strategy=strategy,
        predicted_dilation=predicted,
        notes=notes,
    )
