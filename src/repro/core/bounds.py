"""Lower bounds and previously known optimal dilation costs (Section 5 and Appendix).

Three ingredients of the paper's optimality discussion are reproduced here:

* the **lower bound** on the dilation of any lowering-dimension embedding
  (Theorem 47, adapting Rosenberg's diameter-of-preservation argument,
  Lemmas 44–46) — implemented both in its asymptotic form
  ``b · p^((d-c)/c)`` and as a concrete computable bound obtained from the
  ball-counting inequality ``(2kρ + 1)^c ≥ |Q(v, k)|``;
* the **known optimal dilation costs** from the literature that Section 5
  compares against: FitzGerald's square-mesh-in-line results, the
  square-torus-in-ring result of [MN86] and Harper's hypercube-in-line
  result; and
* the Appendix's ``ε_d`` sequence relating Harper's optimum to the
  reproduction's ``2^(d-1)`` dilation.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List

__all__ = [
    "mesh_ball_size_lower_bound",
    "lowering_dilation_lower_bound",
    "asymptotic_lower_bound_constant",
    "fitzgerald_square_mesh_in_line",
    "fitzgerald_cube_mesh_in_line",
    "mn86_square_torus_in_ring",
    "harper_hypercube_in_line",
    "epsilon_sequence",
    "epsilon_value",
]


# --------------------------------------------------------------------------- #
# Lower bound machinery (Lemmas 44-45, Theorem 47)
# --------------------------------------------------------------------------- #
def mesh_ball_size_lower_bound(d: int, k: int) -> int:
    """A lower bound on ``max_v |Q(v, k)|`` in a ``d``-dimensional mesh (Lemma 44).

    ``Q(v, k)`` is the set of nodes within distance ``k`` of ``v``.  Taking
    ``v`` to be a corner node and ``k`` smaller than every dimension length,
    the ball contains at least every node of the non-negative orthant whose
    coordinate sum is at most ``k``; there are ``C(k + d, d)`` of those, which
    is at least ``(k/d)^d`` — the ``b·k^d`` form quoted by the paper.
    """
    if d < 1 or k < 0:
        raise ValueError("d must be >= 1 and k >= 0")
    return math.comb(k + d, d)


def lowering_dilation_lower_bound(d: int, c: int, p: int, *, torus_pair: bool = False) -> int:
    """A concrete lower bound on the dilation of any embedding (Theorem 47).

    Parameters
    ----------
    d, c:
        Dimensions of the guest and the host (``c < d``).
    p:
        Length of the shortest guest dimension.
    torus_pair:
        When either graph is a torus the mesh-to-mesh bound is weakened by a
        constant factor (Lemma 46); we apply the worst factor (4), coming
        from composing a dilation-1 and a dilation-2 conversion on each side.

    Returns
    -------
    int
        The largest integer ``ρ_min`` such that every embedding has dilation
        at least ``ρ_min``.  Derived from Lemma 45: an embedding with
        dilation ``ρ`` maps every radius-``k`` ball of the guest into a
        ``c``-dimensional interval of side ``2kρ + 1``, hence
        ``(2kρ + 1)^c ≥ |Q(v, k)| ≥ C(k + d, d)`` for every ``k < p``.
    """
    if not (1 <= c < d):
        raise ValueError("the bound requires 1 <= c < d")
    if p < 2:
        raise ValueError("the shortest dimension length must be at least 2")
    best = 1
    for k in range(1, p):
        ball = mesh_ball_size_lower_bound(d, k)
        # smallest rho with (2 k rho + 1)^c >= ball
        side = math.ceil(ball ** (1.0 / c))
        while side**c < ball:  # guard against floating point under-estimation
            side += 1
        while side > 1 and (side - 1) ** c >= ball:
            side -= 1
        rho = (side - 1 + 2 * k - 1) // (2 * k)  # ceil((side - 1) / (2k))
        best = max(best, rho)
    if torus_pair:
        best = max(1, best // 4)
    return max(best, 1)


def asymptotic_lower_bound_constant(d: int, c: int) -> float:
    """The constant ``b`` in the asymptotic bound ``ρ ≥ b · p^((d-c)/c)`` (Theorem 47).

    From the proof: ``ρ ≥ (b'^(1/c) / 2) · (p - 1)^((d-c)/c) / (p-1)·(p-1)``
    simplifies, with the ball bound ``|Q(v, k)| ≥ (k/d)^d``, to a constant of
    roughly ``(1/(2 d^(d/c))) · (1/2)^((d-c)/c)``.  The exact value of the
    constant is immaterial to the paper (only its independence from ``p``
    matters); this helper returns the value implied by the ``(k/d)^d`` ball
    bound so that experiment reports can display the bound explicitly.
    """
    if not (1 <= c < d):
        raise ValueError("the constant is defined for 1 <= c < d")
    return (1.0 / (2.0 * d ** (d / c))) * (0.5 ** ((d - c) / c))


# --------------------------------------------------------------------------- #
# Known optimal results cited in Section 5
# --------------------------------------------------------------------------- #
def fitzgerald_square_mesh_in_line(l: int) -> int:
    """Optimal dilation of an ``(l, l)``-mesh in a line of the same size [Fit74]: ``l``."""
    if l < 2:
        raise ValueError("l must be at least 2")
    return l


def fitzgerald_cube_mesh_in_line(l: int) -> int:
    """Optimal dilation of an ``(l, l, l)``-mesh in a line [Fit74]: ``⌊3l²/4 + l/2⌋``."""
    if l < 2:
        raise ValueError("l must be at least 2")
    return (3 * l * l + 2 * l) // 4


def mn86_square_torus_in_ring(l: int) -> int:
    """Optimal dilation of an ``(l, l)``-torus in a ring of the same size [MN86]: ``l``."""
    if l < 2:
        raise ValueError("l must be at least 2")
    return l


def harper_hypercube_in_line(d: int) -> int:
    """Optimal dilation of a ``2^d``-node hypercube in a line [Har66].

    ``Σ_{k=0}^{d-1} C(k, ⌊k/2⌋)``.
    """
    if d < 1:
        raise ValueError("d must be at least 1")
    return sum(math.comb(k, k // 2) for k in range(d))


# --------------------------------------------------------------------------- #
# The Appendix ε sequence
# --------------------------------------------------------------------------- #
def epsilon_value(m: int) -> Fraction:
    """The Appendix quantity ``ε_m`` with ``Σ_{k=0}^{m} C(k, ⌊k/2⌋) = ε_m · 2^m``.

    The appendix proves ``ε_0 = ε_1 = ε_2 = 1`` and that the sequence is
    strictly decreasing from ``m = 2`` on; consequently the ratio between the
    reproduction's hypercube-in-line dilation ``2^(d-1)`` and Harper's optimum
    is ``1/ε_(d-1)``, which grows without bound.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    total = sum(math.comb(k, k // 2) for k in range(m + 1))
    return Fraction(total, 2**m)


def epsilon_sequence(count: int) -> List[Fraction]:
    """The first ``count`` values ``ε_0, ε_1, ..., ε_{count-1}``."""
    if count < 1:
        raise ValueError("count must be positive")
    return [epsilon_value(m) for m in range(count)]
