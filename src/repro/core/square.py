"""Embeddings among square toruses and square meshes (Section 5).

For square guests and hosts an embedding can *always* be constructed from the
Section 4 machinery:

* **Lowering dimension, d divisible by c** (Theorem 48): the host shape is a
  simple reduction of the guest shape (each host length is ``l^(d/c)``);
  dilation ``l^((d-c)/c)`` (×2 for torus -> mesh); optimal to within a
  constant for fixed ``d`` and ``c``.
* **Lowering dimension, d not divisible by c** (Theorem 51): a chain of
  general reductions through intermediate graphs ``I_0 = G, I_1, ..., I_{u-v}
  = H`` (``a = gcd(d, c)``, ``u = d/a``, ``v = c/a``); each step has dilation
  ``l^(1/v)``, giving ``l^((d-c)/c)`` in total (×2 for torus -> mesh).
* **Increasing dimension, c divisible by d** (Theorem 52): expansion with the
  factor ``V_i = (m, ..., m)``; dilation 1 (2 for an odd-size torus guest in
  a mesh host), optimal.
* **Increasing dimension, c not divisible by d** (Theorem 53): first expand
  ``G`` into a square graph ``G'`` of dimension ``c·u`` with side
  ``l^(1/v)``, then lower ``G'`` into ``H`` (the dimension of ``G'`` is
  divisible by ``c``); dilation ``l^((d-a)/c)`` (×2 for an odd-size torus
  guest in a mesh host).

The integer roots used by Theorems 51 and 53 exist by Lemma 50
(:func:`repro.utils.intmath.lemma50_root`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from ..graphs.base import CartesianGraph, make_graph
from ..runtime.context import accepts_deprecated_method
from ..types import GraphKind, ShapedGraphSpec
from ..utils.intmath import exact_nth_root
from .embedding import Embedding
from .expansion import ExpansionFactor
from .increasing import embed_increasing
from .lowering import embed_lowering_general, embed_lowering_simple
from .reduction import GeneralReductionFactor, SimpleReductionFactor
from .same_shape import same_shape_embedding

__all__ = [
    "predicted_square_dilation",
    "square_lowering_intermediate_shapes",
    "embed_square_lowering",
    "embed_square_increasing",
    "embed_square",
]


def _require_square_pair(guest: CartesianGraph, host: CartesianGraph) -> None:
    if not guest.is_square or not host.is_square:
        raise UnsupportedEmbeddingError(
            "square-graph strategies require both graphs to be square"
        )
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )


def predicted_square_dilation(guest: ShapedGraphSpec, host: ShapedGraphSpec) -> int:
    """The dilation cost promised by Section 5 for a square guest/host pair.

    Returns the exact formula of Theorems 48, 51, 52 and 53 (and Lemma 36 for
    equal dimensions).  The value is an upper bound on the measured dilation
    of the constructed embedding; for the increasing-dimension divisible case
    it is exactly optimal.
    """
    if not guest.is_square or not host.is_square or guest.size != host.size:
        raise UnsupportedEmbeddingError("prediction requires same-size square shapes")
    d, c = guest.dimension, host.dimension
    l = guest.shape[0]
    torus_into_mesh = guest.is_torus and host.is_mesh and not guest.is_hypercube
    if d == c:
        return 2 if torus_into_mesh else 1
    if d > c:
        base = round(l ** ((d - c) / c))
        root = exact_nth_root(l ** (d - c), c)
        if root is None:  # pragma: no cover - same-size square pairs always have one
            raise UnsupportedEmbeddingError("host side length is not an integer")
        return 2 * root if torus_into_mesh else root
    # Increasing dimension.
    if c % d == 0:
        if guest.is_torus and host.is_mesh and guest.size % 2 == 1:
            return 2
        return 1
    a = math.gcd(d, c)
    root = exact_nth_root(l ** (d - a), c)
    if root is None:  # pragma: no cover - Lemma 50 guarantees existence
        raise UnsupportedEmbeddingError("l^((d-a)/c) is not an integer")
    if guest.is_torus and host.is_mesh and guest.size % 2 == 1:
        return 2 * root
    return root


# --------------------------------------------------------------------------- #
# Lowering dimension
# --------------------------------------------------------------------------- #
def square_lowering_intermediate_shapes(
    d: int, c: int, l: int
) -> List[Tuple[int, ...]]:
    """The intermediate shapes ``I_0, ..., I_{u-v}`` of Theorem 51.

    ``I_k`` has ``a·v`` dimensions of length ``l^((v+k)/v)`` followed by
    ``a(u - v - k)`` dimensions of length ``l``, where ``a = gcd(d, c)``,
    ``u = d/a`` and ``v = c/a``.  ``I_0`` is the guest shape and ``I_{u-v}``
    the host shape.
    """
    a = math.gcd(d, c)
    u, v = d // a, c // a
    root = exact_nth_root(l, v)
    if root is None:
        raise UnsupportedEmbeddingError(
            f"l={l} has no integer {v}-th root; the shapes cannot be the same size"
        )
    shapes: List[Tuple[int, ...]] = []
    for k in range(u - v + 1):
        grown = root ** (v + k)
        shapes.append((grown,) * (a * v) + (l,) * (a * (u - v - k)))
    return shapes


def _square_chain_step_factor(
    current: Tuple[int, ...], a: int, v: int, root: int
) -> GeneralReductionFactor:
    """The explicit general-reduction decomposition used for one chain step.

    ``current`` is the shape of ``I_k``: ``a·v`` long dimensions followed by
    plain-``l`` dimensions.  The step consumes ``a`` of the plain dimensions
    (the multiplier sublist), factors each into ``v`` copies of ``root`` and
    multiplies them onto the ``a·v`` long dimensions.
    """
    long_count = a * v
    plain = current[long_count:]
    multiplier = plain[:a]
    multiplicant = current[:long_count] + plain[a:]
    s_groups = tuple((root,) * v for _ in range(a))
    return GeneralReductionFactor(
        multiplicant=multiplicant, multiplier=multiplier, s_groups=s_groups
    )


@accepts_deprecated_method
def embed_square_lowering(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Theorems 48 and 51: embed a square guest in a square host of lower dimension."""
    _require_square_pair(guest, host)
    d, c = guest.dimension, host.dimension
    if d <= c:
        raise UnsupportedEmbeddingError("square lowering requires dim(guest) > dim(host)")
    l = guest.shape[0]
    m = host.shape[0]
    predicted = predicted_square_dilation(guest.spec, host.spec)

    if d % c == 0:
        # Theorem 48: simple reduction with groups of d/c copies of l.
        groups = tuple(((l,) * (d // c)) for _ in range(c))
        factor = SimpleReductionFactor(groups)
        embedding = embed_lowering_simple(guest, host, factor)
        embedding.strategy = "square-lowering:simple-reduction"
        embedding.notes["theorem"] = "48"
        embedding.predicted_dilation = predicted
        return embedding

    # Theorem 51: chain of general reductions.
    a = math.gcd(d, c)
    u, v = d // a, c // a
    root = exact_nth_root(l, v)
    if root is None:  # pragma: no cover - equal sizes guarantee the root exists
        raise UnsupportedEmbeddingError("missing integer root for the Theorem 51 chain")
    shapes = square_lowering_intermediate_shapes(d, c, l)
    # Intermediate kinds: keep the guest's kind until the final graph, which is
    # the host itself (so a torus guest headed for a mesh host only pays the
    # factor-2 penalty on the last step, matching the paper's analysis).
    chain: Optional[Embedding] = None
    current_graph = guest
    for step in range(len(shapes) - 1):
        next_shape = shapes[step + 1]
        is_last = step == len(shapes) - 2
        next_kind = host.kind if is_last else guest.kind
        next_graph = host if is_last else make_graph(next_kind, next_shape)
        factor = _square_chain_step_factor(tuple(current_graph.shape), a, v, root)
        step_embedding = embed_lowering_general(current_graph, next_graph, factor)
        chain = step_embedding if chain is None else chain.compose(step_embedding)
        current_graph = next_graph
    assert chain is not None
    chain.strategy = "square-lowering:general-reduction-chain"
    chain.predicted_dilation = predicted
    chain.notes["theorem"] = "51"
    chain.notes["intermediate_shapes"] = shapes
    chain.notes["dilation_is_upper_bound"] = True
    return chain


# --------------------------------------------------------------------------- #
# Increasing dimension
# --------------------------------------------------------------------------- #
@accepts_deprecated_method
def embed_square_increasing(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Theorems 52 and 53: embed a square guest in a square host of higher dimension."""
    _require_square_pair(guest, host)
    d, c = guest.dimension, host.dimension
    if d >= c:
        raise UnsupportedEmbeddingError("square increasing requires dim(guest) < dim(host)")
    l = guest.shape[0]
    m = host.shape[0]
    predicted = predicted_square_dilation(guest.spec, host.spec)

    if c % d == 0:
        # Theorem 52: expansion with V_i = (m, ..., m), c/d copies.
        factor = ExpansionFactor(tuple(((m,) * (c // d)) for _ in range(d)))
        embedding = embed_increasing(guest, host, factor)
        embedding.strategy = "square-increasing:expansion"
        embedding.notes["theorem"] = "52"
        embedding.predicted_dilation = predicted
        return embedding

    # Theorem 53: expand into G' (dimension c·u, side l^(1/v)), then lower into H.
    a = math.gcd(d, c)
    u, v = d // a, c // a
    root = exact_nth_root(l, v)
    if root is None:  # pragma: no cover - Lemma 50 guarantees existence
        raise UnsupportedEmbeddingError("missing integer root for the Theorem 53 construction")
    intermediate_kind = (
        GraphKind.TORUS if guest.is_torus and host.is_torus else GraphKind.MESH
    )
    intermediate = make_graph(intermediate_kind, (root,) * (v * d))
    expansion = ExpansionFactor(tuple(((root,) * v) for _ in range(d)))
    first = embed_increasing(guest, intermediate, expansion)
    second = embed_square_lowering(intermediate, host)
    chain = first.compose(second)
    chain.strategy = "square-increasing:expand-then-reduce"
    chain.predicted_dilation = predicted
    chain.notes["theorem"] = "53"
    chain.notes["intermediate_shape"] = intermediate.shape
    chain.notes["dilation_is_upper_bound"] = True
    return chain


@accepts_deprecated_method
def embed_square(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Embed between same-size square graphs using the appropriate Section 5 strategy."""
    _require_square_pair(guest, host)
    d, c = guest.dimension, host.dimension
    if d == c:
        return same_shape_embedding(guest, host)
    if d > c:
        return embed_square_lowering(guest, host)
    return embed_square_increasing(guest, host)
