"""Automatic strategy selection: ``embed(guest, host)``.

The paper's results are organized by the relationship between the two
shapes; this module encodes the decision procedure so that a caller can
simply ask for an embedding and get the best construction the paper offers:

1. equal shapes → Lemma 36 (identity or ``T_L``);
2. shapes that are permutations of each other → permute dimensions
   (plus ``T`` for a torus guest in a mesh host);
3. 1-dimensional guest (line or ring) → Section 3 basic embeddings;
4. 1-dimensional host → the simple reduction with a single group (always
   applies), Theorem 39;
5. higher-dimensional host satisfying the expansion condition → Theorem 32;
6. lower-dimensional host satisfying a reduction condition → Theorem 39 / 43;
7. both graphs square → the Section 5 chains (Theorems 48, 51, 52, 53);
8. otherwise → :class:`~repro.exceptions.UnsupportedEmbeddingError` (the
   paper does not cover the pair).
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import (
    NoExpansionError,
    NoReductionError,
    ShapeMismatchError,
    UnsupportedEmbeddingError,
)
from ..graphs.base import CartesianGraph
from ..utils.listops import apply_permutation, find_permutation, is_permutation_of
from .basic import line_in_graph_embedding, ring_in_graph_embedding
from .embedding import Embedding
from .expansion import find_expansion_factor
from .increasing import embed_increasing
from .lowering import embed_lowering_simple, embed_lowering
from .reduction import SimpleReductionFactor, find_general_reduction, find_simple_reduction
from .same_shape import same_shape_embedding, t_vector_value
from .square import embed_square

__all__ = ["embed", "strategy_for"]


def _permuted_shape_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Shapes are permutations of each other: permute coordinates (plus ``T`` if needed)."""
    permutation = find_permutation(guest.shape, host.shape)
    assert permutation is not None
    if guest.is_torus and host.is_mesh and not guest.is_hypercube:
        shape = guest.shape
        return Embedding.from_callable(
            guest,
            host,
            lambda node: apply_permutation(permutation, t_vector_value(shape, node)),
            strategy="permute-dimensions∘T_L",
            predicted_dilation=2,
            notes={"permutation": permutation, "dilation_is_upper_bound": min(shape) <= 2},
        )
    return Embedding.from_permutation(guest, host, permutation)


def strategy_for(guest: CartesianGraph, host: CartesianGraph) -> str:
    """Name of the strategy :func:`embed` would use, without building the mapping.

    Useful for experiment sweeps that only need to know which theorem covers
    a pair of shapes.
    """
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}"
        )
    if guest.shape == host.shape:
        return "same-shape"
    if is_permutation_of(guest.shape, host.shape):
        return "permute-dimensions"
    if guest.dimension == 1:
        return "basic"
    if host.dimension == 1:
        return "lowering-simple"
    if guest.dimension < host.dimension:
        if find_expansion_factor(guest.shape, host.shape) is not None:
            return "increasing"
        if guest.is_square and host.is_square:
            return "square-increasing"
        return "unsupported"
    if find_simple_reduction(guest.shape, host.shape) is not None:
        return "lowering-simple"
    if find_general_reduction(guest.shape, host.shape) is not None:
        return "lowering-general"
    if guest.is_square and host.is_square:
        return "square-lowering"
    return "unsupported"


def embed(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Embed ``guest`` in ``host`` using the paper's best applicable construction.

    Raises
    ------
    ShapeMismatchError
        When the graphs do not have the same number of nodes.
    UnsupportedEmbeddingError
        When none of the paper's conditions (expansion, reduction, square,
        basic, same-shape) applies to the pair of shapes.
    """
    if guest.size != host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}; "
            "the paper studies same-size embeddings only"
        )

    if guest.shape == host.shape:
        return same_shape_embedding(guest, host)

    if is_permutation_of(guest.shape, host.shape):
        return _permuted_shape_embedding(guest, host)

    if guest.dimension == 1:
        if guest.is_mesh:
            embedding = line_in_graph_embedding(host)
        else:
            embedding = ring_in_graph_embedding(host)
        # The builders create their own 1-D guest; rebuild with the caller's
        # guest object so identities (kind/shape) are preserved exactly.
        return Embedding(
            guest=guest,
            host=host,
            mapping={guest.index_node(x): embedding.map_index(x) for x in range(guest.size)},
            strategy=embedding.strategy,
            predicted_dilation=embedding.predicted_dilation,
            notes=embedding.notes,
        )

    if host.dimension == 1:
        # A 1-dimensional host is always a simple reduction: one group
        # containing every guest dimension, largest length first.
        group = tuple(sorted(guest.shape, reverse=True))
        factor = SimpleReductionFactor((group,))
        return embed_lowering_simple(guest, host, factor)

    if guest.dimension < host.dimension:
        try:
            return embed_increasing(guest, host)
        except NoExpansionError:
            if guest.is_square and host.is_square:
                return embed_square(guest, host)
            raise UnsupportedEmbeddingError(
                f"{host.shape} is not an expansion of {guest.shape} and the graphs are "
                "not both square; the paper does not provide an embedding for this pair"
            ) from None

    try:
        return embed_lowering(guest, host)
    except NoReductionError:
        if guest.is_square and host.is_square:
            return embed_square(guest, host)
        raise UnsupportedEmbeddingError(
            f"{host.shape} is not a reduction of {guest.shape} and the graphs are "
            "not both square; the paper does not provide an embedding for this pair"
        ) from None
