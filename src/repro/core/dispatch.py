"""Automatic strategy selection: ``embed(guest, host)``.

The paper's results are organized by the relationship between the two
shapes; this module encodes the decision procedure so that a caller can
simply ask for an embedding and get the best construction the paper offers:

0. guest strictly smaller than host → an injective subshape embedding
   into an equal-size sub-box of the host (:mod:`repro.core.subshape`);
1. equal shapes → Lemma 36 (identity or ``T_L``);
2. shapes that are permutations of each other → permute dimensions
   (plus ``T`` for a torus guest in a mesh host);
3. 1-dimensional guest (line or ring) → Section 3 basic embeddings;
4. 1-dimensional host → the simple reduction with a single group (always
   applies), Theorem 39;
5. higher-dimensional host satisfying the expansion condition → Theorem 32;
6. lower-dimensional host satisfying a reduction condition → Theorem 39 / 43;
7. both graphs square → the Section 5 chains (Theorems 48, 51, 52, 53);
8. otherwise → :class:`~repro.exceptions.UnsupportedEmbeddingError` (the
   paper does not cover the pair).
"""

from __future__ import annotations


from ..exceptions import (
    NoExpansionError,
    NoReductionError,
    ShapeMismatchError,
    UnsupportedEmbeddingError,
)
from ..graphs.base import CartesianGraph, Mesh
from ..numbering.arrays import digits_to_indices, indices_to_digits, require_numpy
from ..numbering.batch import t_columns
from ..runtime.cache import embedding_cache_key
from ..runtime.context import accepts_deprecated_method, current
from ..utils.listops import apply_permutation, find_permutation, is_permutation_of
from .basic import line_in_graph_embedding, ring_in_graph_embedding
from .embedding import Embedding, use_array_path
from .expansion import find_expansion_factor
from .increasing import embed_increasing
from .lowering import embed_lowering_simple, embed_lowering
from .reduction import SimpleReductionFactor, find_general_reduction, find_simple_reduction
from .same_shape import same_shape_embedding, t_vector_value
from .square import embed_square
from .subshape import embed_subshape, find_subshape, subshape_inner_shape

__all__ = ["embed", "strategy_for", "strategy_family"]


def _permuted_shape_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Shapes are permutations of each other: permute coordinates (plus ``T`` if needed)."""
    permutation = find_permutation(guest.shape, host.shape)
    assert permutation is not None
    if guest.is_torus and host.is_mesh and not guest.is_hypercube:
        shape = guest.shape
        notes = {"permutation": permutation, "dilation_is_upper_bound": min(shape) <= 2}
        if use_array_path():
            np = require_numpy()
            digits = indices_to_digits(np.arange(guest.size, dtype=np.int64), shape)
            relabelled = t_columns(shape, digits)
            return Embedding.from_index_array(
                guest,
                host,
                digits_to_indices(relabelled[:, list(permutation)], host.shape),
                strategy="permute-dimensions∘T_L",
                predicted_dilation=2,
                notes=notes,
            )
        return Embedding.from_callable(
            guest,
            host,
            lambda node: apply_permutation(permutation, t_vector_value(shape, node)),
            strategy="permute-dimensions∘T_L",
            predicted_dilation=2,
            notes=notes,
        )
    return Embedding.from_permutation(guest, host, permutation)


def strategy_for(guest: CartesianGraph, host: CartesianGraph) -> str:
    """Name of the strategy :func:`embed` would use, without building the mapping.

    Useful for experiment sweeps that only need to know which theorem covers
    a pair of shapes.
    """
    if guest.size > host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}; "
            "the guest must not be larger than the host"
        )
    if guest.size < host.size:
        sub = find_subshape(guest.size, host.shape)
        if sub is None:
            return "unsupported"
        inner = strategy_for(guest, Mesh(subshape_inner_shape(sub)))
        return "unsupported" if inner == "unsupported" else "subshape"
    if guest.shape == host.shape:
        return "same-shape"
    if is_permutation_of(guest.shape, host.shape):
        return "permute-dimensions"
    if guest.dimension == 1:
        return "basic"
    if host.dimension == 1:
        return "lowering-simple"
    if guest.dimension < host.dimension:
        if find_expansion_factor(guest.shape, host.shape) is not None:
            return "increasing"
        if guest.is_square and host.is_square:
            return "square-increasing"
        return "unsupported"
    if find_simple_reduction(guest.shape, host.shape) is not None:
        return "lowering-simple"
    if find_general_reduction(guest.shape, host.shape) is not None:
        return "lowering-general"
    if guest.is_square and host.is_square:
        return "square-lowering"
    return "unsupported"


#: Ordered (prefix, family) pairs mapping an ``Embedding.strategy`` name to
#: the :func:`strategy_for` family that produces it.  Order matters: the
#: simple-reduction prefix must be tried before the general ``lowering:``
#: one, and the ``square-*`` prefixes before the plain ones they extend.
_STRATEGY_FAMILIES = (
    ("subshape:", "subshape"),
    ("identity", "same-shape"),
    ("same-shape", "same-shape"),
    ("permute-dimensions", "permute-dimensions"),
    ("line:", "basic"),
    ("ring:", "basic"),
    ("square-lowering:", "square-lowering"),
    ("square-increasing:", "square-increasing"),
    ("lowering:U_V", "lowering-simple"),
    ("lowering:", "lowering-general"),
    ("increasing:", "increasing"),
)


def strategy_family(strategy: str) -> str:
    """The :func:`strategy_for` family that produces a given strategy name.

    ``embed`` labels embeddings with the concrete construction
    (``"increasing:H_V"``, ``"lowering:U_V∘T∘τ"``, ...) while
    :func:`strategy_for` predicts only the family (``"increasing"``,
    ``"lowering-simple"``, ...); this maps the former onto the latter so the
    two code paths can be cross-checked.  Unrecognized names (custom or
    composed strategies) map to ``"custom"``.
    """
    for prefix, family in _STRATEGY_FAMILIES:
        if strategy.startswith(prefix):
            return family
    return "custom"


@accepts_deprecated_method
def embed(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Embed ``guest`` in ``host`` using the paper's best applicable construction.

    The construction backend is resolved from the ambient execution context
    (:mod:`repro.runtime.context`): the array backend builds the flat
    host-index array with the batch kernels of :mod:`repro.numbering.batch`
    (never touching per-node Python); ``use_context(backend="loop")`` forces
    the retained per-node reference builders.  Both backends produce
    node-for-node identical embeddings — the differential test harness
    asserts this for every strategy this dispatcher can select.

    When the context carries a construction cache
    (:class:`~repro.runtime.cache.ConstructionCache`), the result is
    memoized under ``(strategy family, guest kind+shape, host kind+shape)``
    — the constructions are pure functions of that key, so a warm cache
    skips re-construction entirely (see ``benchmarks/bench_runtime_cache.py``).

    Raises
    ------
    ShapeMismatchError
        When the guest has more nodes than the host.
    UnsupportedEmbeddingError
        When none of the paper's conditions (expansion, reduction, square,
        basic, same-shape) applies to the pair of shapes.
    """
    if guest.size > host.size:
        raise ShapeMismatchError(
            f"guest has {guest.size} nodes but host has {host.size}; "
            "the guest must not be larger than the host"
        )
    cache = current().cache
    if cache is None:
        return _dispatch(guest, host)
    memo = cache.fetch_family(guest, host)
    if memo is None:
        # Cold pair: build first, then derive the family from the strategy
        # label (strategy_family ∘ _dispatch == strategy_for, pinned by
        # tests/test_dispatch_strategy_agreement.py) — one factor search,
        # not two.  Unsupported pairs memoize the error message so a warm
        # sweep skips the failed searches entirely.
        cache.misses += 1
        try:
            embedding = _dispatch(guest, host)
        except UnsupportedEmbeddingError as error:
            cache.store_family(guest, host, "unsupported", error=str(error))
            raise
        family = strategy_family(embedding.strategy)
        cache.store_family(guest, host, family)
        cache.store_embedding(embedding_cache_key(family, guest, host), embedding)
        return embedding
    family, unsupported_message = memo
    if family == "unsupported":
        raise UnsupportedEmbeddingError(unsupported_message)
    key = embedding_cache_key(family, guest, host)
    cached = cache.fetch_embedding(key, guest, host)
    if cached is not None:
        return cached
    # Family memo without its construction (e.g. a partially merged warm
    # start): rebuild and fill the gap.
    embedding = _dispatch(guest, host)
    cache.store_embedding(key, embedding)
    return embedding


def _dispatch(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """The uncached strategy-selection body of :func:`embed`."""
    if guest.size < host.size:
        return embed_subshape(guest, host)

    if guest.shape == host.shape:
        return same_shape_embedding(guest, host)

    if is_permutation_of(guest.shape, host.shape):
        return _permuted_shape_embedding(guest, host)

    if guest.dimension == 1:
        if guest.is_mesh:
            embedding = line_in_graph_embedding(host)
        else:
            embedding = ring_in_graph_embedding(host)
        # The builders create their own 1-D guest; rebuild with the caller's
        # guest object so identities (kind/shape) are preserved exactly.
        if use_array_path():
            return Embedding.from_index_array(
                guest,
                host,
                embedding.host_index_array(),
                strategy=embedding.strategy,
                predicted_dilation=embedding.predicted_dilation,
                notes=embedding.notes,
            )
        return Embedding(
            guest=guest,
            host=host,
            mapping={guest.index_node(x): embedding.map_index(x) for x in range(guest.size)},
            strategy=embedding.strategy,
            predicted_dilation=embedding.predicted_dilation,
            notes=embedding.notes,
        )

    if host.dimension == 1:
        # A 1-dimensional host is always a simple reduction: one group
        # containing every guest dimension, largest length first.
        group = tuple(sorted(guest.shape, reverse=True))
        factor = SimpleReductionFactor((group,))
        return embed_lowering_simple(guest, host, factor)

    if guest.dimension < host.dimension:
        try:
            return embed_increasing(guest, host)
        except NoExpansionError:
            if guest.is_square and host.is_square:
                return embed_square(guest, host)
            raise UnsupportedEmbeddingError(
                f"{host.shape} is not an expansion of {guest.shape} and the graphs are "
                "not both square; the paper does not provide an embedding for this pair"
            ) from None

    try:
        return embed_lowering(guest, host)
    except NoReductionError:
        if guest.is_square and host.is_square:
            return embed_square(guest, host)
        raise UnsupportedEmbeddingError(
            f"{host.shape} is not a reduction of {guest.shape} and the graphs are "
            "not both square; the paper does not provide an embedding for this pair"
        ) from None
