"""Functional (non-materialized) embeddings for very large graphs.

The paper closes with the observation that *"given any argument in the
corresponding domains of our embedding functions, the numbers of operations
needed to evaluate the functions are all proportional to the dimension of
H"* — i.e. the constructions are usable pointwise without ever materializing
the full node mapping.  The :class:`Embedding` class materializes the map (so
it can be validated and measured exhaustively), which is the right default
for graphs up to a few hundred thousand nodes but not for, say, a
``(1024, 1024, 1024)``-torus.

:func:`functional_embed` returns a :class:`FunctionalEmbedding` — a thin
wrapper around the per-node mapping function — for the strategies whose
pointwise form is direct:

* 1-dimensional guests (lines and rings): ``f_L``, ``g_L``, ``π ∘ h_{L*}``;
* same-shape pairs: identity or ``T_L``;
* shapes that are permutations of each other;
* increasing dimension under the expansion condition: ``π ∘ {F,G,H}_V``;
* lowering dimension under the simple-reduction condition: ``U_V ∘ [T] ∘ τ``.

(The general-reduction and square-chain strategies build intermediate
mappings and are only available in materialized form; requesting them raises
:class:`UnsupportedEmbeddingError` with a pointer to :func:`repro.core.embed`.)

A :class:`FunctionalEmbedding` can evaluate single nodes in O(dim H) time,
estimate its dilation by sampling random guest edges, and materialize itself
into a full :class:`Embedding` on demand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from ..graphs.base import CartesianGraph, graph_from_spec
from ..numbering.distance import mesh_distance, torus_distance
from ..numbering.radix import RadixBase
from ..types import Node, ShapedGraphSpec
from ..utils.listops import apply_permutation, find_permutation, is_permutation_of
from .basic import even_first_permutation, f_value, g_value, h_value, predicted_ring_dilation
from .embedding import Embedding
from .expansion import find_expansion_factor, find_unit_dilation_torus_factor
from .increasing import F_value, G_value, H_value, predicted_increasing_dilation
from .lowering import U_value
from .reduction import find_simple_reduction
from .same_shape import t_vector_value

__all__ = ["FunctionalEmbedding", "functional_embed"]


@dataclass
class FunctionalEmbedding:
    """A pointwise embedding ``guest -> host`` that is never materialized.

    The mapping function evaluates one node in time proportional to the host
    dimension, as promised by the paper's concluding remark.
    """

    guest: ShapedGraphSpec
    host: ShapedGraphSpec
    mapping: Callable[[Node], Node]
    strategy: str
    predicted_dilation: Optional[int] = None

    def __call__(self, node: Node) -> Node:
        return self.mapping(tuple(node))

    def map_index(self, index: int) -> Node:
        """Image of the guest node with natural-order rank ``index``."""
        return self.mapping(RadixBase(self.guest.shape).to_digits(index))

    def host_distance(self, a: Node, b: Node) -> int:
        """Distance between two host nodes under the host's metric."""
        if self.host.is_torus:
            return torus_distance(a, b, self.host.shape)
        return mesh_distance(a, b)

    def sample_dilation(self, samples: int = 1024, *, seed: int = 0) -> int:
        """Maximum host distance over ``samples`` randomly chosen guest edges.

        A lower bound on the true dilation (and usually equal to it, because
        the constructions stretch a constant fraction of the edges); useful
        when the guest is too large to enumerate.
        """
        rng = random.Random(seed)
        guest_base = RadixBase(self.guest.shape)
        shape = self.guest.shape
        worst = 0
        for _ in range(samples):
            node = list(guest_base.to_digits(rng.randrange(guest_base.size)))
            dim = rng.randrange(len(shape))
            neighbor = list(node)
            if self.guest.is_torus:
                neighbor[dim] = (neighbor[dim] + 1) % shape[dim]
            else:
                if node[dim] + 1 >= shape[dim]:
                    node[dim] -= 1
                    neighbor[dim] = node[dim] + 1
                else:
                    neighbor[dim] = node[dim] + 1
            if tuple(node) == tuple(neighbor):
                continue
            worst = max(
                worst, self.host_distance(self.mapping(tuple(node)), self.mapping(tuple(neighbor)))
            )
        return worst

    def materialize(self) -> Embedding:
        """Build the full :class:`Embedding` (requires enumerating the guest)."""
        guest_graph = graph_from_spec(self.guest)
        host_graph = graph_from_spec(self.host)
        return Embedding.from_callable(
            guest_graph,
            host_graph,
            self.mapping,
            strategy=self.strategy,
            predicted_dilation=self.predicted_dilation,
        )


def _spec_of(graph_or_spec) -> ShapedGraphSpec:
    if isinstance(graph_or_spec, CartesianGraph):
        return graph_or_spec.spec
    return graph_or_spec


def functional_embed(guest, host) -> FunctionalEmbedding:
    """A pointwise embedding between the two graphs (specs or graph objects).

    Covers the strategies listed in the module docstring; raises
    :class:`UnsupportedEmbeddingError` for pairs that need an intermediate
    materialized mapping (general reduction, square chains).
    """
    guest_spec = _spec_of(guest)
    host_spec = _spec_of(host)
    if guest_spec.size != host_spec.size:
        raise ShapeMismatchError(
            f"guest has {guest_spec.size} nodes but host has {host_spec.size}"
        )
    guest_shape, host_shape = guest_spec.shape, host_spec.shape
    torus_guest = guest_spec.is_torus and not guest_spec.is_hypercube

    # Same shape (Lemma 36).
    if guest_shape == host_shape:
        if torus_guest and host_spec.is_mesh:
            return FunctionalEmbedding(
                guest_spec,
                host_spec,
                lambda node: t_vector_value(guest_shape, node),
                "same-shape:T_L",
                2,
            )
        return FunctionalEmbedding(guest_spec, host_spec, lambda node: node, "identity", 1)

    # Permuted shapes.
    if is_permutation_of(guest_shape, host_shape):
        permutation = find_permutation(guest_shape, host_shape)
        if torus_guest and host_spec.is_mesh:
            return FunctionalEmbedding(
                guest_spec,
                host_spec,
                lambda node: apply_permutation(permutation, t_vector_value(guest_shape, node)),
                "permute-dimensions∘T_L",
                2,
            )
        return FunctionalEmbedding(
            guest_spec,
            host_spec,
            lambda node: apply_permutation(permutation, node),
            "permute-dimensions",
            1,
        )

    # 1-dimensional guests (Section 3).
    if guest_spec.dimension == 1:
        host_base = RadixBase(host_shape)
        host_graph_like = graph_from_spec(host_spec)
        if guest_spec.is_mesh:
            return FunctionalEmbedding(
                guest_spec, host_spec, lambda node: f_value(host_base, node[0]), "line:f_L", 1
            )
        if host_spec.is_torus:
            return FunctionalEmbedding(
                guest_spec, host_spec, lambda node: h_value(host_base, node[0]), "ring:h_L", 1
            )
        if host_spec.dimension >= 2 and host_spec.size % 2 == 0:
            reordered_shape, perm = even_first_permutation(host_shape)
            base = RadixBase(reordered_shape)
            return FunctionalEmbedding(
                guest_spec,
                host_spec,
                lambda node: apply_permutation(perm, h_value(base, node[0])),
                "ring:π∘h_L*",
                1,
            )
        return FunctionalEmbedding(
            guest_spec,
            host_spec,
            lambda node: g_value(host_base, node[0]),
            "ring:g_L",
            predicted_ring_dilation(host_graph_like),
        )

    # Increasing dimension under the expansion condition (Theorem 32).
    if guest_spec.dimension < host_spec.dimension:
        factor = None
        unit_factor = False
        if torus_guest and host_spec.is_mesh and guest_spec.size % 2 == 0:
            factor = find_unit_dilation_torus_factor(guest_shape, host_shape)
            unit_factor = factor is not None
        if factor is None:
            factor = find_expansion_factor(guest_shape, host_shape)
        if factor is None:
            raise UnsupportedEmbeddingError(
                f"{host_shape} is not an expansion of {guest_shape}; use repro.core.embed "
                "for the square-graph chain strategies"
            )
        permutation = find_permutation(factor.flattened, host_shape)
        if not torus_guest:
            value_fn, strategy = F_value, "increasing:F_V"
        elif host_spec.is_torus:
            value_fn, strategy = H_value, "increasing:H_V"
        elif unit_factor:
            value_fn, strategy = H_value, "increasing:H_V(even-first)"
        else:
            value_fn, strategy = G_value, "increasing:G_V"
        guest_graph_like = graph_from_spec(guest_spec)
        host_graph_like = graph_from_spec(host_spec)
        predicted = predicted_increasing_dilation(
            guest_graph_like, host_graph_like, unit_torus_factor=unit_factor
        )
        return FunctionalEmbedding(
            guest_spec,
            host_spec,
            lambda node: apply_permutation(permutation, value_fn(factor, node)),
            strategy,
            predicted,
        )

    # Lowering dimension under the simple-reduction condition (Theorem 39).
    factor = find_simple_reduction(guest_shape, host_shape)
    if factor is None:
        raise UnsupportedEmbeddingError(
            f"{host_shape} is not a simple reduction of {guest_shape}; the general-reduction "
            "and square-chain strategies are only available through repro.core.embed"
        )
    flattened = factor.flattened
    tau = find_permutation(guest_shape, flattened)
    if torus_guest and host_spec.is_mesh:
        return FunctionalEmbedding(
            guest_spec,
            host_spec,
            lambda node: U_value(factor, t_vector_value(flattened, apply_permutation(tau, node))),
            "lowering:U_V∘T∘τ",
            2 * factor.dilation(),
        )
    return FunctionalEmbedding(
        guest_spec,
        host_spec,
        lambda node: U_value(factor, apply_permutation(tau, node)),
        "lowering:U_V∘τ",
        factor.dilation(),
    )
