"""The paper's primary contribution: embeddings among toruses and meshes.

Submodules map one-to-one onto the paper's sections:

* :mod:`~repro.core.embedding` — the :class:`Embedding` type (Definition 1);
* :mod:`~repro.core.basic` — Section 3 basic embeddings (``f``, ``g``, ``r``,
  ``h`` and the helper ``t``);
* :mod:`~repro.core.same_shape` — Lemma 36 (identity and ``T_L``);
* :mod:`~repro.core.expansion` / :mod:`~repro.core.reduction` — the shape
  conditions of Definitions 30, 37 and 41 and the factor searches;
* :mod:`~repro.core.increasing` — Section 4.1 (Theorem 32);
* :mod:`~repro.core.lowering` — Section 4.2 (Theorems 39 and 43);
* :mod:`~repro.core.square` — Section 5 (Theorems 48, 51, 52, 53);
* :mod:`~repro.core.bounds` — Theorem 47 lower bound, the known optima used
  for comparison, and the Appendix ``ε`` sequence;
* :mod:`~repro.core.dispatch` — automatic strategy selection.
"""

from .embedding import CostMethod, Embedding, use_array_path
from .basic import (
    f_sequence,
    f_value,
    g_sequence,
    g_value,
    h_sequence,
    h_value,
    line_in_graph_embedding,
    r_sequence,
    r_value,
    ring_in_graph_embedding,
    t_sequence,
    t_value,
)
from .same_shape import same_shape_embedding, t_vector_value, torus_in_mesh_same_shape
from .expansion import (
    ExpansionFactor,
    find_expansion_factor,
    find_unit_dilation_torus_factor,
    is_expansion,
    iter_expansion_factors,
)
from .reduction import (
    GeneralReductionFactor,
    SimpleReductionFactor,
    find_general_reduction,
    find_simple_reduction,
    is_general_reduction,
    is_simple_reduction,
)
from .increasing import F_value, G_value, H_value, embed_increasing
from .lowering import (
    U_value,
    embed_lowering,
    embed_lowering_general,
    embed_lowering_simple,
)
from .square import (
    embed_square,
    embed_square_increasing,
    embed_square_lowering,
    predicted_square_dilation,
    square_lowering_intermediate_shapes,
)
from .bounds import (
    epsilon_sequence,
    epsilon_value,
    fitzgerald_cube_mesh_in_line,
    fitzgerald_square_mesh_in_line,
    harper_hypercube_in_line,
    lowering_dilation_lower_bound,
    mn86_square_torus_in_ring,
)
from .dispatch import embed, strategy_family, strategy_for
from .functional import FunctionalEmbedding, functional_embed
from .subshape import embed_subshape, find_subshape

__all__ = [
    "Embedding",
    "CostMethod",
    "use_array_path",
    "FunctionalEmbedding",
    "functional_embed",
    "t_value",
    "t_sequence",
    "f_value",
    "f_sequence",
    "g_value",
    "g_sequence",
    "r_value",
    "r_sequence",
    "h_value",
    "h_sequence",
    "line_in_graph_embedding",
    "ring_in_graph_embedding",
    "same_shape_embedding",
    "torus_in_mesh_same_shape",
    "t_vector_value",
    "ExpansionFactor",
    "is_expansion",
    "find_expansion_factor",
    "iter_expansion_factors",
    "find_unit_dilation_torus_factor",
    "SimpleReductionFactor",
    "GeneralReductionFactor",
    "is_simple_reduction",
    "find_simple_reduction",
    "is_general_reduction",
    "find_general_reduction",
    "F_value",
    "G_value",
    "H_value",
    "embed_increasing",
    "U_value",
    "embed_lowering",
    "embed_lowering_simple",
    "embed_lowering_general",
    "embed_square",
    "embed_square_lowering",
    "embed_square_increasing",
    "predicted_square_dilation",
    "square_lowering_intermediate_shapes",
    "lowering_dilation_lower_bound",
    "fitzgerald_square_mesh_in_line",
    "fitzgerald_cube_mesh_in_line",
    "mn86_square_torus_in_ring",
    "harper_hypercube_in_line",
    "epsilon_value",
    "epsilon_sequence",
    "embed",
    "strategy_for",
    "strategy_family",
    "embed_subshape",
    "find_subshape",
]
