"""The :class:`Embedding` type — an injection of guest nodes into host nodes.

Definition 1 of the paper: an embedding ``f`` of ``G = (V_G, E_G)`` in
``H = (V_H, E_H)`` is an injection ``f : V_G -> V_H``; its *dilation cost* is
the maximum distance in ``H`` between the images of adjacent nodes of ``G``.

The class stores the guest graph, the host graph and the explicit mapping,
and offers:

* validity checking (:meth:`Embedding.is_valid`, :meth:`Embedding.validate`)
  — the mapping must be total on the guest nodes, land inside the host node
  set and be injective;
* measured costs (:meth:`dilation`, :meth:`average_dilation`,
  :meth:`edge_congestion`) computed from the host graph's exact distances;
* composition (:meth:`compose`) used by the paper's multi-step constructions
  ``G -> G' -> H' -> H``; and
* convenient constructors (:meth:`from_callable`, :meth:`identity`,
  :meth:`from_permutation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InvalidEmbeddingError, ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..graphs.paths import dimension_order_path
from ..types import Node
from ..utils.listops import apply_permutation

__all__ = ["Embedding"]


@dataclass
class Embedding:
    """An injection of the nodes of ``guest`` into the nodes of ``host``.

    Attributes
    ----------
    guest, host:
        The two graphs.  The paper studies same-size embeddings; the class
        allows ``host.size >= guest.size`` so that sub-graph embeddings can
        also be represented, but the constructors used by the paper's
        strategies always produce same-size (bijective) embeddings.
    mapping:
        Dict from guest node tuple to host node tuple.
    strategy:
        Human-readable name of the construction that produced the embedding.
    predicted_dilation:
        The dilation cost promised by the paper's theorem for this
        construction (``None`` when no prediction applies).  The measured
        dilation (:meth:`dilation`) is computed independently so the two can
        be compared in tests and experiment reports.
    notes:
        Free-form metadata (expansion factors used, chain steps, ...).
    """

    guest: CartesianGraph
    host: CartesianGraph
    mapping: Dict[Node, Node]
    strategy: str = "custom"
    predicted_dilation: Optional[int] = None
    notes: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_callable(
        cls,
        guest: CartesianGraph,
        host: CartesianGraph,
        func: Callable[[Node], Node],
        *,
        strategy: str = "custom",
        predicted_dilation: Optional[int] = None,
        notes: Optional[Dict[str, object]] = None,
    ) -> "Embedding":
        """Materialize an embedding from a node-mapping function."""
        mapping = {node: tuple(func(node)) for node in guest.nodes()}
        return cls(
            guest=guest,
            host=host,
            mapping=mapping,
            strategy=strategy,
            predicted_dilation=predicted_dilation,
            notes=dict(notes or {}),
        )

    @classmethod
    def identity(cls, guest: CartesianGraph, host: CartesianGraph) -> "Embedding":
        """The identity embedding between two graphs of the same shape.

        Used by Lemma 36 for same-shape pairs (except torus -> non-hypercube
        mesh, which needs :func:`repro.core.same_shape.torus_in_mesh_same_shape`).
        """
        if guest.shape != host.shape:
            raise ShapeMismatchError(
                f"identity embedding requires equal shapes, got {guest.shape} and {host.shape}"
            )
        return cls.from_callable(
            guest, host, lambda node: node, strategy="identity", predicted_dilation=1
        )

    @classmethod
    def from_permutation(
        cls,
        guest: CartesianGraph,
        host: CartesianGraph,
        permutation: Sequence[int],
        *,
        strategy: str = "permute-dimensions",
    ) -> "Embedding":
        """Embed by permuting coordinate positions.

        ``permutation`` must satisfy
        ``apply_permutation(permutation, guest.shape) == host.shape``; node
        ``A`` of the guest maps to ``apply_permutation(permutation, A)``.
        Neighbours remain neighbours (the coordinate that changes is simply
        relocated), so the dilation cost is 1 whenever the guest's edges are
        a subset of the host's edges under the renaming — i.e. for
        same-kind pairs and for mesh guests in torus hosts.
        """
        permuted_shape = apply_permutation(permutation, guest.shape)
        if tuple(permuted_shape) != tuple(host.shape):
            raise ShapeMismatchError(
                f"permutation {tuple(permutation)} maps shape {guest.shape} to "
                f"{tuple(permuted_shape)}, but the host shape is {host.shape}"
            )
        if guest.is_torus and host.is_mesh and not guest.is_hypercube:
            raise InvalidEmbeddingError(
                "a permutation embedding of a (non-hypercube) torus in a mesh does not "
                "preserve adjacency; use the same-shape T_L embedding instead"
            )
        return cls.from_callable(
            guest,
            host,
            lambda node: apply_permutation(permutation, node),
            strategy=strategy,
            predicted_dilation=1,
            notes={"permutation": tuple(permutation)},
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __getitem__(self, node: Sequence[int]) -> Node:
        return self.mapping[tuple(node)]

    def __contains__(self, node: Sequence[int]) -> bool:
        return tuple(node) in self.mapping

    def __len__(self) -> int:
        return len(self.mapping)

    def map_index(self, index: int) -> Node:
        """Image of the guest node with natural-order rank ``index``.

        For 1-dimensional guests this is the paper's integer-node shorthand:
        ``map_index(x)`` is the image of node ``x`` of the line/ring.
        """
        return self.mapping[self.guest.index_node(index)]

    def image(self) -> List[Node]:
        """All host nodes used by the embedding, in guest natural order."""
        return [self.mapping[node] for node in self.guest.nodes()]

    def inverse_mapping(self) -> Dict[Node, Node]:
        """Host-node -> guest-node mapping (defined on the image only)."""
        return {image: node for node, image in self.mapping.items()}

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`InvalidEmbeddingError` unless this is a valid embedding."""
        if self.guest.size > self.host.size:
            raise ShapeMismatchError(
                f"guest has {self.guest.size} nodes but host only {self.host.size}"
            )
        if len(self.mapping) != self.guest.size:
            raise InvalidEmbeddingError(
                f"mapping covers {len(self.mapping)} of {self.guest.size} guest nodes"
            )
        images = set()
        for node, image in self.mapping.items():
            if not self.guest.contains(node):
                raise InvalidEmbeddingError(f"{node!r} is not a node of the guest graph")
            if not self.host.contains(image):
                raise InvalidEmbeddingError(f"image {image!r} is not a node of the host graph")
            if image in images:
                raise InvalidEmbeddingError(f"image {image!r} is used more than once")
            images.add(image)

    def is_valid(self) -> bool:
        """True when :meth:`validate` does not raise."""
        try:
            self.validate()
        except (InvalidEmbeddingError, ShapeMismatchError):
            return False
        return True

    def is_bijective(self) -> bool:
        """True when the embedding uses every host node (same-size embeddings)."""
        return self.is_valid() and self.guest.size == self.host.size

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    def edge_dilations(self) -> List[int]:
        """Distance in the host between the images of every guest edge."""
        return [
            self.host.distance(self.mapping[a], self.mapping[b])
            for a, b in self.guest.edges()
        ]

    def dilation(self) -> int:
        """The measured dilation cost (Definition 1)."""
        dilations = self.edge_dilations()
        return max(dilations) if dilations else 0

    def average_dilation(self) -> float:
        """Mean distance in the host over all guest edges."""
        dilations = self.edge_dilations()
        return sum(dilations) / len(dilations) if dilations else 0.0

    def expansion_cost(self) -> float:
        """``|V_H| / |V_G|`` — always 1 for the paper's same-size embeddings."""
        return self.host.size / self.guest.size

    def edge_congestion(self) -> int:
        """Maximum number of guest edges routed over a single host edge.

        Each guest edge is routed along the dimension-ordered shortest path
        between its endpoint images; the congestion of a host edge is the
        number of such paths that traverse it.  (Congestion is not analysed
        by the paper but is a standard companion cost and is reported in the
        experiment harness.)
        """
        load: Dict[Tuple[Node, Node], int] = {}
        for a, b in self.guest.edges():
            path = dimension_order_path(self.host, self.mapping[a], self.mapping[b])
            for u, v in zip(path, path[1:]):
                key = (u, v) if self.host.node_index(u) < self.host.node_index(v) else (v, u)
                load[key] = load.get(key, 0) + 1
        return max(load.values()) if load else 0

    def matches_prediction(self) -> bool:
        """True when the measured dilation equals the theorem's prediction.

        If no prediction was recorded the check is vacuously true.  Note that
        the general-reduction torus->mesh case (Theorem 43(iii)) and the
        square chains only promise an *upper bound*; for those strategies the
        constructors record the bound under ``notes['dilation_is_upper_bound']``
        and this method checks ``measured <= predicted`` instead.
        """
        if self.predicted_dilation is None:
            return True
        measured = self.dilation()
        if self.notes.get("dilation_is_upper_bound"):
            return measured <= self.predicted_dilation
        return measured == self.predicted_dilation

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def compose(self, outer: "Embedding", *, strategy: Optional[str] = None) -> "Embedding":
        """The embedding ``outer ∘ self`` of ``self.guest`` in ``outer.host``.

        ``outer.guest`` must have the same kind and shape as ``self.host``
        (it is the intermediate graph of a chain such as ``G -> H' -> H``).
        The predicted dilation of the composition is the product of the two
        predictions when both are present (dilation costs compose at most
        multiplicatively); the flag ``dilation_is_upper_bound`` is propagated
        if either step only promises an upper bound.
        """
        if (self.host.kind, self.host.shape) != (outer.guest.kind, outer.guest.shape):
            raise ShapeMismatchError(
                f"cannot compose: inner host is {self.host!r} but outer guest is {outer.guest!r}"
            )
        mapping = {node: outer.mapping[image] for node, image in self.mapping.items()}
        predicted: Optional[int] = None
        if self.predicted_dilation is not None and outer.predicted_dilation is not None:
            predicted = self.predicted_dilation * outer.predicted_dilation
        notes: Dict[str, object] = {
            "chain": [self.strategy, outer.strategy],
            "inner_notes": self.notes,
            "outer_notes": outer.notes,
        }
        if self.notes.get("dilation_is_upper_bound") or outer.notes.get(
            "dilation_is_upper_bound"
        ):
            notes["dilation_is_upper_bound"] = True
        elif predicted is not None and predicted > 1:
            # Products of exact dilations are still only upper bounds for the
            # composite (a shorter route may exist in the final host).
            notes["dilation_is_upper_bound"] = True
        return Embedding(
            guest=self.guest,
            host=outer.host,
            mapping=mapping,
            strategy=strategy or f"{self.strategy} ∘ {outer.strategy}",
            predicted_dilation=predicted,
            notes=notes,
        )

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line human-readable description used by the CLI and examples."""
        predicted = (
            "?" if self.predicted_dilation is None else str(self.predicted_dilation)
        )
        return (
            f"{self.guest!r} -> {self.host!r} via {self.strategy}: "
            f"dilation {self.dilation()} (predicted {predicted})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Embedding({self.guest!r} -> {self.host!r}, strategy={self.strategy!r}, "
            f"predicted_dilation={self.predicted_dilation!r})"
        )
