"""The :class:`Embedding` type — an injection of guest nodes into host nodes.

Definition 1 of the paper: an embedding ``f`` of ``G = (V_G, E_G)`` in
``H = (V_H, E_H)`` is an injection ``f : V_G -> V_H``; its *dilation cost* is
the maximum distance in ``H`` between the images of adjacent nodes of ``G``.

The class stores the guest graph, the host graph and the mapping, and offers:

* validity checking (:meth:`Embedding.is_valid`, :meth:`Embedding.validate`)
  — the mapping must be total on the guest nodes, land inside the host node
  set and be injective;
* measured costs (:meth:`dilation`, :meth:`average_dilation`,
  :meth:`edge_congestion`) computed from the host graph's exact distances;
* composition (:meth:`compose`) used by the paper's multi-step constructions
  ``G -> G' -> H' -> H``; and
* convenient constructors (:meth:`from_callable`, :meth:`identity`,
  :meth:`from_permutation`, :meth:`from_index_array`).

Array-backed representation
---------------------------
An embedding has two equivalent representations and converts between them
lazily:

* ``mapping`` — the historical dict from guest node tuple to host node
  tuple, convenient for construction and inspection;
* :meth:`host_index_array` — a flat NumPy ``int64`` array ``h`` with
  ``h[i]`` the natural-order rank (``u_L^{-1}``) in the host of the image of
  the guest node of rank ``i``.

The array form is the hot path: all cost measures are computed over it with
vectorized mixed-radix arithmetic (:mod:`repro.numbering.arrays`), and
:meth:`compose` reduces to a single gather.  The pure-Python per-edge loops
are retained (the ``"loop"`` backend) as a cross-checked fallback and for
environments without NumPy.

Which path runs is resolved from the ambient execution context
(:mod:`repro.runtime.context`): wrap calls in
``with use_context(backend="loop")`` to force the reference implementations.
The historical per-call ``method=`` kwarg survives as a deprecated shim that
installs exactly that scoped context.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InvalidEmbeddingError, InvalidRadixError, ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..graphs.paths import dimension_order_path
from ..numbering.arrays import (
    digits_to_indices,
    indices_to_digits,
    require_numpy,
    stacked_edge_congestion,
)
from ..runtime.context import accepts_deprecated_method, use_array_path
from ..types import Node
from ..utils.listops import apply_permutation

__all__ = ["Embedding", "CostMethod", "use_array_path"]

#: Historical alias for the backend names (``"auto"``, ``"array"``,
#: ``"loop"``) — the type of the deprecated ``method=`` shim parameter; see
#: :data:`repro.runtime.context.BACKENDS`.
CostMethod = str



class Embedding:
    """An injection of the nodes of ``guest`` into the nodes of ``host``.

    Attributes
    ----------
    guest, host:
        The two graphs.  The paper studies same-size embeddings; the class
        allows ``host.size >= guest.size`` so that sub-graph embeddings can
        also be represented, but the constructors used by the paper's
        strategies always produce same-size (bijective) embeddings.
    mapping:
        Dict from guest node tuple to host node tuple.  Materialized lazily
        when the embedding was built from a host-index array.
    strategy:
        Human-readable name of the construction that produced the embedding.
    predicted_dilation:
        The dilation cost promised by the paper's theorem for this
        construction (``None`` when no prediction applies).  The measured
        dilation (:meth:`dilation`) is computed independently so the two can
        be compared in tests and experiment reports.
    notes:
        Free-form metadata (expansion factors used, chain steps, ...).
    """

    __slots__ = (
        "guest",
        "host",
        "strategy",
        "predicted_dilation",
        "notes",
        "_mapping",
        "_host_indices",
        "_edge_dilations",
    )

    def __init__(
        self,
        guest: CartesianGraph,
        host: CartesianGraph,
        mapping: Optional[Mapping[Node, Node]] = None,
        strategy: str = "custom",
        predicted_dilation: Optional[int] = None,
        notes: Optional[Dict[str, object]] = None,
        *,
        host_index_array=None,
    ):
        if mapping is None and host_index_array is None:
            raise InvalidEmbeddingError(
                "an Embedding needs a mapping dict or a host_index_array"
            )
        self.guest = guest
        self.host = host
        self.strategy = strategy
        self.predicted_dilation = predicted_dilation
        self.notes: Dict[str, object] = notes if notes is not None else {}
        self._mapping: Optional[Dict[Node, Node]] = (
            dict(mapping) if mapping is not None else None
        )
        self._host_indices = None
        self._edge_dilations = None
        if host_index_array is not None:
            np = require_numpy()
            array = np.ascontiguousarray(host_index_array, dtype=np.int64)
            if array.ndim != 1:
                raise InvalidEmbeddingError(
                    f"host_index_array must be 1-D, got shape {array.shape}"
                )
            self._host_indices = array

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_callable(
        cls,
        guest: CartesianGraph,
        host: CartesianGraph,
        func: Callable[[Node], Node],
        *,
        strategy: str = "custom",
        predicted_dilation: Optional[int] = None,
        notes: Optional[Dict[str, object]] = None,
    ) -> "Embedding":
        """Materialize an embedding from a node-mapping function."""
        mapping = {node: tuple(func(node)) for node in guest.nodes()}
        return cls(
            guest=guest,
            host=host,
            mapping=mapping,
            strategy=strategy,
            predicted_dilation=predicted_dilation,
            notes=dict(notes or {}),
        )

    @classmethod
    def from_index_array(
        cls,
        guest: CartesianGraph,
        host: CartesianGraph,
        host_indices,
        *,
        strategy: str = "custom",
        predicted_dilation: Optional[int] = None,
        notes: Optional[Dict[str, object]] = None,
    ) -> "Embedding":
        """Build an embedding from a flat host-index array.

        ``host_indices[i]`` is the natural-order rank in the host of the
        image of the guest node of rank ``i``.  The tuple ``mapping`` is
        materialized lazily on first access, so survey-scale pipelines that
        only measure costs never pay for it.
        """
        embedding = cls(
            guest=guest,
            host=host,
            strategy=strategy,
            predicted_dilation=predicted_dilation,
            notes=dict(notes or {}),
            host_index_array=host_indices,
        )
        if len(embedding._host_indices) != guest.size:
            raise InvalidEmbeddingError(
                f"host_index_array covers {len(embedding._host_indices)} of "
                f"{guest.size} guest nodes"
            )
        return embedding

    @classmethod
    @accepts_deprecated_method
    def identity(cls, guest: CartesianGraph, host: CartesianGraph) -> "Embedding":
        """The identity embedding between two graphs of the same shape.

        Used by Lemma 36 for same-shape pairs (except torus -> non-hypercube
        mesh, which needs :func:`repro.core.same_shape.torus_in_mesh_same_shape`).
        """
        if guest.shape != host.shape:
            raise ShapeMismatchError(
                f"identity embedding requires equal shapes, got {guest.shape} and {host.shape}"
            )
        if use_array_path():
            np = require_numpy()
            return cls.from_index_array(
                guest,
                host,
                np.arange(guest.size, dtype=np.int64),
                strategy="identity",
                predicted_dilation=1,
            )
        return cls.from_callable(
            guest, host, lambda node: node, strategy="identity", predicted_dilation=1
        )

    @classmethod
    @accepts_deprecated_method
    def from_permutation(
        cls,
        guest: CartesianGraph,
        host: CartesianGraph,
        permutation: Sequence[int],
        *,
        strategy: str = "permute-dimensions",
    ) -> "Embedding":
        """Embed by permuting coordinate positions.

        ``permutation`` must satisfy
        ``apply_permutation(permutation, guest.shape) == host.shape``; node
        ``A`` of the guest maps to ``apply_permutation(permutation, A)``.
        Neighbours remain neighbours (the coordinate that changes is simply
        relocated), so the dilation cost is 1 whenever the guest's edges are
        a subset of the host's edges under the renaming — i.e. for
        same-kind pairs and for mesh guests in torus hosts.
        """
        permuted_shape = apply_permutation(permutation, guest.shape)
        if tuple(permuted_shape) != tuple(host.shape):
            raise ShapeMismatchError(
                f"permutation {tuple(permutation)} maps shape {guest.shape} to "
                f"{tuple(permuted_shape)}, but the host shape is {host.shape}"
            )
        if guest.is_torus and host.is_mesh and not guest.is_hypercube:
            raise InvalidEmbeddingError(
                "a permutation embedding of a (non-hypercube) torus in a mesh does not "
                "preserve adjacency; use the same-shape T_L embedding instead"
            )
        if use_array_path():
            np = require_numpy()
            digits = indices_to_digits(np.arange(guest.size, dtype=np.int64), guest.shape)
            return cls.from_index_array(
                guest,
                host,
                digits_to_indices(digits[:, list(permutation)], host.shape),
                strategy=strategy,
                predicted_dilation=1,
                notes={"permutation": tuple(permutation)},
            )
        return cls.from_callable(
            guest,
            host,
            lambda node: apply_permutation(permutation, node),
            strategy=strategy,
            predicted_dilation=1,
            notes={"permutation": tuple(permutation)},
        )

    # ------------------------------------------------------------------ #
    # Representations
    # ------------------------------------------------------------------ #
    @property
    def mapping(self) -> Dict[Node, Node]:
        """Dict from guest node tuple to host node tuple (lazily materialized)."""
        if self._mapping is None:
            guest_base = self.guest.radix_base
            host_base = self.host.radix_base
            self._mapping = {
                guest_base.to_digits(rank): host_base.to_digits(int(image))
                for rank, image in enumerate(self._host_indices)
            }
        return self._mapping

    def host_index_array(self):
        """The flat array form: host rank of the image of guest rank ``i``.

        Cached after the first call; building it from a dict ``mapping`` is a
        one-off O(n·d) conversion.  Requires NumPy.
        """
        if self._host_indices is None:
            np = require_numpy()
            guest_base = self.guest.radix_base
            host_base = self.host.radix_base
            mapping = self._mapping
            self._host_indices = np.fromiter(
                (
                    host_base.from_digits(mapping[guest_base.to_digits(rank)])
                    for rank in range(self.guest.size)
                ),
                dtype=np.int64,
                count=self.guest.size,
            )
        return self._host_indices

    def guest_index_array(self):
        """The guest ranks ``0..|V_G|-1`` (trivially ``arange``; for symmetry)."""
        np = require_numpy()
        return np.arange(self.guest.size, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __getitem__(self, node: Sequence[int]) -> Node:
        return self.mapping[tuple(node)]

    def __contains__(self, node: Sequence[int]) -> bool:
        return tuple(node) in self.mapping

    def __len__(self) -> int:
        if self._mapping is not None:
            return len(self._mapping)
        return len(self._host_indices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Embedding):
            return NotImplemented
        return (
            self.guest == other.guest
            and self.host == other.host
            and self.strategy == other.strategy
            and self.predicted_dilation == other.predicted_dilation
            and self.notes == other.notes
            and self.mapping == other.mapping
        )

    def map_index(self, index: int) -> Node:
        """Image of the guest node with natural-order rank ``index``.

        For 1-dimensional guests this is the paper's integer-node shorthand:
        ``map_index(x)`` is the image of node ``x`` of the line/ring.
        """
        if self._mapping is None:
            if not 0 <= index < len(self._host_indices):
                # Mirror the dict-backed path, where guest.index_node raises;
                # otherwise NumPy's negative indexing would return a
                # plausible-but-wrong node.
                raise InvalidRadixError(
                    f"value {index} is out of range for radix-base "
                    f"{self.guest.shape} (size {self.guest.size})"
                )
            return self.host.index_node(int(self._host_indices[index]))
        return self._mapping[self.guest.index_node(index)]

    def image(self) -> List[Node]:
        """All host nodes used by the embedding, in guest natural order."""
        return [self.mapping[node] for node in self.guest.nodes()]

    def inverse_mapping(self) -> Dict[Node, Node]:
        """Host-node -> guest-node mapping (defined on the image only)."""
        return {image: node for node, image in self.mapping.items()}

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`InvalidEmbeddingError` unless this is a valid embedding."""
        if self.guest.size > self.host.size:
            raise ShapeMismatchError(
                f"guest has {self.guest.size} nodes but host only {self.host.size}"
            )
        if self._mapping is None and use_array_path():
            self._validate_array()
            return
        if len(self.mapping) != self.guest.size:
            raise InvalidEmbeddingError(
                f"mapping covers {len(self.mapping)} of {self.guest.size} guest nodes"
            )
        images = set()
        for node, image in self.mapping.items():
            if not self.guest.contains(node):
                raise InvalidEmbeddingError(f"{node!r} is not a node of the guest graph")
            if not self.host.contains(image):
                raise InvalidEmbeddingError(f"image {image!r} is not a node of the host graph")
            if image in images:
                raise InvalidEmbeddingError(f"image {image!r} is used more than once")
            images.add(image)

    def _validate_array(self) -> None:
        """Vectorized validity check for array-backed embeddings."""
        np = require_numpy()
        indices = self._host_indices
        if len(indices) != self.guest.size:
            raise InvalidEmbeddingError(
                f"mapping covers {len(indices)} of {self.guest.size} guest nodes"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= self.host.size):
            bad = int(indices[(indices < 0) | (indices >= self.host.size)][0])
            raise InvalidEmbeddingError(
                f"image rank {bad} is not a node of the host graph"
            )
        values, counts = np.unique(indices, return_counts=True)
        if values.size != indices.size:
            duplicate = self.host.index_node(int(values[counts > 1][0]))
            raise InvalidEmbeddingError(f"image {duplicate!r} is used more than once")

    def is_valid(self) -> bool:
        """True when :meth:`validate` does not raise."""
        try:
            self.validate()
        except (InvalidEmbeddingError, ShapeMismatchError):
            return False
        return True

    def is_bijective(self) -> bool:
        """True when the embedding uses every host node (same-size embeddings)."""
        return self.is_valid() and self.guest.size == self.host.size

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    def edge_dilations(self) -> List[int]:
        """Distance in the host between the images of every guest edge.

        The historical per-edge Python loop, in :meth:`CartesianGraph.edges`
        order.  Kept as the cross-checked reference implementation of the
        vectorized :meth:`edge_dilation_array`.
        """
        return [
            self.host.distance(self.mapping[a], self.mapping[b])
            for a, b in self.guest.edges()
        ]

    def edge_dilation_array(self):
        """Vectorized per-edge host distances (``int64`` array).

        Edge order follows :meth:`CartesianGraph.edge_index_arrays` (grouped
        by dimension), so the array is a permutation of
        :meth:`edge_dilations`; the max/mean used by the cost measures are
        unaffected.  Cached — dilation, average dilation and the prediction
        check share one computation.  Requires NumPy.
        """
        if self._edge_dilations is None:
            u, v = self.guest.edge_index_arrays()
            images = self.host_index_array()
            self._edge_dilations = self.host.distance_indices(images[u], images[v])
        return self._edge_dilations

    @accepts_deprecated_method
    def dilation(self) -> int:
        """The measured dilation cost (Definition 1)."""
        if use_array_path():
            dilations = self.edge_dilation_array()
            return int(dilations.max()) if dilations.size else 0
        dilations = self.edge_dilations()
        return max(dilations) if dilations else 0

    @accepts_deprecated_method
    def average_dilation(self) -> float:
        """Mean distance in the host over all guest edges."""
        if use_array_path():
            dilations = self.edge_dilation_array()
            return float(dilations.mean()) if dilations.size else 0.0
        dilations = self.edge_dilations()
        return sum(dilations) / len(dilations) if dilations else 0.0

    def expansion_cost(self) -> float:
        """``|V_H| / |V_G|`` — always 1 for the paper's same-size embeddings."""
        return self.host.size / self.guest.size

    @accepts_deprecated_method
    def edge_congestion(self) -> int:
        """Maximum number of guest edges routed over a single host edge.

        Each guest edge is routed along the dimension-ordered shortest path
        between its endpoint images; the congestion of a host edge is the
        number of such paths that traverse it.  (Congestion is not analysed
        by the paper but is a standard companion cost and is reported in the
        experiment harness.)  The vectorized path reproduces the per-edge
        loop exactly, including the torus tie-break towards increasing
        coordinates.
        """
        if use_array_path():
            return self._edge_congestion_array()
        load: Dict[Tuple[Node, Node], int] = {}
        for a, b in self.guest.edges():
            path = dimension_order_path(self.host, self.mapping[a], self.mapping[b])
            for u, v in zip(path, path[1:]):
                key = (u, v) if self.host.node_index(u) < self.host.node_index(v) else (v, u)
                load[key] = load.get(key, 0) + 1
        return max(load.values()) if load else 0

    def _edge_congestion_array(self) -> int:
        """Vectorized congestion via the stacked difference-array kernel.

        Delegates to :func:`repro.numbering.arrays.stacked_edge_congestion`
        with a batch of one, so this method and the survey's batched
        evaluation share a single implementation.
        """
        u, v = self.guest.edge_index_arrays()
        if u.size == 0:
            return 0
        return int(
            stacked_edge_congestion(
                self.host_index_array(),
                u,
                v,
                self.host.shape,
                torus=self.host.is_torus,
            )[0]
        )

    @accepts_deprecated_method
    def matches_prediction(self, *, measured: Optional[int] = None) -> bool:
        """True when the measured dilation equals the theorem's prediction.

        If no prediction was recorded the check is vacuously true.  Note that
        the general-reduction torus->mesh case (Theorem 43(iii)) and the
        square chains only promise an *upper bound*; for those strategies the
        constructors record the bound under ``notes['dilation_is_upper_bound']``
        and this method checks ``measured <= predicted`` instead.

        Callers that already measured the dilation can pass it via
        ``measured`` to avoid recomputation (and to keep a forced backend
        override consistent across all reported numbers).
        """
        if self.predicted_dilation is None:
            return True
        if measured is None:
            measured = self.dilation()
        if self.notes.get("dilation_is_upper_bound"):
            return measured <= self.predicted_dilation
        return measured == self.predicted_dilation

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    @accepts_deprecated_method
    def compose(
        self, outer: "Embedding", *, strategy: Optional[str] = None
    ) -> "Embedding":
        """The embedding ``outer ∘ self`` of ``self.guest`` in ``outer.host``.

        ``outer.guest`` must have the same kind and shape as ``self.host``
        (it is the intermediate graph of a chain such as ``G -> H' -> H``).
        The predicted dilation of the composition is the product of the two
        predictions when both are present (dilation costs compose at most
        multiplicatively); the flag ``dilation_is_upper_bound`` is propagated
        if either step only promises an upper bound.

        In the array representation composition is a single gather:
        ``composed[i] = outer_h[self_h[i]]`` (the inner image rank in
        ``self.host`` *is* the rank in ``outer.guest``).
        """
        if (self.host.kind, self.host.shape) != (outer.guest.kind, outer.guest.shape):
            raise ShapeMismatchError(
                f"cannot compose: inner host is {self.host!r} but outer guest is {outer.guest!r}"
            )
        predicted: Optional[int] = None
        if self.predicted_dilation is not None and outer.predicted_dilation is not None:
            predicted = self.predicted_dilation * outer.predicted_dilation
        notes: Dict[str, object] = {
            "chain": [self.strategy, outer.strategy],
            "inner_notes": self.notes,
            "outer_notes": outer.notes,
        }
        if self.notes.get("dilation_is_upper_bound") or outer.notes.get(
            "dilation_is_upper_bound"
        ):
            notes["dilation_is_upper_bound"] = True
        elif predicted is not None and predicted > 1:
            # Products of exact dilations are still only upper bounds for the
            # composite (a shorter route may exist in the final host).
            notes["dilation_is_upper_bound"] = True
        name = strategy or f"{self.strategy} ∘ {outer.strategy}"
        if use_array_path():
            return Embedding.from_index_array(
                self.guest,
                outer.host,
                outer.host_index_array()[self.host_index_array()],
                strategy=name,
                predicted_dilation=predicted,
                notes=notes,
            )
        mapping = {node: outer.mapping[image] for node, image in self.mapping.items()}
        return Embedding(
            guest=self.guest,
            host=outer.host,
            mapping=mapping,
            strategy=name,
            predicted_dilation=predicted,
            notes=notes,
        )

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line human-readable description used by the CLI and examples."""
        predicted = (
            "?" if self.predicted_dilation is None else str(self.predicted_dilation)
        )
        return (
            f"{self.guest!r} -> {self.host!r} via {self.strategy}: "
            f"dilation {self.dilation()} (predicted {predicted})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Embedding({self.guest!r} -> {self.host!r}, strategy={self.strategy!r}, "
            f"predicted_dilation={self.predicted_dilation!r})"
        )
