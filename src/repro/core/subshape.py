"""Unequal-size (expansion) embeddings: a smaller guest in a larger host.

The paper studies same-size embeddings only, but its constructions extend
naturally to a guest that is *strictly smaller* than the host: pick a
componentwise sub-box of the host with exactly ``|V_G|`` nodes, embed the
guest in that sub-box with the same-size machinery, and lift the result by
padding the unused host coordinates with zeros.  The resulting map is
injective (a sub-embedding); dilation and congestion are measured on the
induced image exactly as for bijections — the cost kernels in
:mod:`repro.analysis.metrics` already index images by guest rank and never
assume surjectivity.

``find_subshape`` is the deterministic factor search: at each host dimension
it tries the divisors of the remaining guest size in *descending* order, so
the chosen sub-box keeps its leading extents as large as possible (and the
search is reproducible across runs and backends).  The inner same-size
embedding targets the *mesh* restriction of the sub-box: a mesh sub-box is a
genuine subgraph of both mesh and torus hosts, so every predicted dilation of
the inner embedding is preserved (exactly for mesh hosts, as an upper bound
for torus hosts where wraparound can only shorten image distances).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..exceptions import UnsupportedEmbeddingError
from ..graphs.base import CartesianGraph, Mesh
from ..numbering.arrays import digits_to_indices, indices_to_digits, require_numpy
from .embedding import Embedding, use_array_path

__all__ = ["find_subshape", "embed_subshape"]


def find_subshape(size: int, host_shape: Sequence[int]) -> Optional[Tuple[int, ...]]:
    """A componentwise factorization of ``size`` that fits inside ``host_shape``.

    Returns a tuple ``sub`` with ``len(sub) == len(host_shape)``,
    ``prod(sub) == size`` and ``1 <= sub[j] <= host_shape[j]`` for every
    ``j`` — the extents of a sub-box of the host with exactly ``size``
    nodes — or ``None`` when no such factorization exists (e.g. ``size``
    has a prime factor larger than every host extent).

    The search is deterministic: dimensions left to right, divisors in
    descending order, first complete factorization wins.
    """
    shape = tuple(int(length) for length in host_shape)
    if size < 1:
        return None

    def search(position: int, remaining: int) -> Optional[Tuple[int, ...]]:
        if position == len(shape):
            return () if remaining == 1 else None
        for extent in range(min(shape[position], remaining), 0, -1):
            if remaining % extent == 0:
                rest = search(position + 1, remaining // extent)
                if rest is not None:
                    return (extent,) + rest
        return None

    return search(0, size)


def subshape_inner_shape(sub: Sequence[int]) -> Tuple[int, ...]:
    """The shape of the inner same-size target: the non-trivial extents of ``sub``."""
    inner = tuple(extent for extent in sub if extent > 1)
    return inner if inner else (1,)


def embed_subshape(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """Embed a strictly smaller ``guest`` injectively into ``host``.

    Raises :class:`~repro.exceptions.UnsupportedEmbeddingError` when no
    sub-box of the host matches the guest size, or when the inner same-size
    embedding into the sub-box is itself unsupported.
    """
    from .dispatch import embed  # local import: dispatch imports this module

    sub = find_subshape(guest.size, host.shape)
    if sub is None:
        raise UnsupportedEmbeddingError(
            f"no sub-box of host shape {host.shape} has exactly {guest.size} nodes; "
            "the guest cannot be embedded as a subshape"
        )
    inner_shape = subshape_inner_shape(sub)
    inner_positions = [position for position, extent in enumerate(sub) if extent > 1]
    if not inner_positions:
        # Degenerate single-node guest: pin it to the host origin.
        inner_positions = [0]
    inner = embed(guest, Mesh(inner_shape))

    extents = "x".join(str(extent) for extent in sub)
    strategy = f"subshape:{extents}∘{inner.strategy}"
    notes = {
        "subshape": sub,
        "inner_strategy": inner.strategy,
        "dilation_is_upper_bound": bool(
            host.is_torus or inner.notes.get("dilation_is_upper_bound", False)
        ),
    }

    if use_array_path():
        np = require_numpy()
        inner_digits = indices_to_digits(inner.host_index_array(), inner_shape)
        full = np.zeros((guest.size, host.dimension), dtype=np.int64)
        for column, position in enumerate(inner_positions):
            full[:, position] = inner_digits[:, column]
        return Embedding.from_index_array(
            guest,
            host,
            digits_to_indices(full, host.shape),
            strategy=strategy,
            predicted_dilation=inner.predicted_dilation,
            notes=notes,
        )

    def image(node):
        coordinates = [0] * host.dimension
        for column, position in enumerate(inner_positions):
            coordinates[position] = inner[node][column]
        return tuple(coordinates)

    return Embedding.from_callable(
        guest,
        host,
        image,
        strategy=strategy,
        predicted_dilation=inner.predicted_dilation,
        notes=notes,
    )
