"""Reduction of shapes (Definitions 37 and 41) and the factor searches.

Two flavours of reduction are defined by the paper for lowering-dimension
embeddings (guest dimension ``d`` greater than host dimension ``c``):

**Simple reduction** (Definition 37): ``M`` is a simple reduction of ``L``
with reduction factor ``V = (V_1, ..., V_c)`` when ``L`` is an expansion of
``M`` with expansion factor ``V`` — every host length ``m_i`` is the product
of a group of guest lengths.  The search simply reuses the expansion-factor
machinery with the roles of the shapes swapped; Theorem 39 additionally wants
the components of each ``V_i`` sorted in non-increasing order (which
minimizes the resulting dilation), handled by
:meth:`SimpleReductionFactor.sorted_non_increasing`.

**General reduction** (Definition 41, requires ``c < d < 2c``): ``L`` splits
(as a multiset) into a *multiplicant* sublist ``L'`` of length ``c`` and a
*multiplier* sublist ``L''`` of length ``d - c``; each ``l''_i`` factors into
a list ``S_i`` of integers > 1; writing ``S̄ = S_1 ∘ ... ∘ S_{d-c}`` of
length ``b`` with ``d - c < b ≤ c``, the host shape ``M`` must be a
permutation of ``[S̄ ∘ (1, ..., 1)] × L'`` — i.e. each host length is either
a multiplicant length or the product of a multiplicant length and one
``s``-value.  :func:`find_general_reduction` performs the (backtracking)
search for such a decomposition and returns it in the arranged form needed by
the embedding functions of Definition 42.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import NoReductionError
from ..utils.listops import concat, is_permutation_of, product
from ..utils.intmath import factorizations_into_parts
from .expansion import find_expansion_factor

__all__ = [
    "SimpleReductionFactor",
    "GeneralReductionFactor",
    "is_simple_reduction",
    "find_simple_reduction",
    "is_general_reduction",
    "find_general_reduction",
]


# --------------------------------------------------------------------------- #
# Simple reduction
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimpleReductionFactor:
    """A reduction factor ``V = (V_1, ..., V_c)`` of ``L`` into ``M`` (Definition 37).

    ``groups[i]`` multiplies to the host length ``m_{i+1}``; the concatenation
    of the groups is a permutation of the guest shape ``L``.
    """

    groups: Tuple[Tuple[int, ...], ...]

    @property
    def flattened(self) -> Tuple[int, ...]:
        """``V̄ = V_1 ∘ ... ∘ V_c`` — the rearranged guest shape."""
        return concat(*self.groups)

    @property
    def host_shape(self) -> Tuple[int, ...]:
        """The host shape recovered as per-group products."""
        return tuple(product(group) for group in self.groups)

    def sorted_non_increasing(self) -> "SimpleReductionFactor":
        """Sort the components of every group in non-increasing order.

        Theorem 39 assumes this ordering; it minimizes the dilation
        ``max_i m_i / l_{v_i}`` because the *largest* component of each group
        is the one excluded from the ratio.
        """
        return SimpleReductionFactor(
            tuple(tuple(sorted(group, reverse=True)) for group in self.groups)
        )

    def sorted_non_decreasing(self) -> "SimpleReductionFactor":
        """The adversarial ordering, used by the ablation benchmark."""
        return SimpleReductionFactor(
            tuple(tuple(sorted(group)) for group in self.groups)
        )

    def dilation(self) -> int:
        """``max_i m_i / l_{v_i}`` for the current component ordering (Theorem 39)."""
        return max(product(group) // group[0] for group in self.groups)

    def reduces(self, source: Sequence[int], target: Sequence[int]) -> bool:
        """True when this factor witnesses ``target`` as a simple reduction of ``source``."""
        return self.host_shape == tuple(target) and is_permutation_of(
            self.flattened, tuple(source)
        )

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)


def is_simple_reduction(source: Sequence[int], target: Sequence[int]) -> bool:
    """True when ``target`` (length c) is a simple reduction of ``source`` (length d > c)."""
    source = tuple(source)
    target = tuple(target)
    if len(source) <= len(target):
        return False
    return find_expansion_factor(target, source) is not None


def find_simple_reduction(
    source: Sequence[int], target: Sequence[int]
) -> Optional[SimpleReductionFactor]:
    """A simple-reduction factor of ``source`` into ``target``, sorted non-increasingly."""
    source = tuple(source)
    target = tuple(target)
    if len(source) <= len(target):
        return None
    expansion = find_expansion_factor(target, source)
    if expansion is None:
        return None
    return SimpleReductionFactor(expansion.lists).sorted_non_increasing()


# --------------------------------------------------------------------------- #
# General reduction
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeneralReductionFactor:
    """A general-reduction decomposition (Definition 41), arranged for Definition 42.

    Attributes
    ----------
    multiplicant:
        The ordered multiplicant sublist ``L'`` (length ``c``); its first
        ``b`` entries are the ones multiplied by the ``s``-values.
    multiplier:
        The ordered multiplier sublist ``L''`` (length ``d - c``).
    s_groups:
        The lists ``S_1, ..., S_{d-c}``; ``Π S_i = multiplier[i]`` and every
        component exceeds 1.
    """

    multiplicant: Tuple[int, ...]
    multiplier: Tuple[int, ...]
    s_groups: Tuple[Tuple[int, ...], ...]

    @property
    def s_flat(self) -> Tuple[int, ...]:
        """``S̄ = S_1 ∘ ... ∘ S_{d-c}`` of length ``b``."""
        return concat(*self.s_groups)

    @property
    def b(self) -> int:
        """Number of multiplied host dimensions."""
        return len(self.s_flat)

    @property
    def c(self) -> int:
        return len(self.multiplicant)

    @property
    def d(self) -> int:
        return len(self.multiplicant) + len(self.multiplier)

    @property
    def rearranged_source(self) -> Tuple[int, ...]:
        """``L' ∘ L''`` — the guest shape after the permutation α."""
        return self.multiplicant + self.multiplier

    @property
    def host_arrangement(self) -> Tuple[int, ...]:
        """``[S̄ ∘ (1, ..., 1)] × L'`` — the host shape before the permutation β."""
        s = self.s_flat
        multiplied = tuple(s_j * l_j for s_j, l_j in zip(s, self.multiplicant))
        return multiplied + self.multiplicant[len(s):]

    def dilation(self) -> int:
        """``max(s_1, ..., s_b)`` — the dilation of Theorem 43 (cases i–ii)."""
        return max(self.s_flat)

    def reduces(self, source: Sequence[int], target: Sequence[int]) -> bool:
        """True when this decomposition witnesses ``target`` as a general reduction of ``source``."""
        source = tuple(source)
        target = tuple(target)
        if not is_permutation_of(self.rearranged_source, source):
            return False
        if not is_permutation_of(self.host_arrangement, target):
            return False
        if tuple(product(group) for group in self.s_groups) != self.multiplier:
            return False
        if any(part <= 1 for group in self.s_groups for part in group):
            return False
        b = self.b
        return self.d - self.c < b <= self.c


def _multiset_factorizations(value: int) -> List[Tuple[int, ...]]:
    """Distinct multiset factorizations of ``value`` into parts > 1 (sorted descending)."""
    seen = set()
    result: List[Tuple[int, ...]] = []
    for parts in factorizations_into_parts(value, min_part=2):
        key = tuple(sorted(parts, reverse=True))
        if key not in seen:
            seen.add(key)
            result.append(key)
    return result


def _match_pairs(
    s_values: Tuple[int, ...],
    multiplicant_pool: Counter,
    target_pool: Counter,
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Pair each ``s`` with a multiplicant length so products cover the target multiset.

    Returns ``(paired_multiplicants, unpaired_multiplicants)`` — the
    multiplicant lengths aligned with ``s_values`` followed by the leftover
    ones — or ``None`` when no pairing exists.  The leftover multiplicants
    must coincide (as a multiset) with the target lengths not produced by a
    pairing.
    """

    def recurse(
        index: int, pool: Counter, remaining_target: Counter, chosen: Tuple[int, ...]
    ) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        if index == len(s_values):
            if pool == remaining_target:
                leftover = tuple(sorted(pool.elements(), reverse=True))
                return chosen, leftover
            return None
        s = s_values[index]
        for candidate in sorted(pool):
            produced = s * candidate
            if remaining_target.get(produced, 0) == 0:
                continue
            pool[candidate] -= 1
            if pool[candidate] == 0:
                del pool[candidate]
            remaining_target[produced] -= 1
            if remaining_target[produced] == 0:
                del remaining_target[produced]
            result = recurse(index + 1, pool, remaining_target, chosen + (candidate,))
            pool[candidate] += 1
            remaining_target[produced] += 1
            if result is not None:
                return result
        return None

    return recurse(0, multiplicant_pool.copy(), target_pool.copy(), ())


def iter_general_reductions(
    source: Sequence[int], target: Sequence[int], *, limit: Optional[int] = None
) -> Iterator[GeneralReductionFactor]:
    """Enumerate general-reduction decompositions of ``source`` into ``target``."""
    source = tuple(source)
    target = tuple(target)
    d, c = len(source), len(target)
    if not (c < d < 2 * c) or product(source) != product(target):
        return
    count = 0
    seen_multipliers: set[Tuple[int, ...]] = set()
    indices = range(d)
    for multiplier_positions in itertools.combinations(indices, d - c):
        multiplier = tuple(sorted((source[i] for i in multiplier_positions), reverse=True))
        if multiplier in seen_multipliers:
            continue
        seen_multipliers.add(multiplier)
        multiplicant_counter = Counter(source)
        for value in multiplier:
            multiplicant_counter[value] -= 1
            if multiplicant_counter[value] == 0:
                del multiplicant_counter[value]
        # Choose a factorization for every multiplier entry.
        options = [_multiset_factorizations(value) for value in multiplier]
        for combo in itertools.product(*options):
            s_flat = concat(*combo)
            b = len(s_flat)
            if not (d - c < b <= c):
                continue
            pairing = _match_pairs(s_flat, multiplicant_counter, Counter(target))
            if pairing is None:
                continue
            paired, leftover = pairing
            factor = GeneralReductionFactor(
                multiplicant=paired + leftover,
                multiplier=multiplier,
                s_groups=tuple(combo),
            )
            if factor.reduces(source, target):
                count += 1
                yield factor
                if limit is not None and count >= limit:
                    return


def find_general_reduction(
    source: Sequence[int], target: Sequence[int]
) -> Optional[GeneralReductionFactor]:
    """The first general-reduction decomposition found, or ``None``."""
    for factor in iter_general_reductions(source, target, limit=1):
        return factor
    return None


def is_general_reduction(source: Sequence[int], target: Sequence[int]) -> bool:
    """True when ``target`` is a general reduction of ``source`` (Definition 41)."""
    return find_general_reduction(source, target) is not None


def require_reduction(
    source: Sequence[int], target: Sequence[int]
) -> SimpleReductionFactor | GeneralReductionFactor:
    """Find a simple reduction first, then a general one; raise if neither exists."""
    simple = find_simple_reduction(source, target)
    if simple is not None:
        return simple
    general = find_general_reduction(source, target)
    if general is not None:
        return general
    raise NoReductionError(
        f"shape {tuple(target)} is neither a simple nor a general reduction of {tuple(source)}"
    )
