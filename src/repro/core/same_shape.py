"""Embeddings between a torus and a mesh of the same shape (Lemma 36).

Given two graphs of the same shape ``L = (l_1, ..., l_d)``:

* if the guest is a mesh, or both graphs are toruses, or both are
  hypercubes, the identity map is an embedding with dilation 1;
* if the guest is a torus and the host is a mesh (and they are not
  hypercubes) the identity fails (wrap-around edges stretch across the whole
  mesh); the paper's ``T_L`` — applying ``t_{l_i}`` to every coordinate —
  achieves the optimal dilation 2.

``T_L`` works because ``t_l`` (Definition 14) is a cyclic sequence of
``0..l-1`` with spread 2: torus neighbours in any dimension differ by 1
modulo ``l``, so their ``t``-relabelled coordinates differ by at most 2.

Both builders resolve the construction backend from the ambient execution
context (:mod:`repro.runtime.context`): the array backend relabels all ``N``
node rows in one :func:`repro.numbering.batch.t_columns` call, the loop
backend is the retained per-node reference.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import ShapeMismatchError
from ..graphs.base import CartesianGraph
from ..numbering.arrays import digits_to_indices, indices_to_digits, require_numpy
from ..numbering.batch import t_columns
from ..runtime.context import accepts_deprecated_method
from ..types import Node
from .basic import t_value
from .embedding import Embedding, use_array_path

__all__ = ["t_vector_value", "same_shape_embedding", "torus_in_mesh_same_shape"]


def t_vector_value(shape: Sequence[int], node: Sequence[int]) -> Node:
    """``T_L((x_1, ..., x_d)) = (t_{l_1}(x_1), ..., t_{l_d}(x_d))`` (Definition 35)."""
    if len(shape) != len(node):
        raise ValueError("shape and node must have the same dimension")
    return tuple(t_value(length, coordinate) for length, coordinate in zip(shape, node))


@accepts_deprecated_method
def torus_in_mesh_same_shape(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """The ``T_L`` embedding of an ``L``-torus in an ``L``-mesh (dilation 2)."""
    if guest.shape != host.shape:
        raise ShapeMismatchError(
            f"same-shape embedding requires equal shapes, got {guest.shape} and {host.shape}"
        )
    shape = guest.shape
    notes = {"dilation_is_upper_bound": guest.is_hypercube or min(shape) <= 2}
    if use_array_path():
        np = require_numpy()
        digits = indices_to_digits(np.arange(guest.size, dtype=np.int64), shape)
        return Embedding.from_index_array(
            guest,
            host,
            digits_to_indices(t_columns(shape, digits), shape),
            strategy="same-shape:T_L",
            predicted_dilation=2,
            notes=notes,
        )
    return Embedding.from_callable(
        guest,
        host,
        lambda node: t_vector_value(shape, node),
        strategy="same-shape:T_L",
        predicted_dilation=2,
        notes=notes,
    )


@accepts_deprecated_method
def same_shape_embedding(guest: CartesianGraph, host: CartesianGraph) -> Embedding:
    """The optimal same-shape embedding of Lemma 36.

    Identity (dilation 1) except for a non-hypercube torus guest in a mesh
    host, which uses ``T_L`` (dilation 2).
    """
    if guest.shape != host.shape:
        raise ShapeMismatchError(
            f"same-shape embedding requires equal shapes, got {guest.shape} and {host.shape}"
        )
    if guest.is_torus and host.is_mesh and not guest.is_hypercube:
        return torus_in_mesh_same_shape(guest, host)
    return Embedding.identity(guest, host)
