"""Basic embeddings: a line or a ring in a mesh or a torus (Section 3).

The section's results, all reproduced here:

* ``f_L`` (Definition 9) embeds a **line** in an ``L``-mesh or ``L``-torus
  with **dilation 1** (Theorem 13).
* ``g_L = f_L ∘ t_n`` (Definitions 14–15) embeds a **ring** in an ``L``-mesh
  with **dilation 2** (Theorem 17); this is optimal when the mesh has odd
  size or is a line of size > 2.
* ``r_L`` (Definition 20) embeds a ring in a 2-dimensional mesh whose first
  dimension is even with **dilation 1** (Lemma 21) and always has unit
  ``δt``-spread (Lemma 26).
* ``h_L`` (Definition 22) embeds a ring in a mesh of dimension ≥ 2 whose
  first dimension is even with **dilation 1** (Lemma 23, Theorem 24), and a
  ring in any ``L``-torus with **dilation 1** (Lemma 27, Theorem 28).

Each ``*_value`` function is the pointwise map of the paper; the
``*_sequence`` helpers materialize the whole sequence; the high-level
builders return fully validated :class:`~repro.core.embedding.Embedding`
objects with the theorem's predicted dilation attached.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..exceptions import InvalidRadixError, UnsupportedEmbeddingError
from ..graphs.base import CartesianGraph, Line, Ring
from ..numbering.arrays import digits_to_indices, require_numpy
from ..numbering.batch import f_flat, g_flat, h_digits, h_flat
from ..numbering.graycode import reflected_digit
from ..numbering.radix import RadixBase
from ..runtime.context import accepts_deprecated_method
from ..types import Node
from ..utils.listops import apply_permutation, concat, invert_permutation
from .embedding import Embedding, use_array_path

__all__ = [
    "t_value",
    "t_sequence",
    "f_value",
    "f_sequence",
    "g_value",
    "g_sequence",
    "r_value",
    "r_sequence",
    "h_value",
    "h_sequence",
    "even_first_permutation",
    "line_in_graph_embedding",
    "ring_in_graph_embedding",
    "predicted_ring_dilation",
]


# --------------------------------------------------------------------------- #
# t_n : [n] -> [n]  (Definition 14)
# --------------------------------------------------------------------------- #
def t_value(n: int, x: int) -> int:
    """The function ``t_n`` of Definition 14.

    ``t_n`` lists ``0, 2, 4, ...`` followed by the odd numbers in decreasing
    order, so that as a *cyclic* sequence of the integers ``0..n-1`` its
    spread (maximum absolute difference of successive elements) is 2.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 <= x < n:
        raise ValueError(f"x={x} out of range [0, {n})")
    if n % 2 == 0:
        if x <= n // 2 - 1:
            return 2 * x
        return 2 * (n - x) - 1
    if x <= (n - 1) // 2:
        return 2 * x
    return 2 * (n - x) - 1


def t_sequence(n: int) -> List[int]:
    """The full sequence ``t_n(0), ..., t_n(n-1)``."""
    return [t_value(n, x) for x in range(n)]


# --------------------------------------------------------------------------- #
# f_L : [n] -> Ω_L  (Definition 9)
# --------------------------------------------------------------------------- #
def _as_base(base: RadixBase | Sequence[int]) -> RadixBase:
    return base if isinstance(base, RadixBase) else RadixBase(base)


def f_value(base: RadixBase | Sequence[int], x: int) -> Node:
    """``f_L(x)`` — the mixed-radix reflected Gray code (Definition 9)."""
    base = _as_base(base)
    if not 0 <= x < base.size:
        raise InvalidRadixError(f"x={x} out of range [0, {base.size})")
    return tuple(reflected_digit(base, x, i) for i in range(1, base.dimension + 1))


def f_sequence(base: RadixBase | Sequence[int]) -> List[Node]:
    """The sequence ``f_L(0), ..., f_L(n-1)`` (unit δm- and δt-spread)."""
    base = _as_base(base)
    return [f_value(base, x) for x in range(base.size)]


# --------------------------------------------------------------------------- #
# g_L = f_L ∘ t_n : [n] -> Ω_L  (Definition 15)
# --------------------------------------------------------------------------- #
def g_value(base: RadixBase | Sequence[int], x: int) -> Node:
    """``g_L(x) = f_L(t_n(x))`` (Definition 15); cyclic δm-spread 2."""
    base = _as_base(base)
    return f_value(base, t_value(base.size, x))


def g_sequence(base: RadixBase | Sequence[int]) -> List[Node]:
    """The cyclic sequence ``g_L`` (δm-spread 2)."""
    base = _as_base(base)
    return [g_value(base, x) for x in range(base.size)]


# --------------------------------------------------------------------------- #
# r_L : [n] -> Ω_L for 2-dimensional L  (Definition 20)
# --------------------------------------------------------------------------- #
def r_value(base: RadixBase | Sequence[int], x: int) -> Node:
    """``r_L(x)`` for a 2-dimensional radix-base ``L = (l_1, l_2)`` (Definition 20).

    The sequence walks down the first column of the ``(l_1, l_2)``-mesh and
    then snakes through the remaining ``(l_1, l_2 - 1)`` sub-mesh with
    ``f``.  Its cyclic δm-spread is 1 when ``l_1`` is even (Lemma 21) and its
    cyclic δt-spread is always 1 (Lemma 26).
    """
    base = _as_base(base)
    if base.dimension != 2:
        raise InvalidRadixError("r_L is only defined for 2-dimensional radix-bases")
    l1, l2 = base.radices
    n = base.size
    if not 0 <= x < n:
        raise InvalidRadixError(f"x={x} out of range [0, {n})")
    if l2 > 2:
        if x < l1:
            return (l1 - 1 - x, 0)
        x1, x2 = f_value(RadixBase((l1, l2 - 1)), x - l1)
        return (x1, x2 + 1)
    # l2 == 2: the remaining nodes form a single column, filled bottom-to-top.
    if x < l1:
        return (l1 - 1 - x, 0)
    return (x - l1, 1)


def r_sequence(base: RadixBase | Sequence[int]) -> List[Node]:
    """The full cyclic sequence ``r_L``."""
    base = _as_base(base)
    return [r_value(base, x) for x in range(base.size)]


# --------------------------------------------------------------------------- #
# h_L : [n] -> Ω_L  (Definition 22)
# --------------------------------------------------------------------------- #
def h_value(base: RadixBase | Sequence[int], x: int) -> Node:
    """``h_L(x)`` (Definition 22).

    For ``d >= 3`` the construction sweeps the ``(l_1, l_2)``-planes of the
    graph in a forward pass (filling ``l_1 l_2 - 1`` nodes per plane,
    alternating direction between successive planes) followed by a backward
    pass that fills the remaining node of each plane.  For ``d = 2`` it is
    ``r_L``; for ``d = 1`` it is the identity.

    Its cyclic δm-spread is 1 whenever ``l_1`` is even (Lemma 23) and its
    cyclic δt-spread is always 1 (Lemma 27).
    """
    base = _as_base(base)
    n = base.size
    if not 0 <= x < n:
        raise InvalidRadixError(f"x={x} out of range [0, {n})")
    d = base.dimension
    if d == 1:
        return (x,)
    if d == 2:
        return r_value(base, x)
    l1, l2 = base.radices[0], base.radices[1]
    plane_base = RadixBase((l1, l2))
    tail_base = RadixBase(base.radices[2:])
    m = tail_base.size
    plane_fill = l1 * l2 - 1  # nodes filled per plane during the forward pass
    a = x // plane_fill
    b = x % plane_fill
    if x < m * plane_fill:
        if a % 2 == 0:
            return concat(r_value(plane_base, b), f_value(tail_base, a))
        return concat(r_value(plane_base, l1 * l2 - b - 2), f_value(tail_base, a))
    return concat(r_value(plane_base, l1 * l2 - 1), f_value(tail_base, n - x - 1))


def h_sequence(base: RadixBase | Sequence[int]) -> List[Node]:
    """The full cyclic sequence ``h_L``."""
    base = _as_base(base)
    return [h_value(base, x) for x in range(base.size)]


# --------------------------------------------------------------------------- #
# High-level builders
# --------------------------------------------------------------------------- #
def even_first_permutation(shape: Sequence[int]) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Find a reordering of ``shape`` whose first length is even.

    Returns ``(reordered_shape, perm)`` where ``perm`` is the permutation
    (in :func:`~repro.utils.listops.apply_permutation` convention) with
    ``apply_permutation(perm, reordered_shape) == shape``; or ``None`` when
    every dimension length is odd.  This realizes the paper's "let ``L*`` be
    a list such that ``π(L*) = L`` and the first component of ``L*`` is even"
    (Theorem 24).
    """
    shape = tuple(shape)
    even_positions = [i for i, length in enumerate(shape) if length % 2 == 0]
    if not even_positions:
        return None
    first = even_positions[0]
    order = (first,) + tuple(i for i in range(len(shape)) if i != first)
    reordered = tuple(shape[i] for i in order)
    perm = invert_permutation(order)
    return reordered, perm


@accepts_deprecated_method
def line_in_graph_embedding(host: CartesianGraph) -> Embedding:
    """Embed a line of the host's size in the host with dilation 1 (Theorem 13).

    The array backend computes the whole reflected sequence ``f_L`` as one
    batch kernel call; the per-node loop is the retained reference
    implementation (force it with ``use_context(backend="loop")``).
    """
    base = RadixBase(host.shape)
    guest = Line(host.size)
    if use_array_path():
        np = require_numpy()
        return Embedding.from_index_array(
            guest,
            host,
            f_flat(host.shape, np.arange(host.size, dtype=np.int64)),
            strategy="line:f_L",
            predicted_dilation=1,
        )
    return Embedding.from_callable(
        guest,
        host,
        lambda node: f_value(base, node[0]),
        strategy="line:f_L",
        predicted_dilation=1,
    )


def predicted_ring_dilation(host: CartesianGraph) -> int:
    """The dilation cost promised by Section 3 for embedding a ring in ``host``."""
    if host.is_torus:
        return 1
    if host.size == 2:
        return 1
    if host.dimension >= 2 and host.size % 2 == 0:
        return 1
    return 2


@accepts_deprecated_method
def ring_in_graph_embedding(host: CartesianGraph) -> Embedding:
    """Embed a ring of the host's size in the host with the optimal Section-3 strategy.

    * host torus → ``h_L`` (dilation 1, Theorem 28);
    * host mesh, even size, dimension ≥ 2 → ``π ∘ h_{L*}`` with an even
      dimension permuted to the front (dilation 1, Theorem 24);
    * otherwise (odd-size mesh or a line) → ``g_L`` (dilation 2, Theorem 17,
      optimal in these cases).

    The ambient context selects the batch-kernel array backend or the
    per-node loop reference, as for :func:`line_in_graph_embedding`.
    """
    guest = Ring(host.size)
    shape = host.shape
    array = use_array_path()
    if host.is_torus:
        if array:
            np = require_numpy()
            return Embedding.from_index_array(
                guest,
                host,
                h_flat(shape, np.arange(host.size, dtype=np.int64)),
                strategy="ring:h_L",
                predicted_dilation=1,
            )
        base = RadixBase(shape)
        return Embedding.from_callable(
            guest,
            host,
            lambda node: h_value(base, node[0]),
            strategy="ring:h_L",
            predicted_dilation=1,
        )
    # Host is a mesh.
    if host.dimension >= 2 and host.size % 2 == 0:
        reordering = even_first_permutation(shape)
        if reordering is None:  # pragma: no cover - even size guarantees an even length
            raise UnsupportedEmbeddingError(
                f"mesh {shape} has even size but no even dimension length"
            )
        reordered_shape, perm = reordering
        if array:
            np = require_numpy()
            digits = h_digits(reordered_shape, np.arange(host.size, dtype=np.int64))
            return Embedding.from_index_array(
                guest,
                host,
                digits_to_indices(digits[:, list(perm)], shape),
                strategy="ring:π∘h_L*",
                predicted_dilation=1,
                notes={"reordered_shape": reordered_shape, "permutation": perm},
            )
        base = RadixBase(reordered_shape)
        return Embedding.from_callable(
            guest,
            host,
            lambda node: apply_permutation(perm, h_value(base, node[0])),
            strategy="ring:π∘h_L*",
            predicted_dilation=1,
            notes={"reordered_shape": reordered_shape, "permutation": perm},
        )
    predicted = predicted_ring_dilation(host)
    notes = {"dilation_is_upper_bound": host.size <= 2}
    if array:
        np = require_numpy()
        return Embedding.from_index_array(
            guest,
            host,
            g_flat(shape, np.arange(host.size, dtype=np.int64)),
            strategy="ring:g_L",
            predicted_dilation=predicted,
            notes=notes,
        )
    base = RadixBase(shape)
    return Embedding.from_callable(
        guest,
        host,
        lambda node: g_value(base, node[0]),
        strategy="ring:g_L",
        predicted_dilation=predicted,
        notes=notes,
    )
