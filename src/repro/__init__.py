"""repro — a reproduction of "Embeddings Among Toruses and Meshes" (Ma & Tao, ICPP 1987).

The package builds dilation-optimal (or provably near-optimal) embeddings
among toruses, meshes, lines, rings and hypercubes of equal size, following
the mixed-radix Gray-code constructions of the paper, and provides the
substrates needed to *measure* those embeddings: exact graph models, cost
metrics, baselines, known-optimal comparators and a small interconnection-
network simulator.

Quickstart
----------
>>> from repro import Torus, Mesh, embed
>>> guest = Torus((4, 6))
>>> host = Mesh((2, 2, 2, 3))
>>> embedding = embed(guest, host)
>>> embedding.dilation()
1

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
harnesses that regenerate every figure and result table of the paper.
"""

from .exceptions import (
    InvalidEmbeddingError,
    InvalidRadixError,
    InvalidShapeError,
    NoExpansionError,
    NoReductionError,
    ReproError,
    ShapeMismatchError,
    SimulationError,
    UnsupportedEmbeddingError,
)
from .types import GraphKind, ShapedGraphSpec
from .runtime import ConstructionCache, ExecutionContext, use_context
from .runtime.context import current as current_context
from .numbering import RadixBase, mesh_distance, torus_distance
from .graphs import (
    CartesianGraph,
    Hypercube,
    Line,
    Mesh,
    Ring,
    Torus,
    find_hamiltonian_circuit,
    hamiltonian_path,
    has_hamiltonian_circuit,
    make_graph,
    to_networkx,
)
from .core import (
    Embedding,
    FunctionalEmbedding,
    embed,
    embed_increasing,
    embed_lowering,
    embed_square,
    functional_embed,
    line_in_graph_embedding,
    ring_in_graph_embedding,
    same_shape_embedding,
    strategy_for,
)

# The deliberate public surface (PR 8): `repro.api` bundles the facade
# entry points — embed/measure/simulate/run_survey/optimize plus context
# and cache helpers — with signatures pinned by tests/test_api_surface.py.
from . import api

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # public facade
    "api",
    # exceptions
    "ReproError",
    "InvalidShapeError",
    "InvalidRadixError",
    "InvalidEmbeddingError",
    "ShapeMismatchError",
    "NoExpansionError",
    "NoReductionError",
    "UnsupportedEmbeddingError",
    "SimulationError",
    # types
    "GraphKind",
    "ShapedGraphSpec",
    # runtime
    "ExecutionContext",
    "ConstructionCache",
    "use_context",
    "current_context",
    # numbering
    "RadixBase",
    "mesh_distance",
    "torus_distance",
    # graphs
    "CartesianGraph",
    "Torus",
    "Mesh",
    "Line",
    "Ring",
    "Hypercube",
    "make_graph",
    "to_networkx",
    "has_hamiltonian_circuit",
    "find_hamiltonian_circuit",
    "hamiltonian_path",
    # core
    "Embedding",
    "FunctionalEmbedding",
    "functional_embed",
    "embed",
    "strategy_for",
    "embed_increasing",
    "embed_lowering",
    "embed_square",
    "line_in_graph_embedding",
    "ring_in_graph_embedding",
    "same_shape_embedding",
]
