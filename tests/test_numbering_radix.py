"""Unit tests for the mixed-radix numbering system (Definition 7)."""

import pytest
from hypothesis import given

from repro.exceptions import InvalidRadixError
from repro.numbering.radix import RadixBase

from .conftest import small_shapes


class TestConstruction:
    def test_weights_match_paper_example(self):
        # The paper's radix-(4, 2, 3) example: w1 = 6, w2 = 3, w3 = 1, w0 = 24.
        base = RadixBase((4, 2, 3))
        assert base.weights == (24, 6, 3, 1)
        assert base.size == 24
        assert base.dimension == 3

    def test_rejects_radix_below_two(self):
        with pytest.raises(InvalidRadixError):
            RadixBase((4, 1))

    def test_rejects_empty(self):
        with pytest.raises(InvalidRadixError):
            RadixBase(())

    def test_equality_and_hash(self):
        assert RadixBase((4, 2, 3)) == RadixBase([4, 2, 3])
        assert hash(RadixBase((4, 2, 3))) == hash(RadixBase((4, 2, 3)))
        assert RadixBase((4, 2, 3)) != RadixBase((3, 2, 4))


class TestConversions:
    def test_to_digits_examples(self):
        base = RadixBase((4, 2, 3))
        assert base.to_digits(0) == (0, 0, 0)
        assert base.to_digits(1) == (0, 0, 1)
        assert base.to_digits(5) == (0, 1, 2)
        assert base.to_digits(23) == (3, 1, 2)

    def test_from_digits_inverse(self):
        base = RadixBase((4, 2, 3))
        for x in range(base.size):
            assert base.from_digits(base.to_digits(x)) == x

    def test_out_of_range_value(self):
        base = RadixBase((4, 2, 3))
        with pytest.raises(InvalidRadixError):
            base.to_digits(24)
        with pytest.raises(InvalidRadixError):
            base.to_digits(-1)

    def test_bad_digits(self):
        base = RadixBase((4, 2, 3))
        with pytest.raises(InvalidRadixError):
            base.from_digits((0, 2, 0))
        with pytest.raises(InvalidRadixError):
            base.from_digits((0, 0))

    def test_contains_digits(self):
        base = RadixBase((4, 2, 3))
        assert base.contains_digits((3, 1, 2))
        assert not base.contains_digits((4, 0, 0))
        assert not base.contains_digits((0, 0))

    def test_iteration_is_lexicographic(self):
        base = RadixBase((2, 3))
        assert list(base) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_all_digits_unique(self):
        base = RadixBase((3, 2, 2))
        digits = base.all_digits()
        assert len(digits) == len(set(digits)) == base.size

    @given(small_shapes())
    def test_roundtrip_property(self, shape):
        base = RadixBase(shape)
        for x in range(base.size):
            assert base.from_digits(base.to_digits(x)) == x

    def test_single_radix_shortcut(self):
        base = RadixBase((7,))
        assert base.to_digits(5) == (5,)
        assert base.from_digits((5,)) == 5


class TestDerivedBases:
    def test_take(self):
        base = RadixBase((4, 2, 3))
        assert base.take(1, 3) == RadixBase((2, 3))

    def test_concat(self):
        assert RadixBase((4,)).concat(RadixBase((2, 3))) == RadixBase((4, 2, 3))
