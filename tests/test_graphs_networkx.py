"""Cross-checks of the graph substrate against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.base import Hypercube, Mesh, Torus
from repro.graphs.networkx_adapter import bfs_distance, to_networkx

from .conftest import small_shapes


class TestMaterialization:
    def test_node_and_edge_counts(self):
        mesh = Mesh((3, 4))
        g = to_networkx(mesh)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == mesh.num_edges()
        assert g.graph["kind"] == "mesh"
        assert g.graph["shape"] == (3, 4)

    def test_torus_matches_networkx_generator(self):
        torus = Torus((4, 5))
        ours = to_networkx(torus)
        reference = nx.grid_graph(dim=[5, 4], periodic=True)
        # networkx uses (col, row)-style tuples; compare by isomorphism.
        assert nx.is_isomorphic(ours, reference)

    def test_mesh_matches_networkx_generator(self):
        mesh = Mesh((4, 5))
        reference = nx.grid_graph(dim=[5, 4])
        assert nx.is_isomorphic(to_networkx(mesh), reference)

    def test_hypercube_matches_networkx_generator(self):
        cube = Hypercube(4)
        assert nx.is_isomorphic(to_networkx(cube), nx.hypercube_graph(4))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            to_networkx(Torus((100, 100, 100)), max_nodes=1000)


class TestDistanceAgreement:
    @settings(max_examples=25, deadline=None)
    @given(small_shapes(max_dim=3, max_len=4), st.randoms(), st.booleans())
    def test_analytic_distance_equals_bfs(self, shape, rng, use_torus):
        graph = Torus(shape) if use_torus else Mesh(shape)
        g = to_networkx(graph)
        a = graph.index_node(rng.randrange(graph.size))
        b = graph.index_node(rng.randrange(graph.size))
        assert graph.distance(a, b) == nx.shortest_path_length(g, a, b)

    def test_bfs_distance_helper(self):
        assert bfs_distance(Mesh((4, 2, 3)), (0, 0, 1), (3, 0, 0)) == 4
        assert bfs_distance(Torus((4, 2, 3)), (0, 0, 1), (3, 0, 0)) == 2

    def test_connectedness(self):
        for graph in (Mesh((3, 3, 2)), Torus((3, 3, 2))):
            assert nx.is_connected(to_networkx(graph))
