"""Tests for the execution context: resolution order, scoping, the shim."""

import pickle

import pytest

from repro.core.dispatch import embed
from repro.core.embedding import use_array_path
from repro.graphs.base import Mesh, Torus
from repro.runtime import ExecutionContext, current, use_context
from repro.runtime import context as context_module
from repro.runtime.context import (
    accepts_deprecated_method,
    resolve_backend,
    set_default_context,
)

pytestmark = pytest.mark.smoke


class TestExecutionContext:
    def test_defaults(self):
        context = ExecutionContext()
        assert context.backend == "auto"
        assert context.cache is None
        assert context.workers is None
        assert context.shard_size == 64

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            ExecutionContext(backend="vectorized")
        with pytest.raises(ValueError):
            ExecutionContext(workers=-1)
        with pytest.raises(ValueError):
            ExecutionContext(shard_size=0)

    def test_resolved_backend_with_numpy(self):
        assert ExecutionContext(backend="auto").resolved_backend() == "array"
        assert ExecutionContext(backend="array").resolved_backend() == "array"
        assert ExecutionContext(backend="loop").resolved_backend() == "loop"
        # the per-call override (the method= shim) wins over the field
        assert ExecutionContext(backend="array").resolved_backend("loop") == "loop"
        with pytest.raises(ValueError):
            ExecutionContext().resolved_backend("bogus")

    def test_resolved_workers(self):
        assert ExecutionContext(workers=3).resolved_workers() == 3
        assert ExecutionContext(workers=0).resolved_workers() == 0
        assert ExecutionContext().resolved_workers() >= 1

    def test_context_is_picklable(self):
        context = ExecutionContext(backend="loop", workers=2, shard_size=16)
        clone = pickle.loads(pickle.dumps(context))
        assert clone == context


class TestScoping:
    def test_current_defaults_to_auto(self):
        assert current().backend == "auto"

    def test_use_context_overrides_and_restores(self):
        assert current().backend == "auto"
        with use_context(backend="loop") as scoped:
            assert scoped.backend == "loop"
            assert current() is scoped
            assert not use_array_path()
        assert current().backend == "auto"
        assert use_array_path()

    def test_nesting_is_innermost_wins(self):
        with use_context(backend="loop"):
            with use_context(backend="array"):
                assert current().backend == "array"
            assert current().backend == "loop"

    def test_overrides_derive_from_the_active_context(self):
        with use_context(backend="loop", shard_size=8):
            with use_context(workers=2):  # backend/shard_size inherited
                assert current().backend == "loop"
                assert current().shard_size == 8
                assert current().workers == 2

    def test_restored_even_when_the_body_raises(self):
        with pytest.raises(RuntimeError):
            with use_context(backend="loop"):
                raise RuntimeError("boom")
        assert current().backend == "auto"

    def test_full_context_argument(self):
        context = ExecutionContext(backend="loop", shard_size=4)
        with use_context(context) as scoped:
            assert scoped is context
        with use_context(context, shard_size=16) as scoped:
            assert scoped.backend == "loop" and scoped.shard_size == 16

    def test_set_default_context_survives_outside_scopes(self):
        previous = set_default_context(ExecutionContext(backend="loop"))
        try:
            assert current().backend == "loop"
            with use_context(backend="array"):
                assert current().backend == "array"
            assert current().backend == "loop"
        finally:
            set_default_context(previous)
        assert current().backend == "auto"

    def test_resolve_backend_module_helper(self):
        with use_context(backend="loop"):
            assert resolve_backend() == "loop"
            assert resolve_backend("array") == "array"


class TestMissingNumpyFallback:
    def test_array_request_degrades_to_loop_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(context_module, "_HAVE_NUMPY", False)
        monkeypatch.setattr(context_module, "_warned_numpy_fallback", False)
        with pytest.warns(RuntimeWarning, match="falls back to the pure-Python"):
            assert ExecutionContext(backend="array").resolved_backend() == "loop"
        # second resolution: same fallback, no second warning
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ExecutionContext(backend="auto").resolved_backend() == "loop"
            assert not use_array_path()

    def test_loop_request_never_warns(self, monkeypatch):
        monkeypatch.setattr(context_module, "_HAVE_NUMPY", False)
        monkeypatch.setattr(context_module, "_warned_numpy_fallback", False)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ExecutionContext(backend="loop").resolved_backend() == "loop"

    def test_constructions_still_work_without_numpy_path(self, monkeypatch):
        monkeypatch.setattr(context_module, "_HAVE_NUMPY", False)
        monkeypatch.setattr(context_module, "_warned_numpy_fallback", True)
        embedding = embed(Torus((3, 4)), Mesh((3, 4)))
        # the loop fallback built a dict-backed embedding without NumPy help
        assert embedding._host_indices is None
        assert embedding.dilation() == 2


class TestDeprecatedMethodShim:
    def test_shim_warns_and_scopes_the_backend(self):
        @accepts_deprecated_method
        def probe():
            return current().backend

        assert probe() == "auto"  # method=None: no warning, no scope
        with pytest.warns(DeprecationWarning, match="probe\\(method=...\\)"):
            assert probe(method="loop") == "loop"
        assert current().backend == "auto"

    def test_shim_validates_the_backend_value(self):
        @accepts_deprecated_method
        def probe():
            return None  # pragma: no cover - never reached with a bad value

        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            probe(method="bogus")

    def test_embedding_cost_methods_accept_the_shim(self):
        embedding = embed(Torus((4, 6)), Mesh((2, 2, 2, 3)))
        with pytest.warns(DeprecationWarning):
            loop_dilation = embedding.dilation(method="loop")
        assert loop_dilation == embedding.dilation()
