"""Unit tests for the interconnection-network simulation substrate."""

import pytest

from repro.baselines import lexicographic_embedding, random_embedding
from repro.core.dispatch import embed
from repro.exceptions import SimulationError
from repro.graphs.base import Mesh, Ring, Torus
from repro.netsim import (
    CostModel,
    HostNetwork,
    Message,
    TrafficPattern,
    neighbor_exchange_traffic,
    route_message,
    simulate_phase,
)
from repro.netsim.simulator import analytic_phase_estimate
from repro.netsim.traffic import transpose_traffic


class TestCostModel:
    def test_occupancy_and_uncontended_time(self):
        model = CostModel(alpha=2.0, bandwidth=4.0)
        assert model.link_occupancy(8.0) == 4.0
        assert model.uncontended_time(8.0, 3) == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(alpha=-1.0)
        with pytest.raises(ValueError):
            CostModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            model = CostModel()
            model.uncontended_time(1.0, -1)


class TestHostNetwork:
    def test_links_are_directed(self):
        network = HostNetwork(Mesh((2, 3)))
        links = list(network.links())
        assert network.num_links() == len(links) == 2 * Mesh((2, 3)).num_edges()
        assert (((0, 0), (0, 1)) in links) and (((0, 1), (0, 0)) in links)

    def test_processor_validation(self):
        network = HostNetwork(Mesh((2, 2)))
        with pytest.raises(SimulationError):
            network.validate_processor((5, 5))

    def test_link_exists(self):
        network = HostNetwork(Torus((3, 3)))
        assert network.link_exists(((0, 0), (2, 0)))
        assert not network.link_exists(((0, 0), (1, 1)))

    def test_empty_link_loads(self):
        network = HostNetwork(Mesh((2, 2)))
        loads = network.empty_link_loads()
        assert set(loads.values()) == {0.0}
        assert len(loads) == network.num_links()


class TestRouting:
    def test_route_length_equals_distance(self):
        network = HostNetwork(Torus((4, 4)))
        route = route_message(network, (0, 0), (3, 2))
        assert len(route) == Torus((4, 4)).distance((0, 0), (3, 2))

    def test_route_links_are_adjacent(self):
        network = HostNetwork(Mesh((3, 3)))
        for u, v in route_message(network, (0, 0), (2, 2)):
            assert network.link_exists((u, v))

    def test_self_route_is_empty(self):
        network = HostNetwork(Mesh((3, 3)))
        assert route_message(network, (1, 1), (1, 1)) == []


class TestTraffic:
    def test_message_validation(self):
        with pytest.raises(SimulationError):
            Message((0,), (1,), size=0)

    def test_neighbor_exchange_counts(self):
        guest = Torus((3, 3))
        pattern = neighbor_exchange_traffic(guest)
        # One message per directed edge: 2 * |E|.
        assert len(pattern) == 2 * guest.num_edges()
        assert pattern.total_volume() == float(len(pattern))

    def test_transpose_traffic(self):
        pattern = transpose_traffic(Mesh((3, 3)))
        # The three diagonal nodes are their own transpose and send nothing.
        assert len(pattern) == 6
        assert all(m.source != m.destination for m in pattern)

    def test_placed_uses_embedding(self):
        guest, host = Ring(6), Mesh((2, 3))
        embedding = embed(guest, host)
        pattern = neighbor_exchange_traffic(guest)
        placed = pattern.placed(embedding)
        assert len(placed) == len(pattern)
        for source, destination, size in placed:
            assert host.contains(source) and host.contains(destination)

    def test_placed_matches_per_message_dict_lookup(self):
        guest, host = Torus((3, 4)), Mesh((4, 3))
        embedding = embed(guest, host)
        pattern = neighbor_exchange_traffic(guest)
        expected = [
            (embedding[m.source], embedding[m.destination], m.size) for m in pattern
        ]
        assert pattern.placed(embedding) == expected

    def test_placed_rejects_invalid_endpoints(self):
        guest, host = Mesh((4, 4)), Mesh((4, 4))
        embedding = embed(guest, host)
        for bad in ((1.9, 0), (5, 0), (-1, 0), (1, 1, 1)):
            pattern = TrafficPattern("bad", (Message(bad, (0, 0)),))
            with pytest.raises((SimulationError, KeyError)):
                pattern.placed(embedding)


class TestSimulation:
    def test_analytic_estimate_reflects_dilation(self):
        guest, host = Torus((4, 4)), Mesh((4, 4))
        network = HostNetwork(host)
        traffic = neighbor_exchange_traffic(guest)
        good = analytic_phase_estimate(network, embed(guest, host), traffic)
        bad = analytic_phase_estimate(network, random_embedding(guest, host), traffic)
        assert good.max_hops == embed(guest, host).dilation()
        assert good.max_hops <= bad.max_hops
        assert good.estimated_completion_time <= bad.estimated_completion_time

    def test_simulation_makespan_at_least_estimate(self):
        guest, host = Torus((4, 4)), Mesh((4, 4))
        network = HostNetwork(host)
        traffic = neighbor_exchange_traffic(guest)
        embedding = embed(guest, host)
        result = simulate_phase(network, embedding, traffic)
        assert result.makespan >= result.statistics.estimated_completion_time - 1e-9
        assert len(result.per_message_completion) == len(traffic)

    def test_paper_embedding_beats_baselines_in_simulation(self):
        guest, host = Torus((4, 4)), Mesh((2, 2, 2, 2))
        network = HostNetwork(host)
        traffic = neighbor_exchange_traffic(guest)
        paper = simulate_phase(network, embed(guest, host), traffic).makespan
        lex = simulate_phase(network, lexicographic_embedding(guest, host), traffic).makespan
        rnd = simulate_phase(network, random_embedding(guest, host), traffic).makespan
        assert paper <= lex
        assert paper <= rnd

    def test_mismatched_topology_rejected(self):
        guest, host = Torus((4, 4)), Mesh((4, 4))
        network = HostNetwork(Mesh((2, 8)))
        with pytest.raises(SimulationError):
            simulate_phase(network, embed(guest, host), neighbor_exchange_traffic(guest))

    def test_result_rows_have_expected_keys(self):
        guest, host = Ring(8), Mesh((2, 4))
        network = HostNetwork(host)
        result = simulate_phase(network, embed(guest, host), neighbor_exchange_traffic(guest))
        row = result.as_row()
        assert {"messages", "max hops", "makespan"} <= set(row)

    def test_event_limit(self):
        guest, host = Ring(8), Mesh((2, 4))
        network = HostNetwork(host)
        with pytest.raises(SimulationError):
            simulate_phase(
                network, embed(guest, host), neighbor_exchange_traffic(guest), max_events=1
            )
