"""Differential tests for the degraded-host (fault) axis.

Everything fault-aware is pinned loop-vs-array here: the seeded knockout
draw, the surviving-graph BFS distances, detour routing, embedding repair,
degraded dilation and the weighted/faulted phase simulation.  The two
backends must agree *bit for bit* — canonical BFS distances and the
integer-hash link weights make that an invariant, not a tolerance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fault_tolerance import fault_dilation_summary, repair_embedding
from repro.core.dispatch import embed
from repro.exceptions import InvalidShapeError, SimulationError
from repro.graphs.base import Mesh, Torus
from repro.graphs.faults import FaultSpec, Faults
from repro.netsim.kernels import LinkIndexSpace
from repro.netsim.network import HostNetwork
from repro.netsim.routing import route_message
from repro.netsim.simulator import simulate_phase
from repro.netsim.traffic import neighbor_exchange_traffic
from repro.netsim.weights import LinkWeightSpec, directed_slot_id
from repro.runtime import use_context
from repro.types import GraphKind

from .conftest import fault_specs, graph_kinds, link_weight_specs, small_shapes

pytestmark = pytest.mark.smoke

np = pytest.importorskip("numpy")


def _graph(kind, shape):
    return Torus(shape) if kind == GraphKind.TORUS else Mesh(shape)


class TestFaultSpec:
    @given(spec=fault_specs())
    def test_token_round_trip(self, spec):
        assert FaultSpec.from_token(spec.token) == spec

    @pytest.mark.parametrize("token", ["", "n1l2", "x1l2s3", "n1l2s", "n 1l2s3", "l2n1s3"])
    def test_malformed_token_rejected(self, token):
        with pytest.raises(InvalidShapeError):
            FaultSpec.from_token(token)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidShapeError):
            FaultSpec(num_nodes=-1)
        with pytest.raises(InvalidShapeError):
            FaultSpec(num_links=-2)

    @given(kind=graph_kinds, shape=small_shapes(), spec=fault_specs())
    @settings(max_examples=40, deadline=None)
    def test_apply_is_deterministic_and_well_formed(self, kind, shape, spec):
        graph = _graph(kind, shape)
        faults = spec.apply(graph)
        again = spec.apply(_graph(kind, shape))
        assert faults.dead_nodes == again.dead_nodes
        assert faults.dead_links == again.dead_links
        assert len(faults.dead_nodes) == min(spec.num_nodes, graph.size)
        for u, v in faults.dead_links:
            # Link faults are drawn over surviving endpoints only.
            assert u < v
            assert u not in faults.dead_nodes and v not in faults.dead_nodes
            assert not faults.link_alive(u, v)

    def test_repr_mentions_token_and_counts(self):
        faults = FaultSpec(1, 2, 7).apply(Torus((3, 4)))
        assert "n1l2s7" in repr(faults)


class TestSurvivingGraph:
    @given(kind=graph_kinds, shape=small_shapes(), spec=fault_specs(), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_bfs_distances_loop_equals_array_row(self, kind, shape, spec, seed):
        graph = _graph(kind, shape)
        faults = spec.apply(graph)
        source = seed % graph.size
        loop = faults.bfs_distances(source)
        row = faults.bfs_distance_row(source)
        assert row.shape == (graph.size,)
        for rank in range(graph.size):
            assert loop.get(rank, -1) == int(row[rank])

    @given(kind=graph_kinds, shape=small_shapes(), spec=fault_specs(), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_shortest_detour_is_a_shortest_surviving_path(self, kind, shape, spec, seed):
        graph = _graph(kind, shape)
        faults = spec.apply(graph)
        alive = faults.surviving_ranks()
        if len(alive) < 2:
            return
        source = alive[seed % len(alive)]
        destination = alive[(seed * 7 + 3) % len(alive)]
        path = faults.shortest_detour(source, destination)
        distance = faults.bfs_distances(source).get(destination)
        if distance is None:
            assert path is None
            return
        assert path[0] == source and path[-1] == destination
        assert len(path) == distance + 1
        for u, v in zip(path, path[1:]):
            assert faults.link_alive(u, v)

    def test_dead_source_has_no_distances_or_detours(self):
        graph = Mesh((3, 3))
        faults = Faults(graph, frozenset({4}), frozenset())
        assert faults.bfs_distances(4) == {}
        assert faults.shortest_detour(4, 0) is None
        assert faults.shortest_detour(0, 4) is None
        assert (faults.bfs_distance_row(4) == -1).all()


class TestFaultRouting:
    def test_uncut_route_matches_pristine(self):
        host = Torus((3, 4))
        network = HostNetwork(host)
        faults = Faults(host, frozenset(), frozenset({(0, 1)}))
        source, destination = host.index_node(4), host.index_node(7)
        pristine = route_message(network, source, destination)
        assert route_message(network, source, destination, faults=faults) == pristine

    def test_cut_route_takes_a_surviving_detour(self):
        host = Mesh((4,))
        network = HostNetwork(host)
        source, destination = host.index_node(0), host.index_node(1)
        faults = Faults(host, frozenset(), frozenset({(0, 1)}))
        with pytest.raises(SimulationError):
            # The only path on a line is cut: no surviving detour exists.
            route_message(network, source, destination, faults=faults)
        ring = Torus((4,))
        faults = Faults(ring, frozenset(), frozenset({(0, 1)}))
        links = route_message(
            HostNetwork(ring), ring.index_node(0), ring.index_node(1), faults=faults
        )
        assert len(links) == 3  # the long way round the ring
        for u, v in links:
            assert faults.link_alive(ring.node_index(u), ring.node_index(v))

    def test_dead_endpoint_raises(self):
        host = Torus((3, 4))
        network = HostNetwork(host)
        faults = Faults(host, frozenset({0}), frozenset())
        with pytest.raises(SimulationError):
            route_message(network, host.index_node(0), host.index_node(5), faults=faults)
        with pytest.raises(SimulationError):
            route_message(network, host.index_node(5), host.index_node(0), faults=faults)


class TestRepairEmbedding:
    def test_link_only_faults_leave_embedding_untouched(self):
        guest, host = Torus((2, 3)), Mesh((2, 3))
        embedding = embed(guest, host)
        faults = FaultSpec(num_links=2, seed=7).apply(host)
        assert repair_embedding(embedding, faults) is embedding

    @given(spec=fault_specs(max_nodes=2, max_links=0), backend=st.sampled_from(["array", "loop"]))
    @settings(max_examples=25, deadline=None)
    def test_repair_is_injective_alive_and_annotated(self, spec, backend):
        guest, host = Torus((2, 3)), Mesh((3, 4))
        with use_context(backend=backend):
            embedding = embed(guest, host)
            faults = spec.apply(host)
            repaired = repair_embedding(embedding, faults)
            images = [host.node_index(repaired.map_index(r)) for r in range(guest.size)]
        assert len(set(images)) == guest.size
        assert not set(images) & faults.dead_nodes
        if spec.num_nodes and any(
            host.node_index(embedding.map_index(r)) in faults.dead_nodes
            for r in range(guest.size)
        ):
            assert repaired.strategy == f"{embedding.strategy}+repair"
            assert repaired.notes["faults"] == spec.token

    @given(spec=fault_specs(max_nodes=2, max_links=0))
    @settings(max_examples=25, deadline=None)
    def test_repair_agrees_across_backends(self, spec):
        guest, host = Mesh((8,)), Mesh((3, 4))
        results = {}
        for backend in ("array", "loop"):
            with use_context(backend=backend):
                repaired = repair_embedding(embed(guest, host), spec.apply(host))
                results[backend] = [
                    host.node_index(repaired.map_index(r)) for r in range(guest.size)
                ]
        assert results["array"] == results["loop"]

    def test_repair_rejects_foreign_faults_and_full_hosts(self):
        guest = host = Torus((2, 3))
        embedding = embed(guest, host)
        other = FaultSpec(1, 0, 3).apply(Torus((3, 2)))
        with pytest.raises(SimulationError):
            repair_embedding(embedding, other)
        # Same-size pair: a node fault leaves nowhere to re-place.
        from repro.exceptions import UnsupportedEmbeddingError

        faults = FaultSpec(num_nodes=1, seed=0).apply(host)
        with pytest.raises(UnsupportedEmbeddingError):
            repair_embedding(embedding, faults)


class TestFaultDilation:
    @given(spec=fault_specs())
    @settings(max_examples=30, deadline=None)
    def test_summary_agrees_across_backends(self, spec):
        guest, host = Torus((2, 3)), Mesh((3, 4))
        results = {}
        for backend in ("array", "loop"):
            with use_context(backend=backend):
                faults = spec.apply(host)
                repaired = repair_embedding(embed(guest, host), faults)
                try:
                    results[backend] = fault_dilation_summary(repaired, faults)
                except SimulationError:
                    results[backend] = "disconnected"
        assert results["array"] == results["loop"]

    def test_pristine_faults_reproduce_the_exact_dilation(self):
        guest, host = Torus((2, 3)), Mesh((3, 4))
        embedding = embed(guest, host)
        faults = Faults(host, frozenset(), frozenset())
        dilation, average = fault_dilation_summary(embedding, faults)
        assert dilation == embedding.dilation()
        assert average == pytest.approx(embedding.average_dilation())

    def test_unrepaired_dead_image_raises(self):
        guest = host = Torus((2, 3))
        embedding = embed(guest, host)
        faults = FaultSpec(num_nodes=1, seed=0).apply(host)
        for backend in ("array", "loop"):
            with use_context(backend=backend), pytest.raises(SimulationError):
                fault_dilation_summary(embedding, faults)


class TestLinkWeights:
    @given(spec=link_weight_specs, kind=graph_kinds, shape=small_shapes())
    @settings(max_examples=40, deadline=None)
    def test_weight_array_matches_scalar_evaluation_bitwise(self, spec, kind, shape):
        topology = _graph(kind, shape)
        space = LinkIndexSpace(topology)
        weights = spec.weight_array(space)
        assert weights.shape == (space.num_slots,)
        for slot in range(space.num_slots):
            assert spec.weight_of_slot(topology, slot) == float(weights[slot])

    @given(kind=graph_kinds, shape=small_shapes())
    @settings(max_examples=25, deadline=None)
    def test_directed_slot_ids_are_unique_per_directed_link(self, kind, shape):
        topology = _graph(kind, shape)
        seen = set()
        for a, b in topology.edges():
            for source, target in ((a, b), (b, a)):
                slot = directed_slot_id(topology, source, target)
                assert 0 <= slot < 2 * topology.dimension * topology.size
                assert slot not in seen
                seen.add(slot)

    def test_non_adjacent_hop_rejected(self):
        topology = Mesh((4, 4))
        with pytest.raises(InvalidShapeError):
            directed_slot_id(topology, (0, 0), (1, 1))

    def test_token_round_trip_and_validation(self):
        spec = LinkWeightSpec("random", 0.5, 3)
        assert LinkWeightSpec.from_token(spec.token) == spec
        assert LinkWeightSpec.from_token("dimension") == LinkWeightSpec("dimension", 0.5, 0)
        with pytest.raises(InvalidShapeError):
            LinkWeightSpec.from_token("triangular:1:2")
        with pytest.raises(InvalidShapeError):
            LinkWeightSpec("uniform", -1.0)


class TestWeightedFaultedSimulation:
    @pytest.mark.parametrize("weights_token", [None, "dimension:0.5:0", "random:0.5:3"])
    @pytest.mark.parametrize("faults_token", [None, "n0l2s7", "n1l1s5"])
    def test_phase_simulation_identical_across_backends(self, weights_token, faults_token):
        guest, host = Torus((2, 3)), Mesh((3, 4))
        weights = LinkWeightSpec.from_token(weights_token) if weights_token else None
        results = {}
        for backend in ("array", "loop"):
            with use_context(backend=backend):
                network = HostNetwork(host, link_weights=weights)
                embedding = embed(guest, host)
                faults = (
                    FaultSpec.from_token(faults_token).apply(host) if faults_token else None
                )
                if faults is not None:
                    embedding = repair_embedding(embedding, faults)
                traffic = neighbor_exchange_traffic(guest)
                result = simulate_phase(network, embedding, traffic, faults=faults)
                results[backend] = (
                    result.makespan,
                    result.statistics.as_row(),
                )
        assert results["array"] == results["loop"]

    def test_uniform_weights_equal_unweighted_makespan(self):
        guest = host = Torus((3, 4))
        embedding = embed(guest, host)
        traffic = neighbor_exchange_traffic(guest)
        plain = simulate_phase(HostNetwork(host), embedding, traffic)
        uniform = simulate_phase(
            HostNetwork(host, link_weights=LinkWeightSpec("uniform")), embedding, traffic
        )
        assert plain.makespan == uniform.makespan
        assert plain.statistics.as_row() == uniform.statistics.as_row()

    def test_weighted_makespan_scales_with_slow_links(self):
        guest = host = Torus((3, 4))
        embedding = embed(guest, host)
        traffic = neighbor_exchange_traffic(guest)
        plain = simulate_phase(HostNetwork(host), embedding, traffic)
        slow = simulate_phase(
            HostNetwork(host, link_weights=LinkWeightSpec("dimension", 2.0)),
            embedding,
            traffic,
        )
        assert slow.makespan > plain.makespan
