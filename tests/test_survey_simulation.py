"""Tests for the `simulation` survey suite (scenarios, runner, store, CLI)."""

import pytest

from repro.cli import main
from repro.survey import (
    Scenario,
    SurveyOptions,
    read_records,
    run_survey,
    scenarios_for_suite,
    suite_names,
    write_json,
)
from repro.runtime import strategy_names, use_context
from repro.survey.runner import evaluate_scenario
from repro.survey.scenarios import SIMULATION_STRATEGIES, SIMULATION_TRAFFIC


class TestSimulationScenarios:
    def test_suite_is_registered_and_deterministic(self):
        assert "simulation" in suite_names()
        scenarios = scenarios_for_suite("simulation", max_nodes=48)
        assert scenarios == scenarios_for_suite("simulation", max_nodes=48)
        assert scenarios
        # Every strategy and every traffic pattern appears.
        assert {s.strategy for s in scenarios} == set(SIMULATION_STRATEGIES)
        assert {s.traffic for s in scenarios} == set(SIMULATION_TRAFFIC)
        assert all(s.nodes <= 48 for s in scenarios)

    def test_larger_budget_adds_task_mapping_pairs(self):
        small = scenarios_for_suite("simulation", max_nodes=24)
        large = scenarios_for_suite("simulation", max_nodes=64)
        assert len(large) > len(small)

    def test_simulation_scenario_id_round_trip(self):
        scenario = Scenario(
            "torus", (4, 6), "mesh", (2, 2, 2, 3), strategy="bfs", traffic="transpose"
        )
        assert scenario.scenario_id == "torus:4,6->mesh:2,2,2,3|bfs|transpose"
        assert Scenario.from_id(scenario.scenario_id) == scenario

    def test_embedding_scenario_id_unchanged(self):
        scenario = Scenario("torus", (4, 6), "mesh", (2, 2, 2, 3))
        assert scenario.scenario_id == "torus:4,6->mesh:2,2,2,3"
        assert Scenario.from_id(scenario.scenario_id) == scenario

    def test_strategy_builders_cover_suite_strategies(self):
        assert set(SIMULATION_STRATEGIES) <= set(strategy_names())


class TestSimulationRunner:
    def test_evaluate_simulation_scenario(self):
        record = evaluate_scenario(
            Scenario(
                "torus",
                (4, 6),
                "mesh",
                (2, 2, 2, 3),
                strategy="paper",
                traffic="neighbor-exchange",
            ),
            SurveyOptions(),
        )
        assert record.status == "ok"
        assert record.strategy == "paper"
        assert record.traffic == "neighbor-exchange"
        assert record.messages == 2 * 2 * 24  # two directed messages per edge
        assert record.max_hops == record.dilation == 1
        assert record.makespan is not None and record.makespan > 0
        assert record.estimated_time is not None
        assert record.estimated_time <= record.makespan + 1e-9

    def test_backends_agree_on_simulation_records(self):
        scenario = Scenario(
            "torus", (4, 4), "mesh", (2, 2, 2, 2), strategy="random", traffic="transpose"
        )
        with use_context(backend="array"):
            array = evaluate_scenario(scenario, SurveyOptions())
        with use_context(backend="loop"):
            loop = evaluate_scenario(scenario, SurveyOptions())
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert strip(array) == strip(loop)

    def test_deprecated_options_method_still_works(self):
        scenario = Scenario(
            "torus", (4, 4), "mesh", (2, 2, 2, 2), strategy="paper", traffic="transpose"
        )
        with pytest.warns(DeprecationWarning):
            record = evaluate_scenario(scenario, SurveyOptions(method="loop"))
        assert record.status == "ok"

    def test_paper_beats_baselines_across_the_suite(self):
        report = run_survey(
            scenarios_for_suite("simulation", max_nodes=24), SurveyOptions(workers=1)
        )
        assert not report.failed and not report.unsupported
        by_key = {}
        for record in report.ok:
            base = record.scenario_id.split("|")[0]
            by_key.setdefault((base, record.traffic), {})[record.strategy] = record
        for (base, traffic), strategies in by_key.items():
            paper = strategies["paper"]
            if traffic == "neighbor-exchange":
                for record in strategies.values():
                    assert paper.max_hops <= record.max_hops
                    assert paper.makespan <= record.makespan + 1e-9

    def test_summary_rows_grow_makespan_column(self):
        report = run_survey(
            scenarios_for_suite("simulation", max_nodes=24), SurveyOptions(workers=1)
        )
        rows = report.summary_rows()
        assert rows and all("mean makespan" in row for row in rows)

    def test_simulation_shards_resume(self, tmp_path):
        scenarios = scenarios_for_suite("simulation", max_nodes=24)[:6]
        options = SurveyOptions(workers=1, shard_size=3, shard_dir=str(tmp_path))
        first = run_survey(scenarios, options)
        assert first.reused_shard_indices == []
        rerun = run_survey(scenarios, options)
        assert rerun.reused_shard_indices == [0, 1]
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert [strip(r) for r in rerun.records] == [strip(r) for r in first.records]

    def test_unknown_strategy_is_an_error_record(self):
        record = evaluate_scenario(
            Scenario(
                "torus", (4, 6), "mesh", (2, 2, 2, 3), strategy="psychic", traffic="transpose"
            ),
            SurveyOptions(),
        )
        assert record.status == "error"
        assert "KeyError" in record.error


class TestSimulationStore:
    def test_simulation_records_round_trip(self, tmp_path):
        report = run_survey(
            scenarios_for_suite("simulation", max_nodes=24)[:8], SurveyOptions(workers=1)
        )
        json_path = write_json(report.records, tmp_path / "sim.json")
        assert read_records(json_path) == report.records
        from repro.survey import write_csv

        csv_path = write_csv(report.records, tmp_path / "sim.csv")
        assert read_records(csv_path) == report.records

    def test_legacy_records_read_with_empty_simulation_block(self, tmp_path):
        # Records written before the simulation columns existed still load.
        import json

        legacy_row = {
            "scenario_id": "torus:4,6->mesh:2,2,2,3",
            "guest": "Torus((4, 6))",
            "host": "Mesh((2, 2, 2, 3))",
            "nodes": 24,
            "guest_edges": 48,
            "status": "ok",
            "strategy": "increasing:H_V",
            "predicted_dilation": 1,
            "dilation": 1,
            "average_dilation": 1.0,
            "congestion": None,
            "matches_prediction": True,
            "elapsed_seconds": 0.1,
            "error": None,
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"format": "repro-survey/1", "count": 1, "records": [legacy_row]}))
        (record,) = read_records(path)
        assert record.traffic is None and record.makespan is None
        assert record.dilation == 1


class TestSimulationCli:
    def test_survey_suite_simulation_smoke(self, tmp_path, capsys):
        output = tmp_path / "sim.json"
        code = main(
            ["survey", "--suite", "simulation", "--smoke", "--output", str(output)]
        )
        assert code == 0
        records = read_records(output)
        assert records and all(record.status == "ok" for record in records)
        assert {record.traffic for record in records} == set(SIMULATION_TRAFFIC)
        out = capsys.readouterr().out
        assert "mean makespan" in out

    def test_plain_smoke_still_runs_smoke_suite(self, tmp_path):
        output = tmp_path / "smoke.json"
        assert main(["survey", "--smoke", "--output", str(output)]) == 0
        records = read_records(output)
        assert all(record.traffic is None for record in records)

    def test_simulate_command_traffic_and_method(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--guest",
                    "torus:4,4",
                    "--host",
                    "mesh:2,2,2,2",
                    "--traffic",
                    "all-to-all-groups",
                    "--method",
                    "array",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "all-to-all-groups" in out and "makespan" in out

    @pytest.mark.parametrize("traffic", sorted(SIMULATION_TRAFFIC))
    def test_simulate_command_each_pattern(self, traffic, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--guest",
                    "torus:3,4",
                    "--host",
                    "mesh:3,4",
                    "--traffic",
                    traffic,
                ]
            )
            == 0
        )
        assert "paper" in capsys.readouterr().out
